//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of `rand` 0.9 that the workspace uses:
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].  The generator
//! is xoshiro256** seeded via SplitMix64 — deterministic for a given
//! seed, statistically solid for workload generation (this is not a
//! cryptographic RNG, and neither use here needs one).

#![forbid(unsafe_code)]

/// A source of randomness: the subset of `rand::Rng` used in-tree.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`u8`–`u128`, sizes, `bool`,
    /// `f64` in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self.next_u64_dyn())
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, span) = range.bounds();
        assert!(span > 0, "cannot sample from an empty range");
        // Widening-multiply rejection-free mapping (Lemire); the tiny
        // bias at span ≫ 2^64 is irrelevant for workload generation.
        let x = self.next_u64_dyn();
        let mapped = ((x as u128 * span as u128) >> 64) as u64;
        T::from_offset(lo, mapped)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64_dyn() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64_dyn().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The raw 64-bit generator interface (object safe).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64_dyn(&mut self) -> u64;
}

/// Seeding interface: the subset of `rand::SeedableRng` used in-tree.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from raw bits ("standard distribution").
pub trait Standard: Sized {
    /// Build a value from one draw of 64 random bits.
    fn from_rng(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(bits: u64) -> $t { bits as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng(bits: u64) -> u128 {
        // One draw only; callers needing full-width u128 entropy should
        // combine two draws themselves (none in-tree do).
        bits as u128
    }
}

impl Standard for bool {
    fn from_rng(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types samplable by [`Rng::random_range`].
pub trait UniformInt: Copy {
    /// Reconstruct a value as `lo + offset`.
    fn from_offset(lo: Self, offset: u64) -> Self;
    /// The value as an unsigned 64-bit ordinal.
    fn to_u64(self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_offset(lo: $t, offset: u64) -> $t {
                (lo as i128 + offset as i128) as $t
            }
            fn to_u64(self) -> u64 { self as u64 }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Lower bound and number of representable values (0 = empty).
    fn bounds(&self) -> (T, u64);
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds(&self) -> (T, u64) {
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        (self.start, span)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, u64) {
        let span = self
            .end()
            .to_u64()
            .wrapping_sub(self.start().to_u64())
            .wrapping_add(1);
        (*self.start(), span)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — `rand`'s `StdRng` role.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream expands the seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64_dyn(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_dyn(), b.next_u64_dyn());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_dyn(), c.next_u64_dyn());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
            let x: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u8 = rng.random_range(0..=255);
            let _ = y;
        }
    }

    #[test]
    fn floats_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
