//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest's API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`,
//! [`any`] over an [`Arbitrary`] trait, range / string / tuple / `Just`
//! strategies, `collection::{vec, btree_map}`, weighted [`prop_oneof!`],
//! the [`proptest!`] macro (both `pat in strategy` and `ident: Type`
//! argument forms), [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline test rig:
//!
//! * **No shrinking.** A failing case reports its case number and seed
//!   (set `PROPTEST_SEED` to replay) instead of a minimized input.
//! * **Deterministic by default.** Case `i` of test `name` derives its
//!   seed from `hash(name) ⊕ i`, so CI failures always reproduce.
//! * `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) rather
//!   than returning `Err`; the runner's case banner still fires.

#![forbid(unsafe_code)]

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Retry generation until `f` accepts the value (bounded; panics if
    /// the predicate rejects everything).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe alias used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter predicate rejected 1000 consecutive values");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all
    /// weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

// -- primitive strategies ---------------------------------------------------

/// Integer ranges are strategies over their element type.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String patterns act as strategies producing arbitrary strings.
///
/// Real proptest interprets the pattern as a regex; every in-tree use
/// is `".*"`, so this stand-in generates arbitrary short strings
/// (including multi-byte chars) and ignores the pattern text.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        arbitrary_string(rng)
    }
}

fn arbitrary_string(rng: &mut TestRng) -> String {
    let len = rng.random_range(0usize..12);
    (0..len)
        .map(|_| match rng.random_range(0u32..10) {
            0 => char::from_u32(rng.random_range(0x80u32..0x2000)).unwrap_or('\u{fffd}'),
            1 => '\u{1F600}',
            _ => char::from(rng.random_range(0x20u8..0x7f)),
        })
        .collect()
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix boundary-ish values in, as real proptest's edge
                // bias does: small, max, and uniform draws.
                match rng.random_range(0u32..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => rng.random_range(0u64..16) as $t,
                    _ => rng.random::<$t>(),
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.random_range(0u32..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => rng.random_range(-8i64..8) as $t,
                    _ => rng.random::<$t>(),
                }
            }
        }
    )*};
}
impl_arbitrary_signed!(i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        match rng.random_range(0u32..8) {
            0 => 0,
            1 => u128::MAX,
            2 => rng.random_range(0u64..16) as u128,
            _ => (rng.random::<u64>() as u128) << 64 | rng.random::<u64>() as u128,
        }
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        if rng.random_bool(0.8) {
            char::from(rng.random_range(0x20u8..0x7f))
        } else {
            char::from_u32(rng.random_range(0x80u32..0xD7FF)).unwrap_or('\u{fffd}')
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.random::<u64>())
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        arbitrary_string(rng)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.random_bool(0.3) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

fn arbitrary_len(rng: &mut TestRng) -> usize {
    // Geometric-ish: usually small, occasionally larger.
    match rng.random_range(0u32..10) {
        0 => 0,
        1..=6 => rng.random_range(1usize..8),
        7 | 8 => rng.random_range(8usize..32),
        _ => rng.random_range(32usize..100),
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = arbitrary_len(rng);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<K: Arbitrary + Ord, V: Arbitrary> Arbitrary for std::collections::BTreeMap<K, V> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = arbitrary_len(rng);
        (0..len)
            .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
            .collect()
    }
}

impl<T: Arbitrary + Ord> Arbitrary for std::collections::BTreeSet<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = arbitrary_len(rng);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<K: Arbitrary + std::hash::Hash + Eq, V: Arbitrary> Arbitrary
    for std::collections::HashMap<K, V>
{
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = arbitrary_len(rng);
        (0..len)
            .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
            .collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.hi > self.lo, "empty collection size range");
            rng.random_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; sizes are an upper
    /// bound since duplicate keys collapse.
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner / config
// ---------------------------------------------------------------------------

/// Test-runner configuration (`proptest::test_runner::ProptestConfig`).
pub mod test_runner {
    /// How many cases each property test runs, and other knobs kept for
    /// source compatibility.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::ProptestConfig;

/// Drives one property test: seeds, case loop, failure banner.
/// Used by the [`proptest!`] macro expansion; not part of proptest's
/// public API surface.
#[doc(hidden)]
pub fn run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut TestRng)) {
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| hash_name(&s)),
        Err(_) => hash_name(name),
    };
    for i in 0..cases as u64 {
        let seed = base ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // The banner's Drop prints only while unwinding, so a passing
        // case drops it silently.
        let _banner = FailureBanner {
            name,
            case: i,
            seed,
        };
        let mut rng = TestRng::seed_from_u64(seed);
        case(&mut rng);
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across runs (DefaultHasher is randomized per
    // process in some configurations; determinism matters here).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct FailureBanner<'a> {
    name: &'a str,
    case: u64,
    seed: u64,
}

impl Drop for FailureBanner<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} (PROPTEST_SEED={} replays this exact run)",
                self.name, self.case, self.seed
            );
        }
    }
}

impl fmt::Debug for FailureBanner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FailureBanner({})", self.name)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports the two proptest argument forms:
/// `name in strategy` and `name: Type` (the latter meaning
/// `any::<Type>()`), plus an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    // Done.
    (($cfg:expr)) => {};
    // One test fn, then recurse on the rest.
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                __cfg.cases,
                |__rng| {
                    $crate::__proptest_bind!(__rng, $($args)*);
                    $body
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Bind proptest-style test arguments from the case RNG.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&$strat, $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident: $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
    /// Alias so `prop::collection::vec(...)` style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B(u64, bool),
        Stop,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::A),
            2 => (any::<u64>(), any::<bool>()).prop_map(|(x, b)| Op::B(x, b)),
            1 => Just(Op::Stop),
        ]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in 5usize..6) {
            prop_assert!(x < 100);
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn typed_args_generate(v: Vec<u8>, flag: bool, s: String) {
            let _ = (v.len(), flag, s.len());
        }

        #[test]
        fn oneof_and_collections(ops in collection::vec(arb_op(), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
        }

        #[test]
        fn string_strategy(s in ".*") {
            let _ = s.len();
        }

        #[test]
        fn btree_map_strategy(m in collection::btree_map(".*", 0u32..10, 0..8)) {
            prop_assert!(m.len() < 8);
            for v in m.values() { prop_assert!(*v < 10); }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_respected(_x in 0u8..=255) {
            // 7 cases, each in bounds by construction.
        }
    }

    #[test]
    fn union_weights_skew_distribution() {
        use rand::SeedableRng;
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::seed_from_u64(1);
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 800, "hits {hits}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("det-test", 5, |rng| a.push(u64::arbitrary(rng)));
        crate::run_cases("det-test", 5, |rng| b.push(u64::arbitrary(rng)));
        assert_eq!(a, b);
    }
}
