//! Offline stand-in for the smol-rs [`polling`] crate.
//!
//! The build environment has no route to crates.io, so — like the
//! other `vendor/` crates — this implements exactly the API subset the
//! workspace uses: a **level-triggered** epoll poller with a reserved
//! eventfd waker, and an `RLIMIT_NOFILE` raiser for the
//! connection-scaling batteries. Two deliberate divergences from the
//! real crate: registrations are level-triggered rather than oneshot
//! (callers manage interest explicitly with [`Poller::modify`]), and
//! [`Poller::wait`] takes a plain `Vec<Event>` instead of an opaque
//! `Events` arena.
//!
//! All `unsafe` in the workspace's network tier lives here: `ode-net`
//! is `#![forbid(unsafe_code)]`, and the raw `epoll`/`eventfd`/
//! `rlimit` syscalls (declared as `extern "C"` libc symbols — std
//! already links libc) are confined to this crate behind a safe API.
//!
//! [`polling`]: https://docs.rs/polling

#![deny(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

// ---------------------------------------------------------------------------
// libc surface (Linux)
// ---------------------------------------------------------------------------

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// Matches the kernel/glibc `struct epoll_event`; packed on x86-64
/// (the one ABI where glibc declares it `__attribute__((packed))`).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    u64: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Interest in, or readiness of, one registered source.
///
/// As interest (passed to [`Poller::add`]/[`Poller::modify`]) the
/// flags select which readiness to report; as a result (filled by
/// [`Poller::wait`]) they say what the source is ready for. Error and
/// hang-up conditions are folded into both flags so a half-closed or
/// failed socket always surfaces through whatever interest is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source (any `usize` except
    /// `usize::MAX`, which the poller reserves for its waker).
    pub key: usize,
    /// Readable (or error/hang-up) readiness.
    pub readable: bool,
    /// Writable (or error/hang-up) readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in both readable and writable readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Interest in readable readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writable readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// No interest; the registration stays but reports nothing
    /// (error/hang-up conditions still wake `EPOLLERR`/`EPOLLHUP`
    /// implicitly, surfaced with both flags set).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// The key [`Poller`] reserves for its internal eventfd waker;
/// sources must not be registered under it.
pub const NOTIFY_KEY: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// A level-triggered epoll instance with an eventfd waker.
///
/// `add`/`modify`/`delete`/`notify` are safe to call from any thread
/// while another thread blocks in [`Poller::wait`] (the kernel
/// serializes `epoll_ctl` against `epoll_wait`).
pub struct Poller {
    epfd: RawFd,
    notify_fd: RawFd,
}

impl Poller {
    /// Creates a poller with its waker eventfd already registered.
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let notify_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        let poller = Poller { epfd, notify_fd };
        poller.ctl(EPOLL_CTL_ADD, notify_fd, Some(Event::readable(NOTIFY_KEY)))?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        let mut ev = interest.map(|i| EpollEvent {
            events: i.mask(),
            u64: i.key as u64,
        });
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Registers a source under `interest.key`.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "key reserved for the waker");
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
    }

    /// Changes a registered source's interest (and/or key).
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "key reserved for the waker");
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
    }

    /// Removes a source's registration.
    ///
    /// Do this before closing a duplicated fd: the kernel keeps an
    /// epoll registration alive as long as *any* duplicate of the
    /// registered description stays open.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Blocks until at least one source is ready, the timeout lapses,
    /// or [`Poller::notify`] is called; fills `events` (cleared first)
    /// and returns how many were delivered. A wake by `notify` alone
    /// returns `Ok(0)` with no events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(t) => t
                .as_millis()
                .min(c_int::MAX as u128)
                .try_into()
                .unwrap_or(c_int::MAX)
                .max(if t.is_zero() { 0 } else { 1 }),
        };
        const CAP: usize = 1024;
        let mut raw = [EpollEvent { events: 0, u64: 0 }; CAP];
        let n = loop {
            match cvt(unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as c_int, timeout_ms) })
            {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let (bits, key) = (ev.events, ev.u64 as usize);
            if key == NOTIFY_KEY {
                // Drain the eventfd so the next notify() fires again.
                let mut buf = 0u64;
                unsafe { read(self.notify_fd, &mut buf as *mut u64 as *mut c_void, 8) };
                continue;
            }
            let err = bits & (EPOLLERR | EPOLLHUP) != 0;
            events.push(Event {
                key,
                readable: err || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: err || bits & EPOLLOUT != 0,
            });
        }
        Ok(events.len())
    }

    /// Wakes a concurrent [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let one = 1u64;
        let ret = unsafe { write(self.notify_fd, &one as *const u64 as *const c_void, 8) };
        // EAGAIN means a previous notify is still pending — the waiter
        // will wake anyway.
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.notify_fd);
            close(self.epfd);
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("epfd", &self.epfd)
            .field("notify_fd", &self.notify_fd)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// rlimit helper
// ---------------------------------------------------------------------------

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the
/// resulting soft limit. The connection-scaling batteries call this
/// first: CI runners default to a 1024-fd soft cap, far below 10k
/// sockets.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    }
    Ok(lim.rlim_cur)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(1)).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable));

        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(&accepted, Event::readable(2)).unwrap();

        // No data yet: key 2 stays quiet.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.key == 2));

        client.write_all(b"hello").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.readable));

        // Level-triggered: unread data keeps reporting.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.readable));

        // Writable interest on an idle socket fires immediately.
        poller.modify(&accepted, Event::all(2)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.writable));

        // Drain + interest none: quiet again.
        let mut buf = [0u8; 16];
        assert_eq!(accepted.read(&mut buf).unwrap(), 5);
        poller.modify(&accepted, Event::none(2)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.key == 2));

        // Peer close surfaces as readiness even at interest none
        // (EPOLLHUP/EPOLLRDHUP are not maskable).
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.readable));

        poller.delete(&accepted).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.key == 2));
    }

    #[test]
    fn notify_wakes_a_blocked_wait_across_threads() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let woken = {
            let poller = poller.clone();
            std::thread::spawn(move || {
                let mut events = Vec::new();
                let start = Instant::now();
                poller
                    .wait(&mut events, Some(Duration::from_secs(30)))
                    .unwrap();
                (start.elapsed(), events.len())
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        poller.notify().unwrap();
        let (elapsed, n) = woken.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "wait did not wake: {elapsed:?}"
        );
        assert_eq!(n, 0, "notify must not surface as a user event");

        // Coalesced double-notify still wakes exactly once, then the
        // next wait times out (eventfd drained).
        poller.notify().unwrap();
        poller.notify().unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn nofile_limit_is_raised_to_hard() {
        let soft = raise_nofile_limit().unwrap();
        assert!(soft >= 1024);
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), soft);
    }
}
