//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the API surface the workspace's bench targets use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched` /
//! `iter_with_large_drop`, `BenchmarkId`, `BatchSize`) with a simple
//! wall-clock measurement loop and a plain-text report instead of
//! criterion's statistical machinery.
//!
//! Under `cargo test` (or with `--test` in the args) each benchmark
//! body runs exactly once, so bench targets double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handle passed to each `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name,
            measurement: Duration::from_millis(200),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement = Duration::from_millis(200);
        run_one(self.test_mode, &id.to_string(), measurement, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Cap the measurement loop for each benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(Duration::from_millis(500));
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.criterion.test_mode,
            &id.to_string(),
            self.measurement,
            f,
        );
        self
    }

    /// End the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F>(test_mode: bool, id: &str, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        single_shot: test_mode,
        deadline: Instant::now()
            + if test_mode {
                Duration::ZERO
            } else {
                measurement
            },
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("  {id:<40} ok (test mode)");
    } else if b.iters > 0 {
        let per = b.elapsed.as_nanos() / b.iters as u128;
        println!("  {id:<40} {per:>12} ns/iter ({} iters)", b.iters);
    } else {
        println!("  {id:<40} (no iterations)");
    }
}

/// Measurement driver passed to each benchmark closure.
pub struct Bencher {
    single_shot: bool,
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Call `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if self.single_shot || Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], dropping large outputs outside the timed
    /// section.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let t0 = Instant::now();
            let out = routine();
            self.elapsed += t0.elapsed();
            drop(black_box(out));
            self.iters += 1;
            if self.single_shot || Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Measure `routine` on inputs built by `setup` outside the timed
    /// section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if self.single_shot || Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// Batch sizing hints (accepted for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// A two-part benchmark id: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Group several bench functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("CRITERION_TEST_MODE", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("inc", 1), |b| b.iter(|| count += 1));
        group.bench_function(BenchmarkId::new("batched", 2), |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
        assert!(count >= 1);
        c.bench_function("free-standing", |b| b.iter(|| black_box(2 + 2)));
    }
}
