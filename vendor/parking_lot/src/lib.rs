//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of `parking_lot`'s API the
//! workspace actually uses — `Mutex` and `RwLock` with guards that do
//! not return `Result` — implemented as thin wrappers over `std::sync`.
//! Poisoning is deliberately ignored, matching `parking_lot`'s
//! semantics: a panic while holding a lock does not make the data
//! permanently inaccessible.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly
/// (no poisoning), mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock` (guards come
/// back directly, never poisoned).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
