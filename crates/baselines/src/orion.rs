//! ORION-style versioning (with the IRIS transformation for previously
//! unversioned objects).
//!
//! Two properties from §3/§7 distinguish ORION from Ode:
//!
//! 1. **No version orthogonality** — "only objects of types declared to
//!    be versionable can be versioned."  Here, objects created with
//!    [`VersionModel::create_unversioned`] are plain records; calling
//!    [`VersionModel::new_version`] on them fails until the IRIS-style
//!    [`VersionModel::make_versionable`] *transformation* copies them
//!    into the versioned representation.
//! 2. **Generic object headers** — "an object id does not refer to a
//!    generic object header as in [ORION/IRIS]" (Ode's design note).
//!    Here every reference to a versionable object resolves through a
//!    header record listing its version descriptors, i.e. one extra
//!    record fetch per access and a header rewrite (growing with the
//!    version count) per derivation.

use std::path::Path;

use ode_codec::impl_persist_struct;
use ode_object::{IdAllocator, KvTable, ObjectHeap};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite, Store, StoreOptions};

use crate::model::{BranchOutcome, ModelError, ModelResult, VersionModel};

/// The generic object header every versionable reference goes through.
#[derive(Debug, Clone, PartialEq)]
struct OrionHeader {
    /// Version descriptors (every version ever derived), newest last.
    versions: Vec<u64>,
    /// The default version a generic reference binds to.
    default: u64,
}
impl_persist_struct!(OrionHeader { versions, default });

#[derive(Debug, Clone, PartialEq)]
struct OrionVersion {
    parent: u64,
    body: Vec<u8>,
}
impl_persist_struct!(OrionVersion { parent, body });

/// Object-table value tagging: even = unversioned record, odd =
/// versionable header. Encoded in the low bit of a shifted record id.
const KIND_PLAIN: u64 = 0;
const KIND_VERSIONED: u64 = 1;

/// The ORION/IRIS comparator model.
pub struct OrionModel {
    store: Store,
    objects: KvTable,
    versions: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
}

impl OrionModel {
    /// Create a fresh model store (fsync disabled: benchmark preset).
    pub fn create(path: &Path) -> ModelResult<OrionModel> {
        let store = Store::create(
            path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )?;
        Ok(OrionModel {
            store,
            objects: KvTable::new(0),
            versions: KvTable::new(1),
            heap: ObjectHeap::new(2),
            oids: IdAllocator::new(3),
            vids: IdAllocator::new(4),
        })
    }

    fn entry(&self, tx: &mut impl PageRead, obj: u64) -> ModelResult<(u64, RecordId)> {
        let raw = self.objects.get(tx, obj)?.ok_or(ModelError::NotFound)?;
        Ok((raw & 1, RecordId::from_u64(raw >> 1)))
    }

    fn set_entry(
        &self,
        tx: &mut impl PageWrite,
        obj: u64,
        kind: u64,
        rid: RecordId,
    ) -> ModelResult<()> {
        self.objects.put(tx, obj, (rid.to_u64() << 1) | kind)?;
        Ok(())
    }

    fn load_header(&self, tx: &mut impl PageRead, obj: u64) -> ModelResult<OrionHeader> {
        let (kind, rid) = self.entry(tx, obj)?;
        if kind != KIND_VERSIONED {
            return Err(ModelError::Unsupported(
                "object was not declared versionable",
            ));
        }
        Ok(self.heap.load(tx, rid)?)
    }

    fn save_header(
        &self,
        tx: &mut impl PageWrite,
        obj: u64,
        header: &OrionHeader,
    ) -> ModelResult<()> {
        let (kind, rid) = self.entry(tx, obj)?;
        debug_assert_eq!(kind, KIND_VERSIONED);
        let new = self.heap.replace(tx, rid, header)?;
        self.set_entry(tx, obj, KIND_VERSIONED, new)?;
        Ok(())
    }

    fn load_version(&self, tx: &mut impl PageRead, ver: u64) -> ModelResult<OrionVersion> {
        let rid = self.versions.get(tx, ver)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn store_version(
        &self,
        tx: &mut impl PageWrite,
        ver: u64,
        v: &OrionVersion,
    ) -> ModelResult<()> {
        match self.versions.get(tx, ver)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), v)?;
                if new.to_u64() != rid {
                    self.versions.put(tx, ver, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, v)?;
                self.versions.put(tx, ver, rid.to_u64())?;
            }
        }
        Ok(())
    }
}

impl VersionModel for OrionModel {
    fn name(&self) -> &'static str {
        "orion"
    }

    fn create(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let obj = self.oids.next(&mut tx)?;
        let ver = self.vids.next(&mut tx)?;
        self.store_version(
            &mut tx,
            ver,
            &OrionVersion {
                parent: 0,
                body: body.to_vec(),
            },
        )?;
        let header = OrionHeader {
            versions: vec![ver],
            default: ver,
        };
        let rid = self.heap.store(&mut tx, &header)?;
        self.set_entry(&mut tx, obj, KIND_VERSIONED, rid)?;
        tx.commit()?;
        Ok(obj)
    }

    fn create_unversioned(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let obj = self.oids.next(&mut tx)?;
        let rid = self.heap.insert_raw(&mut tx, body)?;
        self.set_entry(&mut tx, obj, KIND_PLAIN, rid)?;
        tx.commit()?;
        Ok(obj)
    }

    fn make_versionable(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let (kind, rid) = self.entry(&mut tx, obj)?;
        if kind == KIND_VERSIONED {
            tx.commit()?;
            return Ok(());
        }
        // IRIS transformation: copy the plain record into the versioned
        // representation.
        let body = self.heap.load_bytes(&mut tx, rid)?;
        self.heap.delete(&mut tx, rid)?;
        let ver = self.vids.next(&mut tx)?;
        self.store_version(&mut tx, ver, &OrionVersion { parent: 0, body })?;
        let header = OrionHeader {
            versions: vec![ver],
            default: ver,
        };
        let hrid = self.heap.store(&mut tx, &header)?;
        self.set_entry(&mut tx, obj, KIND_VERSIONED, hrid)?;
        tx.commit()?;
        Ok(())
    }

    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        let (kind, rid) = self.entry(&mut tx, obj)?;
        if kind == KIND_PLAIN {
            return Ok(self.heap.load_bytes(&mut tx, rid)?);
        }
        // The extra hop: header record, then version record.
        let header: OrionHeader = self.heap.load(&mut tx, rid)?;
        Ok(self.load_version(&mut tx, header.default)?.body)
    }

    fn current_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_header(&mut tx, obj)?.default)
    }

    fn read_version(&mut self, _obj: u64, ver: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        Ok(self.load_version(&mut tx, ver)?.body)
    }

    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let (kind, rid) = self.entry(&mut tx, obj)?;
        if kind == KIND_PLAIN {
            let new = self.heap.replace_raw(&mut tx, rid, body)?;
            self.set_entry(&mut tx, obj, KIND_PLAIN, new)?;
            tx.commit()?;
            return Ok(());
        }
        let header: OrionHeader = self.heap.load(&mut tx, rid)?;
        let mut v = self.load_version(&mut tx, header.default)?;
        v.body = body.to_vec();
        self.store_version(&mut tx, header.default, &v)?;
        tx.commit()?;
        Ok(())
    }

    fn new_version(&mut self, obj: u64) -> ModelResult<u64> {
        let default = self.current_version(obj)?;
        match self.new_version_from(obj, default)? {
            BranchOutcome::Version(v) => Ok(v),
            BranchOutcome::NewObject(_) => unreachable!("orion branches in place"),
        }
    }

    fn new_version_from(&mut self, obj: u64, ver: u64) -> ModelResult<BranchOutcome> {
        let mut tx = self.store.begin();
        let mut header = self.load_header(&mut tx, obj)?;
        if !header.versions.contains(&ver) {
            return Err(ModelError::NotFound);
        }
        let base = self.load_version(&mut tx, ver)?;
        let new_ver = self.vids.next(&mut tx)?;
        self.store_version(
            &mut tx,
            new_ver,
            &OrionVersion {
                parent: ver,
                body: base.body,
            },
        )?;
        // Header rewrite grows with the descriptor list.
        header.versions.push(new_ver);
        header.default = new_ver;
        self.save_header(&mut tx, obj, &header)?;
        tx.commit()?;
        Ok(BranchOutcome::Version(new_ver))
    }

    fn delete_object(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let (kind, rid) = self.entry(&mut tx, obj)?;
        if kind == KIND_VERSIONED {
            let header: OrionHeader = self.heap.load(&mut tx, rid)?;
            for ver in header.versions {
                if let Some(vrid) = self.versions.remove(&mut tx, ver)? {
                    self.heap.delete(&mut tx, RecordId::from_u64(vrid))?;
                }
            }
        }
        self.heap.delete(&mut tx, rid)?;
        self.objects.remove(&mut tx, obj)?;
        tx.commit()?;
        Ok(())
    }

    fn version_count(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        let (kind, _) = self.entry(&mut tx, obj)?;
        if kind == KIND_PLAIN {
            return Ok(1);
        }
        Ok(self.load_header(&mut tx, obj)?.versions.len() as u64)
    }
}
