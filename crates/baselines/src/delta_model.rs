//! Delta-chain storage model (the EXODUS-flavoured comparator).
//!
//! §7 notes that "the EXODUS storage manager provides a general
//! mechanism for implementing a variety of versioning schemes … versions
//! of large objects share common pages."  Page sharing is below our
//! record-level substrate, so this model reproduces the *storage
//! signature* at record granularity: each object's history is a single
//! record holding an RCS-style [`ReverseChain`] — the latest version is
//! whole (cheap current reads, like Ode), older versions share storage
//! through deltas (cheap space), and every derivation rewrites the
//! chain record (append cost grows with the diff, and old-version reads
//! pay delta replay).  Histories are linear; branching copies, as in
//! the linear model.

use std::path::Path;

use ode_codec::impl_persist_struct;
use ode_delta::ReverseChain;
use ode_object::{IdAllocator, KvTable, ObjectHeap};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite, Store, StoreOptions};

use crate::model::{BranchOutcome, ModelError, ModelResult, VersionModel};

/// Per-object record: the delta chain plus the handle of its newest
/// version (so `current_version` is O(1)).
#[derive(Debug, Clone, PartialEq)]
struct DeltaObject {
    chain: ReverseChain,
    latest_handle: u64,
}
impl_persist_struct!(DeltaObject {
    chain,
    latest_handle
});

/// The delta-chain comparator model.
pub struct DeltaModel {
    store: Store,
    /// obj → chain record id.
    objects: KvTable,
    /// version handle → (obj << 20) | chain index.
    versions: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
}

const INDEX_BITS: u64 = 20;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

impl DeltaModel {
    /// Create a fresh model store (fsync disabled: benchmark preset).
    pub fn create(path: &Path) -> ModelResult<DeltaModel> {
        let store = Store::create(
            path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )?;
        Ok(DeltaModel {
            store,
            objects: KvTable::new(0),
            versions: KvTable::new(1),
            heap: ObjectHeap::new(2),
            oids: IdAllocator::new(3),
            vids: IdAllocator::new(4),
        })
    }

    fn load_chain(&self, tx: &mut impl PageRead, obj: u64) -> ModelResult<DeltaObject> {
        let rid = self.objects.get(tx, obj)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_chain(
        &self,
        tx: &mut impl PageWrite,
        obj: u64,
        chain: &DeltaObject,
    ) -> ModelResult<()> {
        match self.objects.get(tx, obj)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), chain)?;
                if new.to_u64() != rid {
                    self.objects.put(tx, obj, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, chain)?;
                self.objects.put(tx, obj, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn register_version(
        &self,
        tx: &mut impl PageWrite,
        obj: u64,
        index: usize,
    ) -> ModelResult<u64> {
        let ver = self.vids.next(tx)?;
        self.versions
            .put(tx, ver, (obj << INDEX_BITS) | index as u64)?;
        Ok(ver)
    }

    fn locate(&self, tx: &mut impl PageRead, ver: u64) -> ModelResult<(u64, usize)> {
        let packed = self.versions.get(tx, ver)?.ok_or(ModelError::NotFound)?;
        Ok((packed >> INDEX_BITS, (packed & INDEX_MASK) as usize))
    }
}

impl VersionModel for DeltaModel {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn create(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let obj = self.oids.next(&mut tx)?;
        let handle = self.register_version(&mut tx, obj, 0)?;
        let record = DeltaObject {
            chain: ReverseChain::new(body.to_vec()),
            latest_handle: handle,
        };
        self.save_chain(&mut tx, obj, &record)?;
        tx.commit()?;
        Ok(obj)
    }

    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        Ok(self.load_chain(&mut tx, obj)?.chain.latest().to_vec())
    }

    fn current_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_chain(&mut tx, obj)?.latest_handle)
    }

    fn read_version(&mut self, _obj: u64, ver: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        let (obj, index) = self.locate(&mut tx, ver)?;
        let record = self.load_chain(&mut tx, obj)?;
        record
            .chain
            .materialize(index)
            .map_err(|_| ModelError::Unsupported("corrupt delta chain"))
    }

    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let mut record = self.load_chain(&mut tx, obj)?;
        record
            .chain
            .set_head(body)
            .map_err(|_| ModelError::Unsupported("corrupt delta chain"))?;
        self.save_chain(&mut tx, obj, &record)?;
        tx.commit()?;
        Ok(())
    }

    fn new_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let mut record = self.load_chain(&mut tx, obj)?;
        let state = record.chain.latest().to_vec();
        record.chain.push(&state);
        let index = record.chain.len() - 1;
        let ver = self.register_version(&mut tx, obj, index)?;
        record.latest_handle = ver;
        self.save_chain(&mut tx, obj, &record)?;
        tx.commit()?;
        Ok(ver)
    }

    fn new_version_from(&mut self, obj: u64, ver: u64) -> ModelResult<BranchOutcome> {
        let current = {
            let mut tx = self.store.read();
            let (owner, index) = self.locate(&mut tx, ver)?;
            // The handle may point into an earlier branch copy; only a
            // handle at the tip of *this* object's chain extends it.
            let record = self.load_chain(&mut tx, owner)?;
            owner == obj && index == record.chain.len() - 1
        };
        if current {
            return Ok(BranchOutcome::Version(self.new_version(obj)?));
        }
        // Linear chains cannot branch: copy, like GemStone/POSTGRES.
        let state = self.read_version(obj, ver)?;
        Ok(BranchOutcome::NewObject(self.create(&state)?))
    }

    fn delete_object(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let rid = self
            .objects
            .remove(&mut tx, obj)?
            .ok_or(ModelError::NotFound)?;
        self.heap.delete(&mut tx, RecordId::from_u64(rid))?;
        // Drop this object's version handles.
        let last = self.vids.last(&mut tx)?;
        for ver in 1..=last {
            if let Some(packed) = self.versions.get(&mut tx, ver)? {
                if packed >> INDEX_BITS == obj {
                    self.versions.remove(&mut tx, ver)?;
                }
            }
        }
        tx.commit()?;
        Ok(())
    }

    fn version_count(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_chain(&mut tx, obj)?.chain.len() as u64)
    }
}
