//! GemStone/POSTGRES-style **linear** versioning.
//!
//! "Some current versioning proposals (GemStone and POSTGRES, for
//! example) constrain the version relationship of an object to be
//! linear, which is inadequate for design databases." (§2)
//!
//! Each object is a singly linked chain of version records (newest
//! first), so purely linear workloads are as cheap as Ode's.  The
//! inadequacy shows up on branching: [`LinearModel::new_version_from`]
//! on a non-tip version cannot extend the chain sideways — following
//! what users of such systems actually do, it **copies** the requested
//! state into a brand-new object, losing shared history and paying a
//! full-object write.

use std::path::Path;

use ode_codec::impl_persist_struct;
use ode_object::{IdAllocator, KvTable, ObjectHeap};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite, Store, StoreOptions};

use crate::model::{BranchOutcome, ModelError, ModelResult, VersionModel};

#[derive(Debug, Clone, PartialEq)]
struct LinearObject {
    head: u64,
    count: u64,
}
impl_persist_struct!(LinearObject { head, count });

#[derive(Debug, Clone, PartialEq)]
struct LinearVersion {
    prev: u64,
    body: Vec<u8>,
}
impl_persist_struct!(LinearVersion { prev, body });

/// The linear-history comparator model.
pub struct LinearModel {
    store: Store,
    objects: KvTable,
    versions: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
}

impl LinearModel {
    /// Create a fresh model store (fsync disabled: benchmark preset).
    pub fn create(path: &Path) -> ModelResult<LinearModel> {
        let store = Store::create(
            path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )?;
        Ok(LinearModel {
            store,
            objects: KvTable::new(0),
            versions: KvTable::new(1),
            heap: ObjectHeap::new(2),
            oids: IdAllocator::new(3),
            vids: IdAllocator::new(4),
        })
    }

    fn load_object(&self, tx: &mut impl PageRead, obj: u64) -> ModelResult<LinearObject> {
        let rid = self.objects.get(tx, obj)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_object(
        &self,
        tx: &mut impl PageWrite,
        obj: u64,
        meta: &LinearObject,
    ) -> ModelResult<()> {
        match self.objects.get(tx, obj)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), meta)?;
                if new.to_u64() != rid {
                    self.objects.put(tx, obj, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, meta)?;
                self.objects.put(tx, obj, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn load_version(&self, tx: &mut impl PageRead, ver: u64) -> ModelResult<LinearVersion> {
        let rid = self.versions.get(tx, ver)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn store_version(
        &self,
        tx: &mut impl PageWrite,
        ver: u64,
        v: &LinearVersion,
    ) -> ModelResult<()> {
        match self.versions.get(tx, ver)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), v)?;
                if new.to_u64() != rid {
                    self.versions.put(tx, ver, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, v)?;
                self.versions.put(tx, ver, rid.to_u64())?;
            }
        }
        Ok(())
    }
}

impl VersionModel for LinearModel {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn create(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let obj = self.oids.next(&mut tx)?;
        let ver = self.vids.next(&mut tx)?;
        self.store_version(
            &mut tx,
            ver,
            &LinearVersion {
                prev: 0,
                body: body.to_vec(),
            },
        )?;
        self.save_object(
            &mut tx,
            obj,
            &LinearObject {
                head: ver,
                count: 1,
            },
        )?;
        tx.commit()?;
        Ok(obj)
    }

    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        let meta = self.load_object(&mut tx, obj)?;
        Ok(self.load_version(&mut tx, meta.head)?.body)
    }

    fn current_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_object(&mut tx, obj)?.head)
    }

    fn read_version(&mut self, _obj: u64, ver: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        Ok(self.load_version(&mut tx, ver)?.body)
    }

    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let meta = self.load_object(&mut tx, obj)?;
        let mut head = self.load_version(&mut tx, meta.head)?;
        head.body = body.to_vec();
        self.store_version(&mut tx, meta.head, &head)?;
        tx.commit()?;
        Ok(())
    }

    fn new_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let mut meta = self.load_object(&mut tx, obj)?;
        let base = self.load_version(&mut tx, meta.head)?;
        let ver = self.vids.next(&mut tx)?;
        self.store_version(
            &mut tx,
            ver,
            &LinearVersion {
                prev: meta.head,
                body: base.body,
            },
        )?;
        meta.head = ver;
        meta.count += 1;
        self.save_object(&mut tx, obj, &meta)?;
        tx.commit()?;
        Ok(ver)
    }

    fn new_version_from(&mut self, obj: u64, ver: u64) -> ModelResult<BranchOutcome> {
        // Tip derivation extends the chain; anything else forces the
        // whole-object copy (linear histories cannot branch).
        let head = self.current_version(obj)?;
        if ver == head {
            return Ok(BranchOutcome::Version(self.new_version(obj)?));
        }
        let state = self.read_version(obj, ver)?;
        let new_obj = self.create(&state)?;
        Ok(BranchOutcome::NewObject(new_obj))
    }

    fn delete_object(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let meta = self.load_object(&mut tx, obj)?;
        let mut cur = meta.head;
        while cur != 0 {
            let v = self.load_version(&mut tx, cur)?;
            if let Some(rid) = self.versions.remove(&mut tx, cur)? {
                self.heap.delete(&mut tx, RecordId::from_u64(rid))?;
            }
            cur = v.prev;
        }
        if let Some(rid) = self.objects.remove(&mut tx, obj)? {
            self.heap.delete(&mut tx, RecordId::from_u64(rid))?;
        }
        tx.commit()?;
        Ok(())
    }

    fn version_count(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_object(&mut tx, obj)?.count)
    }
}
