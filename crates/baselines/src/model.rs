//! The untyped interface every comparator model implements.

use std::fmt;

/// Result alias for model operations.
pub type ModelResult<T> = Result<T, ModelError>;

/// Errors from a version model.
#[derive(Debug)]
pub enum ModelError {
    /// The model's semantics do not support this operation (e.g.
    /// versioning an undeclared object in ORION).
    Unsupported(&'static str),
    /// Unknown object or version handle.
    NotFound,
    /// Substrate failure.
    Storage(ode_storage::StorageError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Unsupported(what) => write!(f, "unsupported by this model: {what}"),
            ModelError::NotFound => write!(f, "object or version not found"),
            ModelError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<ode_storage::StorageError> for ModelError {
    fn from(e: ode_storage::StorageError) -> Self {
        ModelError::Storage(e)
    }
}

impl From<ode_version::VersionError> for ModelError {
    fn from(e: ode_version::VersionError) -> Self {
        match e {
            ode_version::VersionError::Storage(s) => ModelError::Storage(s),
            ode_version::VersionError::UnknownObject(_)
            | ode_version::VersionError::UnknownVersion(_) => ModelError::NotFound,
            ode_version::VersionError::TypeMismatch { .. } => {
                ModelError::Unsupported("type mismatch")
            }
            ode_version::VersionError::LastVersion(_) => {
                ModelError::Unsupported("deleting last version")
            }
            ode_version::VersionError::ChainCorrupt(_) => {
                ModelError::Unsupported("corrupt delta chain")
            }
            ode_version::VersionError::MergeMismatch { .. } => {
                ModelError::Unsupported("merging unrelated versions")
            }
        }
    }
}

/// What branching from a non-tip version produced.
///
/// Tree-model systems return a [`BranchOutcome::Version`]; linear-model
/// systems (GemStone, POSTGRES) cannot represent alternatives inside one
/// object, so they *copy* the history into a fresh object — the cost the
/// paper's "inadequate for design databases" remark points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOutcome {
    /// A new version inside the same object.
    Version(u64),
    /// A whole new object seeded from the requested version's state.
    NewObject(u64),
}

/// A version model driven by the benchmark harness: untyped byte bodies,
/// `u64` object and version handles.
pub trait VersionModel {
    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// Create a *versionable* object with an initial state.
    fn create(&mut self, body: &[u8]) -> ModelResult<u64>;

    /// Create an object with versioning off, where the model
    /// distinguishes (ORION); orthogonal models treat this as
    /// [`VersionModel::create`].
    fn create_unversioned(&mut self, body: &[u8]) -> ModelResult<u64> {
        self.create(body)
    }

    /// Make a previously unversioned object versionable. Orthogonal
    /// models: no-op. ORION/IRIS: a copying transformation.
    fn make_versionable(&mut self, _obj: u64) -> ModelResult<()> {
        Ok(())
    }

    /// Read the object's current state (whatever "current" means to the
    /// model: latest version / default version per its semantics).
    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>>;

    /// Handle of the current version.
    fn current_version(&mut self, obj: u64) -> ModelResult<u64>;

    /// Read one specific version's state.
    fn read_version(&mut self, obj: u64, ver: u64) -> ModelResult<Vec<u8>>;

    /// Overwrite the current version's state in place.
    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()>;

    /// Derive a new version from the current one.
    fn new_version(&mut self, obj: u64) -> ModelResult<u64>;

    /// Derive from a specific version (branch when it is not the tip).
    fn new_version_from(&mut self, obj: u64, ver: u64) -> ModelResult<BranchOutcome>;

    /// Delete the object and all its versions.
    fn delete_object(&mut self, obj: u64) -> ModelResult<()>;

    /// Number of live versions.
    fn version_count(&mut self, obj: u64) -> ModelResult<u64>;
}
