//! The paper's model, adapted to the untyped benchmark interface.

use std::path::Path;

use ode_codec::TypeTag;
use ode_object::{Oid, Vid};
use ode_storage::{Store, StoreOptions};
use ode_version::{VersionStore, VersionStoreLayout};

use crate::model::{BranchOutcome, ModelResult, VersionModel};

const TAG: TypeTag = TypeTag::from_name("baseline/Obj");

/// O++ semantics: orthogonal versioning, tree-shaped derived-from
/// relationship, object handle resolves to the latest version.
pub struct OdeModel {
    store: Store,
    vs: VersionStore,
}

impl OdeModel {
    /// Create a fresh model store (fsync disabled: benchmark preset).
    pub fn create(path: &Path) -> ModelResult<OdeModel> {
        let store = Store::create(
            path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )?;
        Ok(OdeModel {
            store,
            vs: VersionStore::new(VersionStoreLayout::default()),
        })
    }
}

impl VersionModel for OdeModel {
    fn name(&self) -> &'static str {
        "ode"
    }

    fn create(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let (oid, _vid) = self.vs.create_object(&mut tx, TAG, body.to_vec())?;
        tx.commit()?;
        Ok(oid.0)
    }

    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        let vid = self.vs.latest(&mut tx, Oid(obj))?;
        Ok(self.vs.read_body(&mut tx, vid, TAG)?)
    }

    fn current_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.vs.latest(&mut tx, Oid(obj))?.0)
    }

    fn read_version(&mut self, _obj: u64, ver: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        Ok(self.vs.read_body(&mut tx, Vid(ver), TAG)?)
    }

    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let vid = self.vs.latest(&mut tx, Oid(obj))?;
        self.vs.write_body(&mut tx, vid, TAG, body.to_vec())?;
        tx.commit()?;
        Ok(())
    }

    fn new_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let vid = self.vs.new_version_of(&mut tx, Oid(obj))?;
        tx.commit()?;
        Ok(vid.0)
    }

    fn new_version_from(&mut self, _obj: u64, ver: u64) -> ModelResult<BranchOutcome> {
        let mut tx = self.store.begin();
        let vid = self.vs.new_version_from(&mut tx, Vid(ver))?;
        tx.commit()?;
        Ok(BranchOutcome::Version(vid.0))
    }

    fn delete_object(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        self.vs.delete_object(&mut tx, Oid(obj))?;
        tx.commit()?;
        Ok(())
    }

    fn version_count(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.vs.version_count(&mut tx, Oid(obj))?)
    }
}
