//! ENCORE-style versioning: History-Bearing Entities plus Version-Sets.
//!
//! From §7: "Version control in ENCORE is realized by introducing two
//! new types: History-Bearing-Entity (HBE) and Version-Set.  To create
//! a versioned object, its corresponding type must inherit the
//! properties defined by these two types.  Properties defined by HBE
//! include next-version and previous-version.  Version-Set is used to
//! collect all of the versions of an object [and] provides an insert
//! operation that allows new versions to be added at the end of a
//! version sequence or as an alternative to an existing version."
//!
//! The cost signature this reproduces: every derivation rewrites the
//! Version-Set record, whose size grows linearly with the number of
//! versions — contrast with Ode's constant-size `ObjectMeta` update.

use std::path::Path;

use ode_codec::impl_persist_struct;
use ode_object::{IdAllocator, KvTable, ObjectHeap};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite, Store, StoreOptions};

use crate::model::{BranchOutcome, ModelError, ModelResult, VersionModel};

/// The Version-Set record collecting all versions of one object.
#[derive(Debug, Clone, PartialEq)]
struct VersionSet {
    /// All versions in insertion order (the "version sequence").
    members: Vec<u64>,
    /// The sequence tip a bare object reference binds to.
    current: u64,
}
impl_persist_struct!(VersionSet { members, current });

/// A History-Bearing Entity: state plus its HBE properties.
#[derive(Debug, Clone, PartialEq)]
struct Hbe {
    previous_version: u64,
    next_version: u64,
    body: Vec<u8>,
}
impl_persist_struct!(Hbe {
    previous_version,
    next_version,
    body
});

/// The ENCORE comparator model.
pub struct HbeModel {
    store: Store,
    /// obj → Version-Set record.
    sets: KvTable,
    /// ver → HBE record.
    entities: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
}

impl HbeModel {
    /// Create a fresh model store (fsync disabled: benchmark preset).
    pub fn create(path: &Path) -> ModelResult<HbeModel> {
        let store = Store::create(
            path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )?;
        Ok(HbeModel {
            store,
            sets: KvTable::new(0),
            entities: KvTable::new(1),
            heap: ObjectHeap::new(2),
            oids: IdAllocator::new(3),
            vids: IdAllocator::new(4),
        })
    }

    fn load_set(&self, tx: &mut impl PageRead, obj: u64) -> ModelResult<VersionSet> {
        let rid = self.sets.get(tx, obj)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_set(&self, tx: &mut impl PageWrite, obj: u64, set: &VersionSet) -> ModelResult<()> {
        match self.sets.get(tx, obj)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), set)?;
                if new.to_u64() != rid {
                    self.sets.put(tx, obj, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, set)?;
                self.sets.put(tx, obj, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn load_hbe(&self, tx: &mut impl PageRead, ver: u64) -> ModelResult<Hbe> {
        let rid = self.entities.get(tx, ver)?.ok_or(ModelError::NotFound)?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_hbe(&self, tx: &mut impl PageWrite, ver: u64, hbe: &Hbe) -> ModelResult<()> {
        match self.entities.get(tx, ver)? {
            Some(rid) => {
                let new = self.heap.replace(tx, RecordId::from_u64(rid), hbe)?;
                if new.to_u64() != rid {
                    self.entities.put(tx, ver, new.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, hbe)?;
                self.entities.put(tx, ver, rid.to_u64())?;
            }
        }
        Ok(())
    }
}

impl VersionModel for HbeModel {
    fn name(&self) -> &'static str {
        "hbe"
    }

    fn create(&mut self, body: &[u8]) -> ModelResult<u64> {
        let mut tx = self.store.begin();
        let obj = self.oids.next(&mut tx)?;
        let ver = self.vids.next(&mut tx)?;
        self.save_hbe(
            &mut tx,
            ver,
            &Hbe {
                previous_version: 0,
                next_version: 0,
                body: body.to_vec(),
            },
        )?;
        self.save_set(
            &mut tx,
            obj,
            &VersionSet {
                members: vec![ver],
                current: ver,
            },
        )?;
        tx.commit()?;
        Ok(obj)
    }

    fn read_current(&mut self, obj: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        let set = self.load_set(&mut tx, obj)?;
        Ok(self.load_hbe(&mut tx, set.current)?.body)
    }

    fn current_version(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_set(&mut tx, obj)?.current)
    }

    fn read_version(&mut self, _obj: u64, ver: u64) -> ModelResult<Vec<u8>> {
        let mut tx = self.store.read();
        Ok(self.load_hbe(&mut tx, ver)?.body)
    }

    fn update_current(&mut self, obj: u64, body: &[u8]) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let set = self.load_set(&mut tx, obj)?;
        let mut hbe = self.load_hbe(&mut tx, set.current)?;
        hbe.body = body.to_vec();
        self.save_hbe(&mut tx, set.current, &hbe)?;
        tx.commit()?;
        Ok(())
    }

    fn new_version(&mut self, obj: u64) -> ModelResult<u64> {
        let current = self.current_version(obj)?;
        match self.new_version_from(obj, current)? {
            BranchOutcome::Version(v) => Ok(v),
            BranchOutcome::NewObject(_) => unreachable!("hbe branches in place"),
        }
    }

    fn new_version_from(&mut self, obj: u64, ver: u64) -> ModelResult<BranchOutcome> {
        let mut tx = self.store.begin();
        let mut set = self.load_set(&mut tx, obj)?;
        if !set.members.contains(&ver) {
            return Err(ModelError::NotFound);
        }
        let mut base = self.load_hbe(&mut tx, ver)?;
        let new_ver = self.vids.next(&mut tx)?;
        self.save_hbe(
            &mut tx,
            new_ver,
            &Hbe {
                previous_version: ver,
                next_version: 0,
                body: base.body.clone(),
            },
        )?;
        // HBE property maintenance on the base entity.
        base.next_version = new_ver;
        self.save_hbe(&mut tx, ver, &base)?;
        // The Version-Set insert: the whole member list is rewritten.
        set.members.push(new_ver);
        set.current = new_ver;
        self.save_set(&mut tx, obj, &set)?;
        tx.commit()?;
        Ok(BranchOutcome::Version(new_ver))
    }

    fn delete_object(&mut self, obj: u64) -> ModelResult<()> {
        let mut tx = self.store.begin();
        let set = self.load_set(&mut tx, obj)?;
        for ver in set.members {
            if let Some(rid) = self.entities.remove(&mut tx, ver)? {
                self.heap.delete(&mut tx, RecordId::from_u64(rid))?;
            }
        }
        if let Some(rid) = self.sets.remove(&mut tx, obj)? {
            self.heap.delete(&mut tx, RecordId::from_u64(rid))?;
        }
        tx.commit()?;
        Ok(())
    }

    fn version_count(&mut self, obj: u64) -> ModelResult<u64> {
        let mut tx = self.store.read();
        Ok(self.load_set(&mut tx, obj)?.members.len() as u64)
    }
}
