//! # ode-baselines — comparator version models over the same substrate
//!
//! §7 of the paper compares O++'s versioning against ORION, IRIS,
//! GemStone, POSTGRES, ENCORE and EXODUS.  None of those systems is
//! runnable today, so this crate implements the *version-model semantics*
//! each represents, all over the identical `ode-storage` substrate, so
//! benchmarks isolate the model rather than the storage engine:
//!
//! | model | represents | defining property |
//! |-------|-----------|-------------------|
//! | [`OdeModel`] | this paper | orthogonal, tree histories, object id → latest |
//! | [`LinearModel`] | GemStone / POSTGRES | strictly linear history; branching forces a whole-object copy |
//! | [`OrionModel`] | ORION (+ IRIS transformation) | only declared-versionable objects version; references go through a *generic object header*; unversioned objects need a copy transformation first |
//! | [`HbeModel`] | ENCORE | History-Bearing Entities + an explicit Version-Set record updated on every derivation |
//! | [`DeltaModel`] | EXODUS storage manager (record-granularity analog) | versions share storage through reverse deltas; derivations rewrite the chain record |
//!
//! All five implement [`VersionModel`], the untyped byte-level interface
//! the benchmark harness drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta_model;
mod hbe;
mod linear;
mod model;
mod ode_model;
mod orion;

pub use delta_model::DeltaModel;
pub use hbe::HbeModel;
pub use linear::LinearModel;
pub use model::{BranchOutcome, ModelError, ModelResult, VersionModel};
pub use ode_model::OdeModel;
pub use orion::OrionModel;

/// Construct every model, each on its own store file under `dir` with
/// fsync disabled (benchmark preset).
pub fn all_models(dir: &std::path::Path) -> Vec<Box<dyn VersionModel>> {
    vec![
        Box::new(OdeModel::create(&dir.join("ode.db")).expect("create ode model")),
        Box::new(LinearModel::create(&dir.join("linear.db")).expect("create linear model")),
        Box::new(OrionModel::create(&dir.join("orion.db")).expect("create orion model")),
        Box::new(HbeModel::create(&dir.join("hbe.db")).expect("create hbe model")),
        Box::new(DeltaModel::create(&dir.join("delta.db")).expect("create delta model")),
    ]
}
