//! Conformance: every model supports the common scenario identically
//! where semantics overlap, and diverges exactly where the paper says
//! they diverge (branching, orthogonality).

use ode_baselines::{
    all_models, BranchOutcome, DeltaModel, HbeModel, LinearModel, ModelError, OdeModel, OrionModel,
    VersionModel,
};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-baseline-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared linear lifecycle every model must handle identically.
fn linear_lifecycle(model: &mut dyn VersionModel) {
    let name = model.name();
    let obj = model.create(b"v0").unwrap();
    assert_eq!(model.read_current(obj).unwrap(), b"v0", "{name}");
    assert_eq!(model.version_count(obj).unwrap(), 1, "{name}");

    let v0 = model.current_version(obj).unwrap();
    let v1 = model.new_version(obj).unwrap();
    assert_ne!(v0, v1, "{name}");
    // New version starts as a copy; updating it leaves v0 intact.
    model.update_current(obj, b"v1-edited").unwrap();
    assert_eq!(model.read_current(obj).unwrap(), b"v1-edited", "{name}");
    assert_eq!(model.read_version(obj, v0).unwrap(), b"v0", "{name}");
    assert_eq!(model.version_count(obj).unwrap(), 2, "{name}");

    // Tip derivation is always an in-place version.
    let tip = model.current_version(obj).unwrap();
    match model.new_version_from(obj, tip).unwrap() {
        BranchOutcome::Version(v) => assert_ne!(v, tip, "{name}"),
        BranchOutcome::NewObject(_) => panic!("{name}: tip derivation must not copy"),
    }
    assert_eq!(model.version_count(obj).unwrap(), 3, "{name}");

    model.delete_object(obj).unwrap();
    assert!(model.read_current(obj).is_err(), "{name}");
}

#[test]
fn all_models_pass_linear_lifecycle() {
    let dir = temp_dir("lifecycle");
    for mut model in all_models(&dir) {
        linear_lifecycle(model.as_mut());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn branching_diverges_as_documented() {
    let dir = temp_dir("branching");

    // Tree models branch in place.
    let mut ode = OdeModel::create(&dir.join("o.db")).unwrap();
    let obj = ode.create(b"v0").unwrap();
    let v0 = ode.current_version(obj).unwrap();
    ode.new_version(obj).unwrap();
    match ode.new_version_from(obj, v0).unwrap() {
        BranchOutcome::Version(_) => {}
        BranchOutcome::NewObject(_) => panic!("ode must branch in place"),
    }
    assert_eq!(ode.version_count(obj).unwrap(), 3);

    let mut hbe = HbeModel::create(&dir.join("h.db")).unwrap();
    let obj = hbe.create(b"v0").unwrap();
    let v0 = hbe.current_version(obj).unwrap();
    hbe.new_version(obj).unwrap();
    assert!(matches!(
        hbe.new_version_from(obj, v0).unwrap(),
        BranchOutcome::Version(_)
    ));

    let mut orion = OrionModel::create(&dir.join("or.db")).unwrap();
    let obj = orion.create(b"v0").unwrap();
    let v0 = orion.current_version(obj).unwrap();
    orion.new_version(obj).unwrap();
    assert!(matches!(
        orion.new_version_from(obj, v0).unwrap(),
        BranchOutcome::Version(_)
    ));

    // The delta-chain model is linear too: branching copies.
    let mut delta = DeltaModel::create(&dir.join("d.db")).unwrap();
    let obj = delta.create(b"v0").unwrap();
    let v0 = delta.current_version(obj).unwrap();
    delta.new_version(obj).unwrap();
    delta.update_current(obj, b"v1").unwrap();
    match delta.new_version_from(obj, v0).unwrap() {
        BranchOutcome::NewObject(copy) => {
            assert_eq!(delta.read_current(copy).unwrap(), b"v0");
        }
        BranchOutcome::Version(_) => panic!("delta chains cannot branch in place"),
    }
    // Old versions reconstruct through deltas.
    assert_eq!(delta.read_version(obj, v0).unwrap(), b"v0");
    assert_eq!(delta.read_current(obj).unwrap(), b"v1");

    // The linear model must copy the object to branch.
    let mut linear = LinearModel::create(&dir.join("l.db")).unwrap();
    let obj = linear.create(b"v0").unwrap();
    let v0 = linear.current_version(obj).unwrap();
    linear.new_version(obj).unwrap();
    linear.update_current(obj, b"v1").unwrap();
    match linear.new_version_from(obj, v0).unwrap() {
        BranchOutcome::NewObject(copy) => {
            // The copy carries v0's state but shares no history.
            assert_eq!(linear.read_current(copy).unwrap(), b"v0");
            assert_eq!(linear.version_count(copy).unwrap(), 1);
            assert_eq!(linear.version_count(obj).unwrap(), 2);
        }
        BranchOutcome::Version(_) => panic!("linear histories cannot branch in place"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orthogonality_diverges_as_documented() {
    let dir = temp_dir("orthogonality");

    // Ode: versioning is orthogonal — create_unversioned is create, and
    // new_version always works.
    let mut ode = OdeModel::create(&dir.join("o.db")).unwrap();
    let obj = ode.create_unversioned(b"plain").unwrap();
    ode.make_versionable(obj).unwrap(); // no-op
    ode.new_version(obj).unwrap();
    assert_eq!(ode.version_count(obj).unwrap(), 2);

    // ORION: an undeclared object cannot be versioned ...
    let mut orion = OrionModel::create(&dir.join("or.db")).unwrap();
    let obj = orion.create_unversioned(b"plain").unwrap();
    assert_eq!(orion.read_current(obj).unwrap(), b"plain");
    assert!(matches!(
        orion.new_version(obj),
        Err(ModelError::Unsupported(_))
    ));
    // ... until the IRIS transformation copies it.
    orion.make_versionable(obj).unwrap();
    assert_eq!(orion.read_current(obj).unwrap(), b"plain");
    orion.new_version(obj).unwrap();
    assert_eq!(orion.version_count(obj).unwrap(), 2);
    // Transformation is idempotent.
    orion.make_versionable(obj).unwrap();
    assert_eq!(orion.version_count(obj).unwrap(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unversioned_orion_updates_in_place() {
    let dir = temp_dir("plainupdate");
    let mut orion = OrionModel::create(&dir.join("or.db")).unwrap();
    let obj = orion.create_unversioned(b"a").unwrap();
    orion.update_current(obj, b"bb").unwrap();
    assert_eq!(orion.read_current(obj).unwrap(), b"bb");
    assert_eq!(orion.version_count(obj).unwrap(), 1);
    orion.delete_object(obj).unwrap();
    assert!(orion.read_current(obj).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hbe_maintains_next_previous_chain() {
    let dir = temp_dir("hbechain");
    let mut hbe = HbeModel::create(&dir.join("h.db")).unwrap();
    let obj = hbe.create(b"s0").unwrap();
    let v0 = hbe.current_version(obj).unwrap();
    let v1 = hbe.new_version(obj).unwrap();
    let v2 = hbe.new_version(obj).unwrap();
    // Version sequence membership and currency.
    assert_eq!(hbe.version_count(obj).unwrap(), 3);
    assert_eq!(hbe.current_version(obj).unwrap(), v2);
    // Reading any member works.
    for v in [v0, v1, v2] {
        assert_eq!(hbe.read_version(obj, v).unwrap(), b"s0");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deep_histories_supported_by_all() {
    let dir = temp_dir("deep");
    for mut model in all_models(&dir) {
        let obj = model.create(&vec![7u8; 256]).unwrap();
        for _ in 0..100 {
            model.new_version(obj).unwrap();
        }
        assert_eq!(model.version_count(obj).unwrap(), 101, "{}", model.name());
        assert_eq!(
            model.read_current(obj).unwrap(),
            vec![7u8; 256],
            "{}",
            model.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
