//! End-to-end shipping over real sockets: snapshot bootstrap, WAL
//! tail, semi-sync acks, promotion fencing, and fenced-ex-primary
//! rejoin — all against loopback TCP with real databases.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, ObjPtr};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_repl::{HubOptions, ReplicaNode, ReplicationHub};

#[derive(Debug, Clone, PartialEq)]
struct Account {
    balance: u64,
    note: String,
}
impl_persist_struct!(Account { balance, note });
impl_type_name!(Account = "repl/Account");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-repl-{name}-{}", std::process::id()));
    cleanup(&path);
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn options() -> DatabaseOptions {
    DatabaseOptions::no_sync()
}

/// Poll `check` until it passes or the deadline trips.
fn wait_until(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn write_account(db: &Database, balance: u64) -> ObjPtr<Account> {
    let mut txn = db.begin();
    let p = txn
        .pnew(&Account {
            balance,
            note: format!("acct-{balance}"),
        })
        .unwrap();
    txn.commit().unwrap();
    p
}

fn read_balance(db: &Database, p: &ObjPtr<Account>) -> u64 {
    let mut snap = db.snapshot();
    snap.deref(p).unwrap().balance
}

#[test]
fn snapshot_bootstrap_then_continuous_tail() {
    let ppath = temp_path("tail-p");
    let rpath = temp_path("tail-r");

    let primary = Arc::new(Database::create(&ppath, options()).unwrap());
    let mut ptrs: Vec<ObjPtr<Account>> = (0..10).map(|i| write_account(&primary, i)).collect();

    let hub =
        ReplicationHub::start(Arc::clone(&primary), "127.0.0.1:0", HubOptions::default()).unwrap();
    let replica = Arc::new(Database::create(&rpath, options()).unwrap());
    let node = ReplicaNode::start(Arc::clone(&replica), hub.local_addr().to_string());

    // Bootstrap: the replica converges on the pre-existing state.
    let target = primary.snapshot_epoch();
    wait_until("bootstrap catch-up", || node.status().epoch >= target);
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(read_balance(&replica, p), i as u64);
    }
    assert_eq!(replica.snapshot_epoch(), primary.snapshot_epoch());

    // Continuous tail: new commits arrive without re-bootstrapping.
    for i in 10..25 {
        ptrs.push(write_account(&primary, i));
    }
    let target = primary.snapshot_epoch();
    wait_until("tail catch-up", || node.status().epoch >= target);
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(read_balance(&replica, p), i as u64);
    }
    assert!(primary.storage_stats().bytes_shipped > 0);
    assert_eq!(hub.replica_count(), 1);

    // The semi-sync barrier observes the already-acked epoch.
    assert!(hub.wait_replicated(target, Duration::from_secs(5)));

    node.stop();
    hub.shutdown();
    cleanup(&ppath);
    cleanup(&rpath);
}

#[test]
fn wait_replicated_without_replicas_fails_fast() {
    let ppath = temp_path("nowait-p");
    let primary = Arc::new(Database::create(&ppath, options()).unwrap());
    write_account(&primary, 1);
    let hub =
        ReplicationHub::start(Arc::clone(&primary), "127.0.0.1:0", HubOptions::default()).unwrap();
    let start = Instant::now();
    assert!(!hub.wait_replicated(primary.snapshot_epoch(), Duration::from_secs(5)));
    // No replica connected: returns immediately, not at the timeout.
    assert!(start.elapsed() < Duration::from_secs(2));
    hub.shutdown();
    cleanup(&ppath);
}

#[test]
fn promotion_after_primary_death_keeps_acked_commits() {
    let ppath = temp_path("promo-p");
    let rpath = temp_path("promo-r");

    let primary = Arc::new(Database::create(&ppath, options()).unwrap());
    let hub =
        ReplicationHub::start(Arc::clone(&primary), "127.0.0.1:0", HubOptions::default()).unwrap();
    let replica = Arc::new(Database::create(&rpath, options()).unwrap());
    let node = ReplicaNode::start(Arc::clone(&replica), hub.local_addr().to_string());

    wait_until("replica channel up", || hub.replica_count() == 1);
    let ptrs: Vec<ObjPtr<Account>> = (0..20).map(|i| write_account(&primary, i * 100)).collect();
    let acked_epoch = primary.snapshot_epoch();
    assert!(hub.wait_replicated(acked_epoch, Duration::from_secs(10)));

    // Primary dies: channel down, process state gone (leak = no
    // shutdown checkpoint, like a crash).
    hub.shutdown();
    std::mem::forget(primary);

    // Driven failover: promote the replica and keep serving.
    node.promote().unwrap();
    assert_eq!(replica.snapshot_epoch(), acked_epoch);
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(read_balance(&replica, p), (i * 100) as u64);
    }
    assert_eq!(replica.storage_stats().failovers, 1);

    // The promoted node accepts writes.
    let p = write_account(&replica, 777_777);
    assert_eq!(read_balance(&replica, &p), 777_777);

    // promote() is idempotent.
    node.promote().unwrap();
    assert_eq!(replica.storage_stats().failovers, 1);

    cleanup(&ppath);
    cleanup(&rpath);
}

#[test]
fn fenced_ex_primary_rejoins_as_replica_without_divergence() {
    let ppath = temp_path("rejoin-p");
    let rpath = temp_path("rejoin-r");

    let primary = Arc::new(Database::create(&ppath, options()).unwrap());
    let hub =
        ReplicationHub::start(Arc::clone(&primary), "127.0.0.1:0", HubOptions::default()).unwrap();
    let replica = Arc::new(Database::create(&rpath, options()).unwrap());
    let node = ReplicaNode::start(Arc::clone(&replica), hub.local_addr().to_string());

    wait_until("replica channel up", || hub.replica_count() == 1);
    let shared: Vec<ObjPtr<Account>> = (0..8).map(|i| write_account(&primary, i)).collect();
    assert!(hub.wait_replicated(primary.snapshot_epoch(), Duration::from_secs(10)));

    // Partition the replica away, then commit more on the (doomed)
    // primary: these commits are never shipped — the lost tail.
    node.stop();
    let lost = write_account(&primary, 999);
    hub.shutdown();
    std::mem::forget(primary);

    // Promote the replica; it becomes the new lineage.
    node.promote().unwrap();
    let new_primary = Arc::clone(node.database());
    let new_hub = ReplicationHub::start(
        Arc::clone(&new_primary),
        "127.0.0.1:0",
        HubOptions::default(),
    )
    .unwrap();
    let diverged = write_account(&new_primary, 4242);

    // The ex-primary restarts (recovering its lost tail locally) and
    // rejoins as a replica. Its generation doesn't match the new
    // primary's, so it's re-bootstrapped from a snapshot — the lost
    // tail is discarded, not merged: no divergence.
    let ex_primary = Arc::new(Database::open(&ppath, options()).unwrap());
    {
        let mut snap = ex_primary.snapshot();
        assert_eq!(snap.deref(&lost).unwrap().balance, 999);
    }
    let rejoined = ReplicaNode::start(Arc::clone(&ex_primary), new_hub.local_addr().to_string());
    let target = new_primary.snapshot_epoch();
    wait_until("rejoin catch-up", || rejoined.status().epoch >= target);

    let mut snap = ex_primary.snapshot();
    for (i, p) in shared.iter().enumerate() {
        assert_eq!(snap.deref(p).unwrap().balance, i as u64);
        snap.check_object(p).unwrap();
    }
    assert_eq!(snap.deref(&diverged).unwrap().balance, 4242);
    // The unshipped suffix of the old lineage is unobservable: its oid
    // either no longer exists or was re-allocated by the new lineage
    // (both ptrs were the ninth object of their respective timelines).
    if let Ok(acct) = snap.deref(&lost) {
        assert_ne!(acct.balance, 999);
    }
    drop(snap);

    rejoined.stop();
    new_hub.shutdown();
    cleanup(&ppath);
    cleanup(&rpath);
}
