//! The replica's tailing node.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ode::Database;

use crate::wire::{self, Message};
use crate::{ReplError, Result};

/// A snapshot of a replica's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatus {
    /// Logical WAL position applied through (`u64::MAX` = no state yet).
    pub pos: u64,
    /// Commit epoch applied through.
    pub epoch: u64,
    /// Whether the shipping channel is currently up.
    pub connected: bool,
}

struct Shared {
    db: Arc<Database>,
    primary_addr: Mutex<String>,
    /// Generation of the primary the position below belongs to.
    gen: AtomicU64,
    pos: AtomicU64,
    epoch: AtomicU64,
    connected: AtomicBool,
    stop: AtomicBool,
    cur_stream: Mutex<Option<TcpStream>>,
}

/// The replica side of WAL shipping: dials the primary, bootstraps
/// (snapshot install or tail resume), applies every shipped commit
/// through the recovery path, and acks. Reconnects with backoff until
/// [`ReplicaNode::stop`] or [`ReplicaNode::promote`].
pub struct ReplicaNode {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicaNode {
    /// Start tailing `primary_addr` into `db`. The database must have
    /// been opened by this process (it stays readable throughout).
    pub fn start(db: Arc<Database>, primary_addr: String) -> ReplicaNode {
        let shared = Arc::new(Shared {
            db,
            primary_addr: Mutex::new(primary_addr),
            gen: AtomicU64::new(0),
            pos: AtomicU64::new(u64::MAX),
            epoch: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            cur_stream: Mutex::new(None),
        });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::spawn(move || run(run_shared));
        ReplicaNode {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Current progress.
    pub fn status(&self) -> NodeStatus {
        NodeStatus {
            pos: self.shared.pos.load(Ordering::Acquire),
            epoch: self.shared.epoch.load(Ordering::Acquire),
            connected: self.shared.connected.load(Ordering::Acquire),
        }
    }

    /// The replica's database handle (read it under the epoch gate).
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Repoint the tail at a different primary (after a failover
    /// elsewhere promoted a sibling). Takes effect on the next
    /// (re)connect, which this forces by dropping the current channel.
    pub fn follow(&self, primary_addr: String) {
        *lock(&self.shared.primary_addr) = primary_addr;
        if let Some(s) = lock(&self.shared.cur_stream).as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop tailing. The apply thread is joined, so no ingest runs
    /// after this returns. Idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(s) = lock(&self.shared.cur_stream).as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = lock(&self.thread).take() {
            let _ = t.join();
        }
    }

    /// Promote this replica to primary: stop the tail (joining the
    /// apply thread first, so no shipped bytes land after the fence),
    /// then truncate the local WAL at the last fully-applied commit and
    /// make the database writable. Idempotent.
    pub fn promote(&self) -> Result<()> {
        self.stop();
        self.shared.db.promote_to_primary()?;
        Ok(())
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run(shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match connect_and_tail(&shared) {
            Ok(()) => {}
            Err(ReplError::Db(_)) | Err(ReplError::Protocol(_)) => {
                // Lost sync with the stream (or the store rejected an
                // apply): forget our position so the next connection
                // re-bootstraps from a snapshot.
                shared.pos.store(u64::MAX, Ordering::Release);
            }
            Err(ReplError::Io(_)) => {}
        }
        shared.connected.store(false, Ordering::Release);
        *lock(&shared.cur_stream) = None;
        if !shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    shared.connected.store(false, Ordering::Release);
}

fn connect_and_tail(shared: &Shared) -> Result<()> {
    let addr = lock(&shared.primary_addr).clone();
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    wire::handshake(&mut stream)?;
    wire::write_message(
        &mut stream,
        &Message::Hello {
            gen: shared.gen.load(Ordering::Acquire),
            have_pos: shared.pos.load(Ordering::Acquire),
            have_epoch: shared.epoch.load(Ordering::Acquire),
        },
    )?;
    *lock(&shared.cur_stream) = Some(stream.try_clone()?);
    shared.connected.store(true, Ordering::Release);

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match wire::read_message(&mut stream)? {
            Message::Snapshot {
                gen,
                base_pos,
                epoch,
                db_bytes,
            } => {
                shared
                    .db
                    .replica_install_snapshot(&db_bytes, base_pos, epoch)?;
                shared.gen.store(gen, Ordering::Release);
                shared.pos.store(base_pos, Ordering::Release);
                shared.epoch.store(epoch, Ordering::Release);
                wire::write_message(
                    &mut stream,
                    &Message::Ack {
                        pos: base_pos,
                        epoch,
                    },
                )?;
            }
            Message::Resume { gen, from } => {
                if from != shared.pos.load(Ordering::Acquire) {
                    return Err(ReplError::Protocol(format!(
                        "primary resumed at {from}, expected {}",
                        shared.pos.load(Ordering::Acquire)
                    )));
                }
                shared.gen.store(gen, Ordering::Release);
            }
            Message::Chunk { start_pos, bytes } => {
                let pos = shared.pos.load(Ordering::Acquire);
                if start_pos != pos {
                    return Err(ReplError::Protocol(format!(
                        "chunk at {start_pos}, expected {pos}"
                    )));
                }
                let len = bytes.len() as u64;
                let outcome = shared.db.replica_ingest(&bytes)?;
                let new_pos = pos + len;
                shared.pos.store(new_pos, Ordering::Release);
                shared.epoch.store(outcome.epoch, Ordering::Release);
                wire::write_message(
                    &mut stream,
                    &Message::Ack {
                        pos: new_pos,
                        epoch: outcome.epoch,
                    },
                )?;
            }
            other => {
                return Err(ReplError::Protocol(format!(
                    "unexpected frame from primary: {other:?}"
                )))
            }
        }
    }
}
