//! The primary's shipping hub.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ode::Database;
use ode_storage::WalSpan;

use crate::wire::{self, Message};
use crate::Result;

/// Process-local generation counter; combined with the pid so two
/// primary lifetimes can never hand out the same generation id, even
/// across processes sharing a database directory.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

fn fresh_gen() -> u64 {
    let counter = NEXT_GEN.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 32) | (counter & 0xFFFF_FFFF)
}

/// Tuning knobs for [`ReplicationHub`].
#[derive(Debug, Clone)]
pub struct HubOptions {
    /// Largest WAL chunk shipped in one frame.
    pub chunk_len: usize,
    /// How long a ship loop waits for new shippable bytes before
    /// re-checking for shutdown.
    pub poll_interval: Duration,
}

impl Default for HubOptions {
    fn default() -> HubOptions {
        HubOptions {
            chunk_len: 256 * 1024,
            poll_interval: Duration::from_millis(200),
        }
    }
}

/// Per-replica connection state, shared between the ship thread, the
/// ack-reader thread, and hub-level observers.
struct Peer {
    stream: TcpStream,
    acked_pos: AtomicU64,
    acked_epoch: AtomicU64,
    alive: AtomicBool,
}

struct Shared {
    db: Arc<Database>,
    gen: u64,
    options: HubOptions,
    shutdown: AtomicBool,
    peers: Mutex<Vec<Arc<Peer>>>,
    /// Signalled on every ack and every peer death; pairs with `peers`
    /// for [`ReplicationHub::wait_replicated`].
    ack_cv: Condvar,
}

impl Shared {
    /// Recompute the worst-replica lag gauge from live peers.
    fn refresh_lag(&self) {
        let primary = self.db.snapshot_epoch();
        let peers = lock(&self.peers);
        let lag = peers
            .iter()
            .filter(|p| p.alive.load(Ordering::Acquire))
            .map(|p| primary.saturating_sub(p.acked_epoch.load(Ordering::Acquire)))
            .max()
            .unwrap_or(0);
        self.db.set_replica_lag_epochs(lag);
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The primary side of WAL shipping: accepts replica connections,
/// bootstraps each one, and streams the fsynced log.
pub struct ReplicationHub {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicationHub {
    /// Start shipping `db`'s WAL to whoever connects to `addr` (use
    /// port 0 to pick a free port; see [`ReplicationHub::local_addr`]).
    pub fn start(db: Arc<Database>, addr: &str, options: HubOptions) -> Result<ReplicationHub> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            gen: fresh_gen(),
            options,
            shutdown: AtomicBool::new(false),
            peers: Mutex::new(Vec::new()),
            ack_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(accept_shared, listener));
        Ok(ReplicationHub {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address replicas should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This primary lifetime's generation id.
    pub fn generation(&self) -> u64 {
        self.shared.gen
    }

    /// Number of currently connected replicas.
    pub fn replica_count(&self) -> usize {
        lock(&self.shared.peers)
            .iter()
            .filter(|p| p.alive.load(Ordering::Acquire))
            .count()
    }

    /// Highest epoch any live replica has acknowledged applying.
    pub fn max_acked_epoch(&self) -> u64 {
        lock(&self.shared.peers)
            .iter()
            .filter(|p| p.alive.load(Ordering::Acquire))
            .map(|p| p.acked_epoch.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Semi-synchronous commit barrier: block until at least one live
    /// replica has acknowledged applying `epoch` (true), or until no
    /// replica is connected at all / `timeout` elapses (false).
    ///
    /// Waiting for *one* ack is enough for failover safety because
    /// promotion picks the most-caught-up replica: any replica whose
    /// epoch is ≥ the acker's has applied this commit too.
    pub fn wait_replicated(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut peers = lock(&self.shared.peers);
        loop {
            let mut any_live = false;
            for p in peers.iter() {
                if p.alive.load(Ordering::Acquire) {
                    any_live = true;
                    if p.acked_epoch.load(Ordering::Acquire) >= epoch {
                        return true;
                    }
                }
            }
            if !any_live {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .ack_cv
                .wait_timeout(peers, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            peers = guard;
        }
    }

    /// Stop shipping: close every replica channel and join the accept
    /// loop. The database itself stays open.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for p in lock(&self.shared.peers).iter() {
            let _ = p.stream.shutdown(std::net::Shutdown::Both);
        }
        // Wake the blocked accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = lock(&self.accept_thread).take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let conn_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _ = serve_replica(conn_shared, stream);
        });
    }
}

/// Bootstrap one replica and ship to it until the connection dies.
fn serve_replica(shared: Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    stream.set_nodelay(true)?;
    wire::handshake(&mut stream)?;
    let hello = match wire::read_message(&mut stream)? {
        Message::Hello {
            gen,
            have_pos,
            have_epoch,
        } => (gen, have_pos, have_epoch),
        other => {
            return Err(crate::ReplError::Protocol(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };

    let peer = Arc::new(Peer {
        stream: stream.try_clone()?,
        acked_pos: AtomicU64::new(0),
        acked_epoch: AtomicU64::new(hello.2),
        alive: AtomicBool::new(true),
    });
    lock(&shared.peers).push(Arc::clone(&peer));

    // Ack reader: drains replica acks concurrently with shipping.
    let ack_shared = Arc::clone(&shared);
    let ack_peer = Arc::clone(&peer);
    let mut ack_stream = stream.try_clone()?;
    let ack_thread = std::thread::spawn(move || {
        while let Ok(msg) = wire::read_message(&mut ack_stream) {
            if let Message::Ack { pos, epoch } = msg {
                ack_peer.acked_pos.store(pos, Ordering::Release);
                ack_peer.acked_epoch.store(epoch, Ordering::Release);
                ack_shared.refresh_lag();
                let _guard = lock(&ack_shared.peers);
                ack_shared.ack_cv.notify_all();
            }
        }
        ack_peer.alive.store(false, Ordering::Release);
        ack_shared.refresh_lag();
        let _guard = lock(&ack_shared.peers);
        ack_shared.ack_cv.notify_all();
    });

    let result = ship_loop(&shared, &peer, &mut stream, hello);

    peer.alive.store(false, Ordering::Release);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.join();
    let mut peers = lock(&shared.peers);
    peers.retain(|p| !Arc::ptr_eq(p, &peer));
    shared.ack_cv.notify_all();
    drop(peers);
    shared.refresh_lag();
    result
}

fn ship_loop(
    shared: &Shared,
    peer: &Peer,
    stream: &mut TcpStream,
    (hello_gen, have_pos, _have_epoch): (u64, u64, u64),
) -> Result<()> {
    let db = &shared.db;
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Bootstrap: resume a live position from our own generation, else
    // ship a fresh snapshot. Positions from another generation (a dead
    // primary's lineage) are never trusted — the replica re-syncs.
    let mut from = if hello_gen == shared.gen && have_pos != u64::MAX {
        wire::write_message(
            &mut writer,
            &Message::Resume {
                gen: shared.gen,
                from: have_pos,
            },
        )?;
        have_pos
    } else {
        send_snapshot(shared, &mut writer)?
    };

    loop {
        if shared.shutdown.load(Ordering::Acquire) || !peer.alive.load(Ordering::Acquire) {
            return Ok(());
        }
        match db.read_wal_span(from, shared.options.chunk_len)? {
            WalSpan::Data(bytes) => {
                let len = bytes.len() as u64;
                wire::write_message(
                    &mut writer,
                    &Message::Chunk {
                        start_pos: from,
                        bytes,
                    },
                )?;
                db.note_bytes_shipped(len);
                from += len;
            }
            WalSpan::AtEnd => {
                db.wait_shippable(from, shared.options.poll_interval);
            }
            WalSpan::SnapshotNeeded => {
                from = send_snapshot(shared, &mut writer)?;
            }
        }
    }
}

/// Take a fresh snapshot of the primary and ship it; returns the
/// logical position the chunk stream continues from.
fn send_snapshot(shared: &Shared, writer: &mut BufWriter<TcpStream>) -> Result<u64> {
    let snap = shared.db.repl_snapshot()?;
    let base_pos = snap.base_pos;
    let len = snap.db_bytes.len() as u64;
    wire::write_message(
        writer,
        &Message::Snapshot {
            gen: shared.gen,
            base_pos,
            epoch: snap.epoch,
            db_bytes: snap.db_bytes,
        },
    )?;
    shared.db.note_bytes_shipped(len);
    Ok(base_pos)
}
