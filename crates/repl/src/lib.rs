//! # ode-repl — per-shard WAL-shipping replication
//!
//! Primary/replica replication for a single Ode database (one shard of
//! the router tier, or a standalone server):
//!
//! * [`ReplicationHub`] runs on the **primary**. It listens on a
//!   dedicated port (separate from the client protocol), bootstraps
//!   each replica with a page-file snapshot (or resumes a live WAL
//!   position), then tails the fsynced WAL to it in chunks, tracking
//!   each replica's acknowledged position and epoch so the primary can
//!   report lag and implement semi-synchronous commit waits.
//! * [`ReplicaNode`] runs on a **replica**. It dials the primary,
//!   installs the snapshot / resumes the tail, applies every shipped
//!   commit through the storage engine's recovery path (one epoch bump
//!   per commit, exactly as the primary published it), and acks. Its
//!   `Database` stays open for epoch-gated reads the whole time.
//! * [`wire`] is the shipping channel's length-framed binary protocol.
//!
//! Failover is *driven from above* (the router, or a test harness):
//! [`ReplicaNode::promote`] stops the tail, fences the local WAL at the
//! last fully-applied commit (`truncate_tail` of the unshipped /
//! half-shipped suffix), and turns the database writable. A fenced
//! ex-primary that comes back simply starts a `ReplicaNode` pointed at
//! the new primary: its `Hello` carries a stale generation id, so the
//! new primary re-bootstraps it from a snapshot rather than trusting
//! positions from a dead lineage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hub;
mod node;
pub mod wire;

pub use hub::{HubOptions, ReplicationHub};
pub use node::{NodeStatus, ReplicaNode};

/// Errors from the replication channel.
#[derive(Debug)]
pub enum ReplError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed or unexpected frame.
    Protocol(String),
    /// The underlying database rejected an install/apply.
    Db(ode::Error),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication i/o error: {e}"),
            ReplError::Protocol(msg) => write!(f, "replication protocol error: {msg}"),
            ReplError::Db(e) => write!(f, "replication apply error: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> ReplError {
        ReplError::Io(e)
    }
}

impl From<ode::Error> for ReplError {
    fn from(e: ode::Error) -> ReplError {
        ReplError::Db(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ReplError>;
