//! The shipping channel's wire format.
//!
//! This is deliberately *not* the client protocol from `ode-net`: the
//! replication channel moves raw WAL bytes and page-file snapshots, so
//! it wants a dumb, length-framed binary format with no varint
//! cleverness and a frame cap big enough for a whole database snapshot.
//!
//! A connection opens with a 4-byte magic exchange (`ODR` + a version
//! byte), both sides sending then verifying. After that every message
//! is one frame:
//!
//! ```text
//! [u8 type] [u32 len LE] [len payload bytes]
//! ```
//!
//! Replica → primary: [`Message::Hello`] (once), then [`Message::Ack`]
//! after every apply. Primary → replica: [`Message::Snapshot`] or
//! [`Message::Resume`] (once, deciding how the replica bootstraps),
//! then a stream of [`Message::Chunk`]s. All positions are *logical*
//! WAL positions (monotone across checkpoints — see
//! `Store::read_wal_span`).

use std::io::{Read, Write};

use crate::{ReplError, Result};

/// Channel magic: "ODER" + protocol version 1.
pub const MAGIC: [u8; 4] = *b"ODR\x01";

/// Largest accepted frame payload. Snapshot frames carry a whole page
/// file, so this is far larger than the client protocol's cap.
pub const MAX_FRAME_LEN: usize = 1 << 30;

const T_HELLO: u8 = 1;
const T_SNAPSHOT: u8 = 2;
const T_RESUME: u8 = 3;
const T_CHUNK: u8 = 4;
const T_ACK: u8 = 5;

/// One replication-channel message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Replica → primary: what the replica already has. `gen` is the
    /// primary generation the replica last shipped from (0 = never),
    /// and `have_pos` is `u64::MAX` when the replica has no state at
    /// all. A primary only resumes when `gen` matches its own —
    /// positions are meaningless across primary lifetimes.
    Hello {
        /// Primary generation id the positions below refer to.
        gen: u64,
        /// Logical WAL position already applied, or `u64::MAX`.
        have_pos: u64,
        /// Commit epoch already applied.
        have_epoch: u64,
    },
    /// Primary → replica: full state transfer. The replica replaces its
    /// page file with `db_bytes`, resets its WAL, and starts tailing at
    /// logical position `base_pos` / epoch `epoch`.
    Snapshot {
        /// The sending primary's generation id.
        gen: u64,
        /// Logical WAL position the snapshot is consistent at.
        base_pos: u64,
        /// Commit epoch the snapshot is consistent at.
        epoch: u64,
        /// Raw page-file contents.
        db_bytes: Vec<u8>,
    },
    /// Primary → replica: the replica's `have_pos` is still live; the
    /// stream will continue from `from` (== `have_pos`).
    Resume {
        /// The sending primary's generation id.
        gen: u64,
        /// Logical WAL position the chunk stream starts at.
        from: u64,
    },
    /// Primary → replica: fsynced WAL bytes starting at `start_pos`.
    Chunk {
        /// Logical WAL position of the first byte.
        start_pos: u64,
        /// Raw framed WAL bytes.
        bytes: Vec<u8>,
    },
    /// Replica → primary: everything up to `pos` has been received and
    /// every commit it completes applied, bringing the replica to
    /// `epoch`.
    Ack {
        /// Logical WAL position received and applied through.
        pos: u64,
        /// Replica commit epoch after applying.
        epoch: u64,
    },
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64> {
    let end = at + 8;
    if end > buf.len() {
        return Err(ReplError::Protocol("short frame".into()));
    }
    Ok(u64::from_le_bytes(buf[at..end].try_into().unwrap()))
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => T_HELLO,
            Message::Snapshot { .. } => T_SNAPSHOT,
            Message::Resume { .. } => T_RESUME,
            Message::Chunk { .. } => T_CHUNK,
            Message::Ack { .. } => T_ACK,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello {
                gen,
                have_pos,
                have_epoch,
            } => {
                put_u64(&mut buf, *gen);
                put_u64(&mut buf, *have_pos);
                put_u64(&mut buf, *have_epoch);
            }
            Message::Snapshot {
                gen,
                base_pos,
                epoch,
                db_bytes,
            } => {
                put_u64(&mut buf, *gen);
                put_u64(&mut buf, *base_pos);
                put_u64(&mut buf, *epoch);
                buf.extend_from_slice(db_bytes);
            }
            Message::Resume { gen, from } => {
                put_u64(&mut buf, *gen);
                put_u64(&mut buf, *from);
            }
            Message::Chunk { start_pos, bytes } => {
                put_u64(&mut buf, *start_pos);
                buf.extend_from_slice(bytes);
            }
            Message::Ack { pos, epoch } => {
                put_u64(&mut buf, *pos);
                put_u64(&mut buf, *epoch);
            }
        }
        buf
    }

    fn decode(ty: u8, payload: Vec<u8>) -> Result<Message> {
        Ok(match ty {
            T_HELLO => Message::Hello {
                gen: get_u64(&payload, 0)?,
                have_pos: get_u64(&payload, 8)?,
                have_epoch: get_u64(&payload, 16)?,
            },
            T_SNAPSHOT => {
                let gen = get_u64(&payload, 0)?;
                let base_pos = get_u64(&payload, 8)?;
                let epoch = get_u64(&payload, 16)?;
                Message::Snapshot {
                    gen,
                    base_pos,
                    epoch,
                    db_bytes: payload[24..].to_vec(),
                }
            }
            T_RESUME => Message::Resume {
                gen: get_u64(&payload, 0)?,
                from: get_u64(&payload, 8)?,
            },
            T_CHUNK => {
                let start_pos = get_u64(&payload, 0)?;
                Message::Chunk {
                    start_pos,
                    bytes: payload[8..].to_vec(),
                }
            }
            T_ACK => Message::Ack {
                pos: get_u64(&payload, 0)?,
                epoch: get_u64(&payload, 8)?,
            },
            other => return Err(ReplError::Protocol(format!("unknown frame type {other}"))),
        })
    }
}

/// Write one framed message.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<()> {
    let payload = msg.payload();
    if payload.len() > MAX_FRAME_LEN {
        return Err(ReplError::Protocol(format!(
            "frame too large: {} bytes",
            payload.len()
        )));
    }
    let mut header = [0u8; 5];
    header[0] = msg.type_byte();
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message.
pub fn read_message(r: &mut impl Read) -> Result<Message> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ReplError::Protocol(format!("frame too large: {len} bytes")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Message::decode(header[0], payload)
}

/// Send our magic and require the peer's.
pub fn handshake(stream: &mut (impl Read + Write)) -> Result<()> {
    stream.write_all(&MAGIC)?;
    stream.flush()?;
    let mut echo = [0u8; 4];
    stream.read_exact(&mut echo)?;
    if echo != MAGIC {
        return Err(ReplError::Protocol("bad channel magic".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip() {
        let msgs = [
            Message::Hello {
                gen: 7,
                have_pos: u64::MAX,
                have_epoch: 1,
            },
            Message::Snapshot {
                gen: 7,
                base_pos: 4096,
                epoch: 12,
                db_bytes: vec![0xAB; 8192],
            },
            Message::Resume { gen: 7, from: 4096 },
            Message::Chunk {
                start_pos: 4096,
                bytes: vec![1, 2, 3],
            },
            Message::Ack {
                pos: 4099,
                epoch: 13,
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(&read_message(&mut r).unwrap(), m);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = Vec::new();
        buf.push(99u8);
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(read_message(&mut r), Err(ReplError::Protocol(_))));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.push(T_CHUNK);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(read_message(&mut r), Err(ReplError::Protocol(_))));
    }
}
