//! # ode-dms — the paper's §5 CAD design-database example
//!
//! §5 walks through "an abbreviated version of our simulation of the DMS
//! design database system being used in our VLSI design laboratory": an
//! ALU chip with three *representations* — **schematic**, **fault**, and
//! **timing** — each a *configuration* over shared versioned data
//! objects:
//!
//! * the schematic representation consists of the schematic data;
//! * the fault representation consists of the schematic data plus test
//!   vectors;
//! * the timing representation consists of the schematic data (the same
//!   object as the schematic representation's), the vectors (the same
//!   object as the fault representation's), and timing commands.
//!
//! This crate models that design state with ordinary Ode objects plus
//! the configuration policy, and provides the evolution operations the
//! example narrates: revising data objects, branching alternatives, and
//! releasing (freezing) representations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;

use ode::{Database, ObjPtr, Result, Txn, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_policies::config::ConfigHandle;
use ode_policies::Configuration;

/// A cell instance in the schematic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Library cell name (e.g. "NAND2").
    pub kind: String,
    /// Instance coordinates.
    pub x: i32,
    /// Instance coordinates.
    pub y: i32,
}
impl_persist_struct!(Cell { kind, x, y });

/// A net connecting cell pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Connected (cell index, pin index) pairs.
    pub pins: Vec<(u32, u32)>,
}
impl_persist_struct!(Net { name, pins });

/// The schematic data object shared by all three representations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchematicData {
    /// Placed cells.
    pub cells: Vec<Cell>,
    /// Connectivity.
    pub nets: Vec<Net>,
}
impl_persist_struct!(SchematicData { cells, nets });
impl_type_name!(SchematicData = "dms/SchematicData");

/// Test vectors shared by the fault and timing representations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestVectors {
    /// One stimulus bit-pattern per vector.
    pub vectors: Vec<Vec<u8>>,
}
impl_persist_struct!(TestVectors { vectors });
impl_type_name!(TestVectors = "dms/TestVectors");

/// Timing analysis commands (timing representation only).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingCommands {
    /// Analysis script lines.
    pub commands: Vec<String>,
}
impl_persist_struct!(TimingCommands { commands });
impl_type_name!(TimingCommands = "dms/TimingCommands");

/// The ALU chip complex object: its data objects and the three
/// representation configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AluChip {
    /// Chip name.
    pub name: String,
    /// The shared schematic data object.
    pub schematic: ObjPtr<SchematicData>,
    /// The shared test-vector object.
    pub vectors: ObjPtr<TestVectors>,
    /// The timing-command object.
    pub timing_cmds: ObjPtr<TimingCommands>,
    /// The "schematic" representation configuration.
    pub schematic_rep: ObjPtr<Configuration>,
    /// The "fault" representation configuration.
    pub fault_rep: ObjPtr<Configuration>,
    /// The "timing" representation configuration.
    pub timing_rep: ObjPtr<Configuration>,
}
impl_persist_struct!(AluChip {
    name,
    schematic,
    vectors,
    timing_cmds,
    schematic_rep,
    fault_rep,
    timing_rep
});
impl_type_name!(AluChip = "dms/AluChip");

/// Component names used inside the representation configurations.
pub mod components {
    /// The schematic data component.
    pub const SCHEMATIC: &str = "schematic";
    /// The test-vector component.
    pub const VECTORS: &str = "vectors";
    /// The timing-command component.
    pub const TIMING: &str = "timing-commands";
}

/// A live handle over an [`AluChip`] design in a database.
#[derive(Debug, Clone, Copy)]
pub struct AluDesign {
    /// The persistent complex object.
    pub ptr: ObjPtr<AluChip>,
}

/// A small initial ALU slice netlist: the "initial design state" of §5.
///
/// Inputs `a`, `b`, `sel`; output `y` selects between `a XOR b` and
/// `NAND(b, NAND(a, b))`. Fully wired, so [`sim`] can evaluate it.
pub fn seed_schematic() -> SchematicData {
    SchematicData {
        cells: vec![
            Cell {
                kind: "NAND2".into(),
                x: 0,
                y: 0,
            },
            Cell {
                kind: "NAND2".into(),
                x: 10,
                y: 0,
            },
            Cell {
                kind: "XOR2".into(),
                x: 5,
                y: 8,
            },
            Cell {
                kind: "MUX2".into(),
                x: 5,
                y: 16,
            },
        ],
        nets: vec![
            Net {
                name: "a".into(),
                pins: vec![(0, 0), (2, 0)],
            },
            Net {
                name: "b".into(),
                pins: vec![(0, 1), (1, 0), (2, 1)],
            },
            Net {
                name: "n0".into(),
                pins: vec![(0, 2), (1, 1)],
            },
            Net {
                name: "sum".into(),
                pins: vec![(2, 2), (3, 0)],
            },
            Net {
                name: "n1".into(),
                pins: vec![(1, 2), (3, 1)],
            },
            Net {
                name: "sel".into(),
                pins: vec![(3, 2)],
            },
            Net {
                name: "y".into(),
                pins: vec![(3, 3)],
            },
        ],
    }
}

/// Seed test vectors.
pub fn seed_vectors() -> TestVectors {
    TestVectors {
        vectors: vec![vec![0b00, 0b01], vec![0b10, 0b11], vec![0b11, 0b00]],
    }
}

/// Seed timing commands.
pub fn seed_timing() -> TimingCommands {
    TimingCommands {
        commands: vec![
            "set_clock clk 10ns".into(),
            "report_paths -from a -to sum".into(),
        ],
    }
}

impl AluDesign {
    /// Create the initial design state: the three data objects plus the
    /// three representation configurations (all dynamically bound, so a
    /// representation initially tracks its components' latest versions).
    pub fn create(txn: &mut Txn<'_>, name: &str) -> Result<AluDesign> {
        let schematic = txn.pnew(&seed_schematic())?;
        let vectors = txn.pnew(&seed_vectors())?;
        let timing_cmds = txn.pnew(&seed_timing())?;

        let schematic_rep = ConfigHandle::create(txn, "schematic")?;
        schematic_rep.bind_dynamic(txn, components::SCHEMATIC, schematic)?;

        let fault_rep = ConfigHandle::create(txn, "fault")?;
        fault_rep.bind_dynamic(txn, components::SCHEMATIC, schematic)?;
        fault_rep.bind_dynamic(txn, components::VECTORS, vectors)?;

        let timing_rep = ConfigHandle::create(txn, "timing")?;
        timing_rep.bind_dynamic(txn, components::SCHEMATIC, schematic)?;
        timing_rep.bind_dynamic(txn, components::VECTORS, vectors)?;
        timing_rep.bind_dynamic(txn, components::TIMING, timing_cmds)?;

        let ptr = txn.pnew(&AluChip {
            name: name.to_string(),
            schematic,
            vectors,
            timing_cmds,
            schematic_rep: schematic_rep.ptr(),
            fault_rep: fault_rep.ptr(),
            timing_rep: timing_rep.ptr(),
        })?;
        Ok(AluDesign { ptr })
    }

    /// Re-attach to an existing design.
    pub fn attach(ptr: ObjPtr<AluChip>) -> AluDesign {
        AluDesign { ptr }
    }

    /// The chip record.
    pub fn chip(&self, txn: &mut Txn<'_>) -> Result<AluChip> {
        Ok(txn.deref(&self.ptr)?.into_inner())
    }

    /// Revise the schematic: derive a new version and apply an edit to
    /// it (the old version stays reachable for released representations).
    pub fn revise_schematic(
        &self,
        txn: &mut Txn<'_>,
        edit: impl FnOnce(&mut SchematicData),
    ) -> Result<VersionPtr<SchematicData>> {
        let chip = self.chip(txn)?;
        let v = txn.newversion(&chip.schematic)?;
        txn.update(&chip.schematic, edit)?;
        Ok(v)
    }

    /// Branch an alternative schematic from a specific earlier version
    /// (a design variant, §4.2).
    pub fn branch_schematic(
        &self,
        txn: &mut Txn<'_>,
        base: VersionPtr<SchematicData>,
        edit: impl FnOnce(&mut SchematicData),
    ) -> Result<VersionPtr<SchematicData>> {
        let v = txn.newversion_from(&base)?;
        txn.update_version(&v, edit)?;
        Ok(v)
    }

    /// Add test vectors as a new version of the vector object.
    pub fn revise_vectors(
        &self,
        txn: &mut Txn<'_>,
        extra: Vec<Vec<u8>>,
    ) -> Result<VersionPtr<TestVectors>> {
        let chip = self.chip(txn)?;
        let v = txn.newversion(&chip.vectors)?;
        txn.update(&chip.vectors, |tv| tv.vectors.extend(extra))?;
        Ok(v)
    }

    /// Release a representation: freeze its configuration so later data
    /// evolution no longer changes what it resolves to.
    pub fn release(&self, txn: &mut Txn<'_>, rep: ObjPtr<Configuration>) -> Result<()> {
        ConfigHandle::attach(rep).freeze(txn)
    }

    /// Resolve a representation's schematic component.
    pub fn schematic_of(
        &self,
        txn: &mut Txn<'_>,
        rep: ObjPtr<Configuration>,
    ) -> Result<SchematicData> {
        Ok(ConfigHandle::attach(rep)
            .resolve::<SchematicData>(txn, components::SCHEMATIC)?
            .into_inner())
    }

    /// Resolve a representation's vector component.
    pub fn vectors_of(&self, txn: &mut Txn<'_>, rep: ObjPtr<Configuration>) -> Result<TestVectors> {
        Ok(ConfigHandle::attach(rep)
            .resolve::<TestVectors>(txn, components::VECTORS)?
            .into_inner())
    }

    /// A fault run: simulate the fault representation's vectors against
    /// a golden and a candidate schematic *version* and report the
    /// vector indexes whose responses differ.
    ///
    /// This is the §5 pairing in action — the fault representation
    /// binds the schematic data and the vectors together precisely so
    /// runs like this can compare design versions.
    pub fn fault_run(
        &self,
        txn: &mut Txn<'_>,
        golden: VersionPtr<SchematicData>,
        candidate: VersionPtr<SchematicData>,
    ) -> Result<std::result::Result<Vec<usize>, sim::SimError>> {
        let chip = self.chip(txn)?;
        let vectors = self.vectors_of(txn, chip.fault_rep)?;
        let golden_state = txn.deref_v(&golden)?.into_inner();
        let candidate_state = txn.deref_v(&candidate)?.into_inner();
        Ok(sim::compare_responses(
            &golden_state,
            &candidate_state,
            &vectors.vectors,
        ))
    }
}

/// Convenience: create a design inside its own transaction.
pub fn bootstrap(db: &Database, name: &str) -> Result<AluDesign> {
    let mut txn = db.begin();
    let design = AluDesign::create(&mut txn, name)?;
    txn.commit()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode::DatabaseOptions;

    struct TempDb {
        path: std::path::PathBuf,
    }

    impl TempDb {
        fn new(name: &str) -> TempDb {
            let mut path = std::env::temp_dir();
            path.push(format!("ode-dms-{name}-{}", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let mut wal = path.clone().into_os_string();
            wal.push(".wal");
            let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
            TempDb { path }
        }
        fn create(&self) -> Database {
            Database::create(&self.path, DatabaseOptions::default()).unwrap()
        }
    }

    impl Drop for TempDb {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
            let mut wal = self.path.clone().into_os_string();
            wal.push(".wal");
            let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        }
    }

    #[test]
    fn initial_design_state() {
        let tmp = TempDb::new("init");
        let db = tmp.create();
        let design = bootstrap(&db, "alu-1").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();
        assert_eq!(chip.name, "alu-1");
        // All three representations resolve the same schematic object.
        let s1 = design.schematic_of(&mut txn, chip.schematic_rep).unwrap();
        let s2 = design.schematic_of(&mut txn, chip.fault_rep).unwrap();
        let s3 = design.schematic_of(&mut txn, chip.timing_rep).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(s1.cells.len(), 4);
        // Fault and timing share the vector object.
        let v1 = design.vectors_of(&mut txn, chip.fault_rep).unwrap();
        let v2 = design.vectors_of(&mut txn, chip.timing_rep).unwrap();
        assert_eq!(v1, v2);
        txn.commit().unwrap();
    }

    #[test]
    fn released_representation_survives_evolution() {
        let tmp = TempDb::new("release");
        let db = tmp.create();
        let design = bootstrap(&db, "alu").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();

        // Release timing at the initial state.
        design.release(&mut txn, chip.timing_rep).unwrap();

        // Then evolve the schematic.
        design
            .revise_schematic(&mut txn, |s| {
                s.cells.push(Cell {
                    kind: "INV".into(),
                    x: 20,
                    y: 20,
                });
            })
            .unwrap();

        // The released timing representation still sees 4 cells; the
        // live schematic representation sees 5.
        let frozen = design.schematic_of(&mut txn, chip.timing_rep).unwrap();
        let live = design.schematic_of(&mut txn, chip.schematic_rep).unwrap();
        assert_eq!(frozen.cells.len(), 4);
        assert_eq!(live.cells.len(), 5);
        txn.commit().unwrap();
    }

    #[test]
    fn alternatives_branch_the_schematic() {
        let tmp = TempDb::new("branch");
        let db = tmp.create();
        let design = bootstrap(&db, "alu").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();
        let v0 = txn.current_version(&chip.schematic).unwrap();

        // Revision on the main line.
        design
            .revise_schematic(&mut txn, |s| s.cells[0].x = 99)
            .unwrap();
        // An alternative branched from the original.
        let alt = design
            .branch_schematic(&mut txn, v0, |s| s.cells[0].kind = "NOR2".into())
            .unwrap();

        // Derivation tree: v0 has two children.
        assert_eq!(txn.dnext(&v0).unwrap().len(), 2);
        // The alternative kept the original coordinates.
        let alt_state = txn.deref_v(&alt).unwrap();
        assert_eq!(alt_state.cells[0].x, 0);
        assert_eq!(alt_state.cells[0].kind, "NOR2");
        assert_eq!(txn.version_count(&chip.schematic).unwrap(), 3);
        txn.check_object(&chip.schematic).unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn fault_run_compares_design_versions() {
        let tmp = TempDb::new("faultrun");
        let db = tmp.create();
        let design = bootstrap(&db, "alu").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();
        let golden = txn.current_version(&chip.schematic).unwrap();

        // A revision that swaps the XOR for an OR changes responses.
        let candidate = design
            .revise_schematic(&mut txn, |s| {
                let xor = s
                    .cells
                    .iter_mut()
                    .find(|c| c.kind == "XOR2")
                    .expect("seed has an XOR2");
                xor.kind = "OR2".into();
            })
            .unwrap();

        let differing = design
            .fault_run(&mut txn, golden, candidate)
            .unwrap()
            .unwrap();
        assert!(
            !differing.is_empty(),
            "OR vs XOR must differ on some vector"
        );
        // Identical versions never differ.
        let same = design.fault_run(&mut txn, golden, golden).unwrap().unwrap();
        assert!(same.is_empty());
        txn.commit().unwrap();
    }

    #[test]
    fn design_persists_across_reopen() {
        let tmp = TempDb::new("persist");
        let ptr = {
            let db = tmp.create();
            let design = bootstrap(&db, "alu").unwrap();
            let mut txn = db.begin();
            design.revise_vectors(&mut txn, vec![vec![0xFF]]).unwrap();
            txn.commit().unwrap();
            design.ptr
        };
        let db = Database::open(&tmp.path, DatabaseOptions::default()).unwrap();
        let design = AluDesign::attach(ptr);
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();
        let vectors = design.vectors_of(&mut txn, chip.fault_rep).unwrap();
        assert_eq!(vectors.vectors.len(), 4);
        assert_eq!(txn.version_count(&chip.vectors).unwrap(), 2);
        txn.commit().unwrap();
    }
}
