//! Gate-level evaluation of schematic data over test vectors.
//!
//! The paper's fault representation exists to *use* the schematic and
//! the vectors together ("the fault representation consists of the
//! schematic data … and vectors").  This module gives that pairing
//! behaviour: a tiny combinational simulator that evaluates the
//! netlist on each vector, so a fault run compares a design version's
//! responses against a golden version's — exactly the kind of tool DMS
//! drove over the design database.
//!
//! Model: cell `i` computes one boolean output from its input nets.
//! Net→pin wiring comes from [`SchematicData::nets`]: pin 0..k-1 of a
//! cell are inputs, the last pin referenced for the cell is its output.
//! Supported cell kinds: `NAND2`, `NOR2`, `XOR2`, `AND2`, `OR2`, `INV`,
//! `BUF`, `MUX2` (inputs a, b, sel).

use std::collections::BTreeMap;

use crate::SchematicData;

/// Result of simulating one vector: the value of every named net.
pub type NetValues = BTreeMap<String, bool>;

/// An error from the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A cell kind the simulator does not know.
    UnknownCell(String),
    /// A cell had the wrong number of input connections.
    BadArity {
        /// The cell kind.
        kind: String,
        /// Inputs found.
        found: usize,
        /// Inputs required.
        expected: usize,
    },
    /// Combinational loop or missing driver: evaluation did not settle.
    DidNotSettle,
    /// The vector supplies fewer bits than there are primary inputs.
    ShortVector {
        /// Bits supplied.
        supplied: usize,
        /// Primary inputs needing values.
        needed: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownCell(kind) => write!(f, "unknown cell kind {kind}"),
            SimError::BadArity {
                kind,
                found,
                expected,
            } => write!(f, "cell {kind}: {found} inputs, expected {expected}"),
            SimError::DidNotSettle => write!(f, "netlist did not settle (loop or no driver)"),
            SimError::ShortVector { supplied, needed } => {
                write!(
                    f,
                    "vector supplies {supplied} bits, {needed} inputs need values"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

fn arity(kind: &str) -> Result<usize, SimError> {
    Ok(match kind {
        "INV" | "BUF" => 1,
        "NAND2" | "NOR2" | "XOR2" | "AND2" | "OR2" => 2,
        "MUX2" => 3,
        other => return Err(SimError::UnknownCell(other.to_string())),
    })
}

fn evaluate(kind: &str, inputs: &[bool]) -> bool {
    match kind {
        "INV" => !inputs[0],
        "BUF" => inputs[0],
        "NAND2" => !(inputs[0] && inputs[1]),
        "NOR2" => !(inputs[0] || inputs[1]),
        "XOR2" => inputs[0] ^ inputs[1],
        "AND2" => inputs[0] && inputs[1],
        "OR2" => inputs[0] || inputs[1],
        // inputs: a, b, sel
        "MUX2" => {
            if inputs[2] {
                inputs[1]
            } else {
                inputs[0]
            }
        }
        _ => unreachable!("arity() vetted the kind"),
    }
}

/// Wiring derived from a schematic: per cell, its input nets and output
/// net; plus the primary inputs (nets driven by no cell), sorted.
#[derive(Debug, Clone)]
pub struct Wiring {
    cells: Vec<(String, Vec<String>, String)>,
    /// Nets no cell drives — the vector bits map onto these in order.
    pub primary_inputs: Vec<String>,
}

/// Derive the wiring of a schematic.
///
/// For each cell, nets connecting to pins `0..arity` are inputs and the
/// net connecting to pin `arity` is the output.
pub fn wire(schematic: &SchematicData) -> Result<Wiring, SimError> {
    let mut cells: Vec<(String, Vec<Option<String>>, Option<String>)> = schematic
        .cells
        .iter()
        .map(|c| (c.kind.clone(), Vec::new(), None))
        .collect();
    for (ci, cell) in schematic.cells.iter().enumerate() {
        let n_in = arity(&cell.kind)?;
        cells[ci].1 = vec![None; n_in];
    }
    for net in &schematic.nets {
        for &(cell_idx, pin_idx) in &net.pins {
            let Some(entry) = cells.get_mut(cell_idx as usize) else {
                continue;
            };
            let n_in = entry.1.len();
            if (pin_idx as usize) < n_in {
                entry.1[pin_idx as usize] = Some(net.name.clone());
            } else {
                entry.2 = Some(net.name.clone());
            }
        }
    }

    let mut driven: Vec<String> = Vec::new();
    let mut resolved = Vec::with_capacity(cells.len());
    for (kind, inputs, output) in cells {
        let expected = inputs.len();
        let found: Vec<String> = inputs.into_iter().flatten().collect();
        if found.len() != expected {
            return Err(SimError::BadArity {
                kind,
                found: found.len(),
                expected,
            });
        }
        // Unconnected outputs are legal (the cell is observed nowhere).
        let output = output.unwrap_or_default();
        if !output.is_empty() {
            driven.push(output.clone());
        }
        resolved.push((kind, found, output));
    }

    let mut primary: Vec<String> = schematic
        .nets
        .iter()
        .map(|n| n.name.clone())
        .filter(|n| !driven.contains(n))
        .collect();
    primary.sort();
    primary.dedup();
    Ok(Wiring {
        cells: resolved,
        primary_inputs: primary,
    })
}

/// Simulate one vector: bit `i` (LSB-first across the bytes) drives
/// `primary_inputs[i]`. Returns every net's settled value.
pub fn simulate(wiring: &Wiring, vector: &[u8]) -> Result<NetValues, SimError> {
    let needed = wiring.primary_inputs.len();
    if vector.len() * 8 < needed {
        return Err(SimError::ShortVector {
            supplied: vector.len() * 8,
            needed,
        });
    }
    let mut values: NetValues = BTreeMap::new();
    for (i, name) in wiring.primary_inputs.iter().enumerate() {
        let bit = (vector[i / 8] >> (i % 8)) & 1 == 1;
        values.insert(name.clone(), bit);
    }

    // Relaxation: combinational logic settles within #cells sweeps.
    let mut remaining: Vec<usize> = (0..wiring.cells.len()).collect();
    for _ in 0..=wiring.cells.len() {
        if remaining.is_empty() {
            return Ok(values);
        }
        let mut next = Vec::new();
        for &ci in &remaining {
            let (kind, inputs, output) = &wiring.cells[ci];
            let ready: Option<Vec<bool>> = inputs.iter().map(|n| values.get(n).copied()).collect();
            match ready {
                Some(ins) => {
                    let out = evaluate(kind, &ins);
                    if !output.is_empty() {
                        values.insert(output.clone(), out);
                    }
                }
                None => next.push(ci),
            }
        }
        if next.len() == remaining.len() {
            return Err(SimError::DidNotSettle);
        }
        remaining = next;
    }
    if remaining.is_empty() {
        Ok(values)
    } else {
        Err(SimError::DidNotSettle)
    }
}

/// A fault run: simulate every vector against two schematic versions
/// and report the vectors whose responses differ (the "fault coverage"
/// style comparison DMS ran between a golden and a revised design).
pub fn compare_responses(
    golden: &SchematicData,
    candidate: &SchematicData,
    vectors: &[Vec<u8>],
) -> Result<Vec<usize>, SimError> {
    let gw = wire(golden)?;
    let cw = wire(candidate)?;
    let mut differing = Vec::new();
    for (i, vector) in vectors.iter().enumerate() {
        let g = simulate(&gw, vector)?;
        let c = simulate(&cw, vector)?;
        // Compare only nets both designs have (renamed internals are
        // not observable points).
        let differs = g
            .iter()
            .any(|(net, &gv)| c.get(net).is_some_and(|&cv| cv != gv));
        if differs {
            differing.push(i);
        }
    }
    Ok(differing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, Net};

    /// A half adder: sum = a XOR b, carry = a AND b.
    fn half_adder() -> SchematicData {
        SchematicData {
            cells: vec![
                Cell {
                    kind: "XOR2".into(),
                    x: 0,
                    y: 0,
                },
                Cell {
                    kind: "AND2".into(),
                    x: 0,
                    y: 10,
                },
            ],
            nets: vec![
                Net {
                    name: "a".into(),
                    pins: vec![(0, 0), (1, 0)],
                },
                Net {
                    name: "b".into(),
                    pins: vec![(0, 1), (1, 1)],
                },
                Net {
                    name: "sum".into(),
                    pins: vec![(0, 2)],
                },
                Net {
                    name: "carry".into(),
                    pins: vec![(1, 2)],
                },
            ],
        }
    }

    #[test]
    fn half_adder_truth_table() {
        let wiring = wire(&half_adder()).unwrap();
        assert_eq!(wiring.primary_inputs, vec!["a", "b"]);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let vector = vec![(a as u8) | ((b as u8) << 1)];
            let out = simulate(&wiring, &vector).unwrap();
            assert_eq!(out["sum"], a ^ b, "sum({a},{b})");
            assert_eq!(out["carry"], a && b, "carry({a},{b})");
        }
    }

    #[test]
    fn seed_schematic_simulates() {
        let wiring = wire(&crate::seed_schematic()).unwrap();
        assert_eq!(wiring.primary_inputs, vec!["a", "b", "sel"]);
        // Exhaustive truth table of the ALU slice.
        for bits in 0u8..8 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let sel = bits & 4 == 4;
            let out = simulate(&wiring, &[bits]).unwrap();
            let n0 = !(a && b);
            let n1 = !(b && n0);
            let sum = a ^ b;
            assert_eq!(out["sum"], sum, "sum at {bits:03b}");
            assert_eq!(out["n1"], n1, "n1 at {bits:03b}");
            assert_eq!(out["y"], if sel { n1 } else { sum }, "y at {bits:03b}");
        }
    }

    #[test]
    fn fault_comparison_detects_changed_logic() {
        let golden = half_adder();
        let mut faulty = golden.clone();
        faulty.cells[0].kind = "NAND2".into(); // sum gate swapped
        let vectors: Vec<Vec<u8>> = (0u8..4).map(|v| vec![v]).collect();
        let differing = compare_responses(&golden, &faulty, &vectors).unwrap();
        // NAND differs from XOR on 00, 01 and 10 (XOR:0,1,1 vs NAND:1,1,1)
        // → differs on 00 and 11 (XOR(1,1)=0, NAND=0 → same on... check):
        // 00: XOR=0 NAND=1 differ; 01: 1 vs 1 same; 10: 1 vs 1 same;
        // 11: 0 vs 0 same.
        assert_eq!(differing, vec![0]);
        // Identical designs never differ.
        assert!(compare_responses(&golden, &golden, &vectors)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn error_cases() {
        let mut bad = half_adder();
        bad.cells[0].kind = "FLUXCAP".into();
        assert!(matches!(wire(&bad), Err(SimError::UnknownCell(_))));

        let mut unwired = half_adder();
        unwired.nets.remove(0); // XOR and AND lose input a
        assert!(matches!(wire(&unwired), Err(SimError::BadArity { .. })));

        let wiring = wire(&half_adder()).unwrap();
        assert!(matches!(
            simulate(&wiring, &[]),
            Err(SimError::ShortVector { .. })
        ));
    }

    #[test]
    fn chained_logic_settles() {
        // a -> INV -> n1 -> INV -> n2 (double inversion = identity)
        let sch = SchematicData {
            cells: vec![
                Cell {
                    kind: "INV".into(),
                    x: 0,
                    y: 0,
                },
                Cell {
                    kind: "INV".into(),
                    x: 10,
                    y: 0,
                },
            ],
            nets: vec![
                Net {
                    name: "a".into(),
                    pins: vec![(0, 0)],
                },
                Net {
                    name: "n1".into(),
                    pins: vec![(0, 1), (1, 0)],
                },
                Net {
                    name: "n2".into(),
                    pins: vec![(1, 1)],
                },
            ],
        };
        let wiring = wire(&sch).unwrap();
        let out = simulate(&wiring, &[1]).unwrap();
        assert!(out["a"]);
        assert!(!out["n1"]);
        assert!(out["n2"]);
    }
}
