//! Cross-crate scenario: build a §5 design database with `ode-dms`,
//! then inspect it with `ode-tools` the way an operator would.

use ode::{Database, DatabaseOptions};
use ode_dms::{bootstrap, Cell};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-dmstools-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let mut wal = p.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    p
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

#[test]
fn operator_view_of_a_design_database() {
    let path = temp_path("operator");
    let schematic_oid;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let design = bootstrap(&db, "alu-ops").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();
        schematic_oid = chip.schematic.oid().0;
        design
            .revise_schematic(&mut txn, |s| {
                s.cells.push(Cell {
                    kind: "INV".into(),
                    x: 9,
                    y: 9,
                })
            })
            .unwrap();
        let v0 = txn.version_history(&chip.schematic).unwrap()[0];
        txn.newversion_from(&v0).unwrap();
        txn.commit().unwrap();
        // Clean shutdown (Drop checkpoints).
    }

    // The operator inspects the file with the tools library.
    let info = ode_tools::store_info(&path).unwrap();
    // 3 data objects + 3 configurations + the chip record = 7 objects,
    // and the schematic carries 3 versions.
    assert_eq!(info.object_count, 7);
    assert_eq!(info.version_count, 9);
    assert!(info.type_count >= 5);
    assert_eq!(info.wal_bytes, 0, "checkpointed on clean shutdown");

    let objects = ode_tools::list_objects(&path).unwrap();
    assert_eq!(objects.len(), 7);
    let schematic = objects
        .iter()
        .find(|o| o.oid == schematic_oid)
        .expect("schematic listed");
    assert_eq!(schematic.versions, 3);

    let described = ode_tools::describe_object(&path, schematic_oid).unwrap();
    assert!(described.contains("versions : 3"));

    let dot = ode_tools::export_object_dot(&path, schematic_oid).unwrap();
    // Two alternatives hang off v0: two solid edges into the same node.
    assert_eq!(dot.matches("style=solid").count(), 2);

    let report = ode_tools::fsck(&path).unwrap();
    assert!(report.is_healthy(), "{:?}", report.problems);
    assert_eq!(report.objects_checked, 7);
    assert_eq!(report.versions_checked, 9);

    cleanup(&path);
}
