//! Shard placement: which backend owns which object.
//!
//! The paper's generic references ("an object id denotes the latest
//! version") stay honest under scale-out only if every route to an
//! object resolves through a single authority. [`ShardMap`] is that
//! routing function: a pure, restart-stable map from id to shard.
//!
//! ## Shard-qualified ids
//!
//! Backend shards are stock [`crate::OdeServer`]s, each allocating
//! object and version ids from its own counter — so raw backend ids
//! collide across shards. The router therefore multiplexes the N
//! backend id-spaces into one client-visible id-space by *minting*
//! shard-qualified ids: backend id `b` on shard `s` appears to clients
//! as `b * N + s`. Placement is then the low residue, `shard_of(id) =
//! id mod N` — the hash is the identity, because the id itself carries
//! its placement. (A mixing hash would scatter ids just as stably, but
//! would make the backend id unrecoverable; with residue routing, the
//! Euclidean decomposition `(id mod N, id div N)` inverts the minting
//! exactly, for *every* u64 — including ids a client fabricated.)
//!
//! Both [`Oid`] and [`Vid`] are qualified the same way, so any request
//! that names either routes deterministically. The map depends only on
//! `(id, shard_count)`: restarting the router, or running two routers
//! side by side over the same backends, yields the identical map — the
//! property `crates/net/tests/proptest_router.rs` pins down.

use ode::{Oid, Vid};

/// The pure placement function for a tier of `N` shards.
///
/// Stateless and trivially `Copy`: every property of the map follows
/// from the shard count alone, which is what makes it stable across
/// router restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u64,
}

impl ShardMap {
    /// A map over `shards` backends. Panics on zero — a tier with no
    /// authority for any object is a configuration error, not a state.
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap {
            shards: shards as u64,
        }
    }

    /// Number of shards in the tier.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The shard that owns `oid`. Total over all of u64: every id —
    /// minted or fabricated — maps to exactly one shard.
    pub fn shard_of(&self, oid: Oid) -> usize {
        (oid.0 % self.shards) as usize
    }

    /// The shard that owns the object `vid` belongs to. Versions are
    /// qualified identically to objects, so a version always lives on
    /// its object's shard.
    pub fn shard_of_vid(&self, vid: Vid) -> usize {
        (vid.0 % self.shards) as usize
    }

    /// Client-visible id for backend object `b` on shard `shard`.
    pub fn client_oid(&self, b: Oid, shard: usize) -> Oid {
        Oid(b.0 * self.shards + shard as u64)
    }

    /// Client-visible id for backend version `b` on shard `shard`.
    pub fn client_vid(&self, b: Vid, shard: usize) -> Vid {
        Vid(b.0 * self.shards + shard as u64)
    }

    /// Backend-local object id of a client-visible id (its owning shard
    /// is [`ShardMap::shard_of`]).
    pub fn backend_oid(&self, oid: Oid) -> Oid {
        Oid(oid.0 / self.shards)
    }

    /// Backend-local version id of a client-visible id.
    pub fn backend_vid(&self, vid: Vid) -> Vid {
        Vid(vid.0 / self.shards)
    }

    /// Smallest backend id on `shard` whose client-visible id is `>=
    /// after` — the per-shard cursor an `ObjectsPage` scatter starts
    /// from.
    pub fn backend_cursor(&self, after: Oid, shard: usize) -> Oid {
        let s = shard as u64;
        if after.0 <= s {
            Oid(0)
        } else {
            Oid((after.0 - s).div_ceil(self.shards))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_the_identity() {
        let map = ShardMap::new(1);
        for raw in [0u64, 1, 7, u64::MAX] {
            assert_eq!(map.shard_of(Oid(raw)), 0);
            assert_eq!(map.client_oid(Oid(raw), 0), Oid(raw));
            assert_eq!(map.backend_oid(Oid(raw)), Oid(raw));
            assert_eq!(map.client_vid(Vid(raw), 0), Vid(raw));
            assert_eq!(map.backend_vid(Vid(raw)), Vid(raw));
        }
    }

    #[test]
    fn minting_and_decomposition_invert_each_other() {
        let map = ShardMap::new(4);
        for b in [0u64, 1, 2, 100, 1 << 40] {
            for s in 0..4 {
                let client = map.client_oid(Oid(b), s);
                assert_eq!(map.shard_of(client), s);
                assert_eq!(map.backend_oid(client), Oid(b));
            }
        }
        // And the other direction: any u64 decomposes and re-mints.
        for raw in [0u64, 1, 5, 0xDEAD, u64::MAX - 3] {
            let oid = Oid(raw);
            let (s, b) = (map.shard_of(oid), map.backend_oid(oid));
            assert_eq!(map.client_oid(b, s), oid);
        }
    }

    #[test]
    fn cursor_is_the_smallest_backend_id_at_or_past_after() {
        let map = ShardMap::new(4);
        for after in 0..40u64 {
            for s in 0..4usize {
                let b = map.backend_cursor(Oid(after), s);
                assert!(map.client_oid(b, s).0 >= after);
                if b.0 > 0 {
                    assert!(map.client_oid(Oid(b.0 - 1), s).0 < after);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_refused() {
        let _ = ShardMap::new(0);
    }
}
