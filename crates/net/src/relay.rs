//! A controllable chaos TCP relay for fault-injection tests.
//!
//! A [`FaultRelay`] sits between a client (or a router) and one
//! upstream server, forwarding bytes while mistreating them on demand:
//! splitting streams at arbitrary boundaries, delaying delivery,
//! cutting connections after a byte budget, refusing new connections,
//! or killing every live connection at once. The relay's own listening
//! address is *stable* — tests park a router on it, then restart the
//! backend behind it on a fresh port via [`FaultRelay::set_upstream`],
//! exactly the "shard came back somewhere else" shape a real tier must
//! survive.
//!
//! The per-connection mistreatment schedule ([`RelayPlan`]) is the one
//! the protocol-level fault tests established: budgets make connection
//! death deterministic to the byte, which is what lets a test assert
//! "the handshake echo arrived, the response did not" instead of
//! racing a timer.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;

/// How the relay mistreats one proxied connection.
#[derive(Clone, Copy, Debug)]
pub struct RelayPlan {
    /// Bytes forwarded client→server before the connection is cut.
    pub c2s_budget: usize,
    /// Bytes forwarded server→client before the connection is cut.
    pub s2c_budget: usize,
    /// Forwarding granularity: each read is re-written in chunks of at
    /// most this many bytes.
    pub chunk: usize,
    /// Delay between forwarded chunks.
    pub delay: Duration,
}

impl RelayPlan {
    /// Forward everything untouched.
    pub fn clean() -> RelayPlan {
        RelayPlan {
            c2s_budget: usize::MAX,
            s2c_budget: usize::MAX,
            chunk: usize::MAX,
            delay: Duration::ZERO,
        }
    }
}

impl Default for RelayPlan {
    fn default() -> RelayPlan {
        RelayPlan::clean()
    }
}

struct RelayInner {
    /// Where accepted connections are forwarded. Swappable at runtime:
    /// the relay address stays fixed while the server behind it moves.
    upstream: Mutex<SocketAddr>,
    /// The nth accepted connection follows `plans[n]`; beyond the list,
    /// connections are forwarded cleanly.
    plans: Mutex<Vec<RelayPlan>>,
    next_conn: AtomicUsize,
    /// Raw handles of every proxied socket, kept so [`FaultRelay::cut_all`]
    /// can kill live connections mid-frame. Dead entries are pruned
    /// lazily on the next cut.
    live: Mutex<Vec<TcpStream>>,
    /// While set, new connections are accepted and immediately closed —
    /// the "shard is down" face shown to a dialer.
    down: AtomicBool,
    shutdown: AtomicBool,
}

/// A chaos relay fronting one upstream server. See the module docs.
pub struct FaultRelay {
    addr: SocketAddr,
    inner: Arc<RelayInner>,
}

/// One relay direction: read from `from`, forward to `to` in plan-sized
/// chunks until the byte budget runs out, then cut both directions of
/// both sockets.
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: usize, chunk: usize, delay: Duration) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        for piece in buf[..n].chunks(chunk.max(1)) {
            let take = piece.len().min(budget);
            if to.write_all(&piece[..take]).is_err() {
                budget = 0;
            } else {
                budget -= take;
            }
            if budget == 0 {
                // Budget spent: kill the connection mid-stream.
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            if !delay.is_zero() {
                thread::sleep(delay);
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

impl FaultRelay {
    /// Start a relay in front of `upstream` with the given
    /// per-connection plans. Returns once the listener is bound.
    pub fn start(upstream: SocketAddr, plans: Vec<RelayPlan>) -> std::io::Result<FaultRelay> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(RelayInner {
            upstream: Mutex::new(upstream),
            plans: Mutex::new(plans),
            next_conn: AtomicUsize::new(0),
            live: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(client_side) = stream else { continue };
                if accept_inner.down.load(Ordering::Acquire) {
                    let _ = client_side.shutdown(Shutdown::Both);
                    continue;
                }
                let upstream = *accept_inner.upstream.lock();
                let Ok(server_side) = TcpStream::connect(upstream) else {
                    let _ = client_side.shutdown(Shutdown::Both);
                    continue;
                };
                let i = accept_inner.next_conn.fetch_add(1, Ordering::Relaxed);
                let plan = {
                    let plans = accept_inner.plans.lock();
                    plans.get(i).copied().unwrap_or_else(RelayPlan::clean)
                };
                let (c2, s2) = match (client_side.try_clone(), server_side.try_clone()) {
                    (Ok(c), Ok(s)) => (c, s),
                    _ => {
                        let _ = client_side.shutdown(Shutdown::Both);
                        let _ = server_side.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                {
                    let mut live = accept_inner.live.lock();
                    if let (Ok(c), Ok(s)) = (client_side.try_clone(), server_side.try_clone()) {
                        live.push(c);
                        live.push(s);
                    }
                }
                thread::spawn(move || {
                    pump(
                        client_side,
                        server_side,
                        plan.c2s_budget,
                        plan.chunk,
                        plan.delay,
                    )
                });
                thread::spawn(move || pump(s2, c2, plan.s2c_budget, plan.chunk, plan.delay));
            }
        });
        Ok(FaultRelay { addr, inner })
    }

    /// The stable address to point a client or router at.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-point the relay at a new upstream. Live connections keep
    /// their original upstream; only connections accepted after the
    /// call dial the new one.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.inner.upstream.lock() = upstream;
    }

    /// Replace the mistreatment schedule and restart its numbering:
    /// the next accepted connection follows `plans[0]`. Live
    /// connections keep the plan they were accepted under.
    pub fn set_plans(&self, plans: Vec<RelayPlan>) {
        *self.inner.plans.lock() = plans;
        self.inner.next_conn.store(0, Ordering::Relaxed);
    }

    /// While `down` is set, new connections are accepted and
    /// immediately closed. Live connections are unaffected — combine
    /// with [`FaultRelay::cut_all`] for a full outage.
    pub fn set_down(&self, down: bool) {
        self.inner.down.store(down, Ordering::Release);
    }

    /// Kill every live proxied connection mid-stream, both directions.
    pub fn cut_all(&self) {
        let mut live = self.inner.live.lock();
        for sock in live.drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }

    /// Stop accepting and kill all live connections. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.cut_all();
    }
}

impl Drop for FaultRelay {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut s) = stream else { continue };
                thread::spawn(move || {
                    let mut buf = [0u8; 256];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, stop)
    }

    #[test]
    fn relays_bytes_and_survives_retargeting() {
        let (up1, _stop1) = echo_server();
        let relay = FaultRelay::start(up1, vec![]).expect("start relay");

        let mut c = TcpStream::connect(relay.local_addr()).expect("dial relay");
        c.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).expect("echo back");
        assert_eq!(&buf, b"ping");

        // Swap the upstream; a *new* connection reaches the new server.
        let (up2, _stop2) = echo_server();
        relay.set_upstream(up2);
        let mut c2 = TcpStream::connect(relay.local_addr()).expect("dial relay again");
        c2.write_all(b"pong").expect("write");
        c2.read_exact(&mut buf).expect("echo from new upstream");
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn cut_all_kills_live_connections_and_down_refuses_new_ones() {
        let (up, _stop) = echo_server();
        let relay = FaultRelay::start(up, vec![]).expect("start relay");

        let mut c = TcpStream::connect(relay.local_addr()).expect("dial relay");
        c.write_all(b"x").expect("write");
        let mut buf = [0u8; 1];
        c.read_exact(&mut buf).expect("echo");

        relay.set_down(true);
        relay.cut_all();

        // The live connection is dead: the next read sees EOF or error.
        let mut tail = [0u8; 1];
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        match c.read(&mut tail) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("cut connection delivered data"),
        }

        // New connections are swatted away while down; restored after.
        let mut probe = TcpStream::connect(relay.local_addr()).expect("tcp accept still works");
        probe
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        match probe.read(&mut tail) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("down relay forwarded data"),
        }

        relay.set_down(false);
        let mut c3 = TcpStream::connect(relay.local_addr()).expect("dial after recovery");
        c3.write_all(b"y").expect("write");
        c3.read_exact(&mut buf).expect("echo after recovery");
        assert_eq!(&buf, b"y");
    }
}
