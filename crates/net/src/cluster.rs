//! An in-process sharded tier for deterministic cluster-fault tests.
//!
//! [`Cluster`] spins up N backend [`OdeServer`] shards, fronts each
//! with a [`FaultRelay`], and parks an [`OdeRouter`] on the relay
//! addresses. Tests drive the tier through an ordinary
//! [`crate::OdeClient`] pointed at the router, and inject faults
//! through the relays: [`Cluster::kill_shard`] downs one shard
//! mid-pipeline, [`Cluster::restart_shard`] brings it back on a fresh
//! port — the relay's stable address absorbs the move, which is
//! exactly why the router dials relays rather than shards.
//!
//! Everything is in-process and panics on setup failure: this is a
//! test harness, not a deployment tool (that is `ode-routerd`).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use ode::{Database, DatabaseOptions};

use crate::protocol::StatsReport;
use crate::relay::FaultRelay;
use crate::router::{OdeRouter, RouterConfig, RouterStatsReport};
use crate::server::{OdeServer, ServerConfig};
use crate::shard::ShardMap;

/// Cluster tuning: how many shards, and the config handed to each
/// backend server and to the router.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of backend shards.
    pub shards: usize,
    /// Config for every backend `OdeServer`.
    pub server: ServerConfig,
    /// Config for the router.
    pub router: RouterConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 4,
            server: ServerConfig::default(),
            router: RouterConfig::default(),
        }
    }
}

struct ShardNode {
    path: PathBuf,
    /// `None` while the shard is killed.
    db: Option<Arc<Database>>,
    server: Option<OdeServer>,
    relay: FaultRelay,
}

/// A running in-process tier: N shards, N relays, one router.
pub struct Cluster {
    nodes: Vec<ShardNode>,
    router: Option<OdeRouter>,
}

impl Cluster {
    /// Start a tier per `config`. Shard databases are fresh temp files
    /// (removed on drop), WAL-durable but unsynced for test speed.
    pub fn start(config: ClusterConfig) -> Cluster {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let nodes: Vec<ShardNode> = (0..config.shards)
            .map(|i| {
                let path = ode::testutil::fresh_path();
                let db = Arc::new(
                    Database::create(&path, DatabaseOptions::no_sync())
                        .unwrap_or_else(|e| panic!("create shard {i} db: {e}")),
                );
                let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config.server.clone())
                    .unwrap_or_else(|e| panic!("bind shard {i}: {e}"));
                let relay = FaultRelay::start(server.local_addr(), vec![])
                    .unwrap_or_else(|e| panic!("start relay {i}: {e}"));
                ShardNode {
                    path,
                    db: Some(db),
                    server: Some(server),
                    relay,
                }
            })
            .collect();
        let backends: Vec<SocketAddr> = nodes.iter().map(|n| n.relay.local_addr()).collect();
        let router =
            OdeRouter::bind("127.0.0.1:0", backends, config.router).expect("bind cluster router");
        Cluster {
            nodes,
            router: Some(router),
        }
    }

    /// The router address — point clients here.
    pub fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").local_addr()
    }

    /// The tier's shard map (for asserting placement in tests).
    pub fn shard_map(&self) -> ShardMap {
        self.router.as_ref().expect("router running").shard_map()
    }

    /// The router's counters.
    pub fn router_stats(&self) -> RouterStatsReport {
        self.router.as_ref().expect("router running").stats()
    }

    /// One shard's server counters. Panics if the shard is killed.
    pub fn shard_stats(&self, shard: usize) -> StatsReport {
        self.nodes[shard]
            .server
            .as_ref()
            .expect("shard is down")
            .stats()
    }

    /// The fault relay in front of one shard, for finer-grained
    /// mistreatment than kill/restart.
    pub fn relay(&self, shard: usize) -> &FaultRelay {
        &self.nodes[shard].relay
    }

    /// Kill one shard: cut every live connection mid-frame, refuse new
    /// ones, and stop the backend server. In-flight requests on that
    /// shard surface as `Unavailable`; other shards are untouched.
    pub fn kill_shard(&mut self, shard: usize) {
        let node = &mut self.nodes[shard];
        node.relay.set_down(true);
        node.relay.cut_all();
        if let Some(server) = node.server.take() {
            server.shutdown();
        }
        node.db = None; // release the database before a reopen
    }

    /// Restart a killed shard from its on-disk state (WAL recovery
    /// included) on a fresh port, re-pointing the relay at it.
    pub fn restart_shard(&mut self, shard: usize, server_config: ServerConfig) {
        let node = &mut self.nodes[shard];
        assert!(node.server.is_none(), "shard {shard} is already running");
        let db = Arc::new(
            Database::open(&node.path, DatabaseOptions::no_sync())
                .unwrap_or_else(|e| panic!("reopen shard {shard} db: {e}")),
        );
        let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", server_config)
            .unwrap_or_else(|e| panic!("rebind shard {shard}: {e}"));
        node.relay.set_upstream(server.local_addr());
        node.relay.set_down(false);
        node.db = Some(db);
        node.server = Some(server);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for node in &mut self.nodes {
            node.relay.shutdown();
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
            node.db = None;
            let _ = std::fs::remove_file(&node.path);
            let mut wal = node.path.clone().into_os_string();
            wal.push(".wal");
            let _ = std::fs::remove_file(PathBuf::from(wal));
        }
    }
}
