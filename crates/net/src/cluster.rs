//! An in-process sharded tier for deterministic cluster-fault tests.
//!
//! [`Cluster`] spins up N backend [`OdeServer`] shards, fronts each
//! with a [`FaultRelay`], and parks an [`OdeRouter`] on the relay
//! addresses. Tests drive the tier through an ordinary
//! [`crate::OdeClient`] pointed at the router, and inject faults
//! through the relays: [`Cluster::kill_shard`] downs one shard
//! mid-pipeline, [`Cluster::restart_shard`] brings it back on a fresh
//! port — the relay's stable address absorbs the move, which is
//! exactly why the router dials relays rather than shards.
//!
//! With [`ClusterConfig::replicas`] > 0 each shard becomes a
//! replication group: the primary runs an `ode-repl`
//! [`ReplicationHub`] shipping its WAL, and every replica is a
//! [`ReplicaNode`] applying that stream plus a replica-mode
//! [`OdeServer`] serving epoch-gated reads. Both the client channel
//! and the *shipping* channel of every replica pass through their own
//! relays, so tests can [`Cluster::partition_replica`] the WAL stream
//! (lag, kill-mid-ship) independently of client traffic, and
//! [`Cluster::kill_primary`] crash-kills a primary (no shutdown
//! checkpoint) to exercise the router's driven failover.
//!
//! Everything is in-process and panics on setup failure: this is a
//! test harness, not a deployment tool (that is `ode-routerd`).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ode::{Database, DatabaseOptions};
use ode_repl::{HubOptions, NodeStatus, ReplicaNode, ReplicationHub};

use crate::client::{ClientConfig, OdeClient};
use crate::protocol::StatsReport;
use crate::relay::FaultRelay;
use crate::router::{OdeRouter, RouterConfig, RouterStatsReport, ShardMembership};
use crate::server::{OdeServer, ServerConfig, ServerHooks};
use crate::shard::ShardMap;

/// How long a semi-sync primary waits for a replica ack before
/// acknowledging the client anyway (replication is best-effort when
/// the channel is down — availability over strict durability).
const SEMI_SYNC_WAIT: Duration = Duration::from_millis(500);

/// Cluster tuning: how many shards, and the config handed to each
/// backend server and to the router.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of backend shards.
    pub shards: usize,
    /// Replicas per shard. `0` reproduces the unreplicated tier.
    pub replicas: usize,
    /// When replicas exist, hold each write acknowledgement until a
    /// replica acked its epoch (bounded by [`SEMI_SYNC_WAIT`]).
    pub semi_sync: bool,
    /// Config for every backend `OdeServer`.
    pub server: ServerConfig,
    /// Config for the router.
    pub router: RouterConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 4,
            replicas: 0,
            semi_sync: true,
            server: ServerConfig::default(),
            router: RouterConfig::default(),
        }
    }
}

/// One replica of a shard: its own database, the `ode-repl` apply
/// node, a read-only server, and two relays — client-facing and
/// shipping-channel.
struct ReplicaUnit {
    path: PathBuf,
    db: Arc<Database>,
    node: Arc<ReplicaNode>,
    server: Option<OdeServer>,
    /// Router-facing relay (reads, and writes after promotion).
    relay: FaultRelay,
    /// Relay on the replica → hub WAL-shipping channel.
    repl_relay: FaultRelay,
}

struct ShardNode {
    path: PathBuf,
    /// `None` while the shard is killed.
    db: Option<Arc<Database>>,
    server: Option<OdeServer>,
    relay: FaultRelay,
    /// WAL-shipping hub, present when the shard has replicas.
    hub: Option<Arc<ReplicationHub>>,
    replicas: Vec<ReplicaUnit>,
}

/// A running in-process tier: N shards (each optionally a replication
/// group), a relay per node, one router.
pub struct Cluster {
    nodes: Vec<ShardNode>,
    router: Option<OdeRouter>,
}

impl Cluster {
    /// Start a tier per `config`. Shard databases are fresh temp files
    /// (removed on drop), WAL-durable but unsynced for test speed.
    pub fn start(config: ClusterConfig) -> Cluster {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let nodes: Vec<ShardNode> = (0..config.shards)
            .map(|i| Cluster::start_shard(i, &config))
            .collect();
        let members: Vec<ShardMembership> = nodes
            .iter()
            .map(|n| ShardMembership {
                primary: n.relay.local_addr(),
                replicas: n.replicas.iter().map(|r| r.relay.local_addr()).collect(),
            })
            .collect();
        let router = OdeRouter::bind_with_members("127.0.0.1:0", members, config.router)
            .expect("bind cluster router");
        Cluster {
            nodes,
            router: Some(router),
        }
    }

    fn start_shard(i: usize, config: &ClusterConfig) -> ShardNode {
        let path = ode::testutil::fresh_path();
        let db = Arc::new(
            Database::create(&path, DatabaseOptions::no_sync())
                .unwrap_or_else(|e| panic!("create shard {i} db: {e}")),
        );
        let hub = if config.replicas > 0 {
            Some(Arc::new(
                ReplicationHub::start(Arc::clone(&db), "127.0.0.1:0", HubOptions::default())
                    .unwrap_or_else(|e| panic!("start shard {i} hub: {e}")),
            ))
        } else {
            None
        };
        let mut hooks = ServerHooks::default();
        if config.semi_sync {
            if let Some(hub) = &hub {
                let hub = Arc::clone(hub);
                hooks.commit_wait = Some(Arc::new(move |epoch| {
                    // Best-effort: a downed channel must not wedge the
                    // tier, so the ack proceeds after the bounded wait.
                    let _ = hub.wait_replicated(epoch, SEMI_SYNC_WAIT);
                }));
            }
        }
        let server =
            OdeServer::bind_with(Arc::clone(&db), "127.0.0.1:0", config.server.clone(), hooks)
                .unwrap_or_else(|e| panic!("bind shard {i}: {e}"));
        let relay = FaultRelay::start(server.local_addr(), vec![])
            .unwrap_or_else(|e| panic!("start relay {i}: {e}"));
        let hub_addr = hub.as_ref().map(|h| h.local_addr());
        let replicas = (0..config.replicas)
            .map(|r| {
                Cluster::start_replica(i, r, hub_addr.expect("hub exists with replicas"), config)
            })
            .collect();
        ShardNode {
            path,
            db: Some(db),
            server: Some(server),
            relay,
            hub,
            replicas,
        }
    }

    fn start_replica(
        shard: usize,
        idx: usize,
        hub_addr: SocketAddr,
        config: &ClusterConfig,
    ) -> ReplicaUnit {
        let path = ode::testutil::fresh_path();
        let db = Arc::new(
            Database::create(&path, DatabaseOptions::no_sync())
                .unwrap_or_else(|e| panic!("create shard {shard} replica {idx} db: {e}")),
        );
        // The shipping channel gets its own relay so a test can cut the
        // WAL stream without touching client traffic.
        let repl_relay = FaultRelay::start(hub_addr, vec![])
            .unwrap_or_else(|e| panic!("start shard {shard} replica {idx} repl relay: {e}"));
        let node = Arc::new(ReplicaNode::start(
            Arc::clone(&db),
            repl_relay.local_addr().to_string(),
        ));
        let hook_node = Arc::clone(&node);
        let hooks = ServerHooks {
            commit_wait: None,
            // Driven failover lands here: the router's `Promote` stops
            // the apply loop and fences the unapplied WAL tail before
            // the server flips to accepting writes.
            promote: Some(Arc::new(move || {
                hook_node.promote().map_err(|e| e.to_string())
            })),
        };
        let server_config = ServerConfig {
            replica: true,
            ..config.server.clone()
        };
        let server = OdeServer::bind_with(Arc::clone(&db), "127.0.0.1:0", server_config, hooks)
            .unwrap_or_else(|e| panic!("bind shard {shard} replica {idx}: {e}"));
        let relay = FaultRelay::start(server.local_addr(), vec![])
            .unwrap_or_else(|e| panic!("start shard {shard} replica {idx} relay: {e}"));
        ReplicaUnit {
            path,
            db,
            node,
            server: Some(server),
            relay,
            repl_relay,
        }
    }

    /// The router address — point clients here.
    pub fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").local_addr()
    }

    /// The tier's shard map (for asserting placement in tests).
    pub fn shard_map(&self) -> ShardMap {
        self.router.as_ref().expect("router running").shard_map()
    }

    /// The router's counters.
    pub fn router_stats(&self) -> RouterStatsReport {
        self.router.as_ref().expect("router running").stats()
    }

    /// The router's current view of one shard's membership:
    /// `(primary, probed primary epoch, [(replica, last probed epoch)])`.
    pub fn shard_members(&self, shard: usize) -> (SocketAddr, u64, Vec<(SocketAddr, Option<u64>)>) {
        self.router
            .as_ref()
            .expect("router running")
            .shard_members(shard)
    }

    /// One shard's server counters. Panics if the shard is killed.
    pub fn shard_stats(&self, shard: usize) -> StatsReport {
        self.nodes[shard]
            .server
            .as_ref()
            .expect("shard is down")
            .stats()
    }

    /// One replica's server counters.
    pub fn replica_stats(&self, shard: usize, idx: usize) -> StatsReport {
        self.nodes[shard].replicas[idx]
            .server
            .as_ref()
            .expect("replica is down")
            .stats()
    }

    /// The fault relay in front of one shard, for finer-grained
    /// mistreatment than kill/restart.
    pub fn relay(&self, shard: usize) -> &FaultRelay {
        &self.nodes[shard].relay
    }

    /// The relay on one replica's WAL-shipping channel (replica →
    /// primary hub), for lag and kill-mid-ship faults.
    pub fn repl_relay(&self, shard: usize, idx: usize) -> &FaultRelay {
        &self.nodes[shard].replicas[idx].repl_relay
    }

    /// The primary's applied commit epoch. Panics if killed.
    pub fn primary_epoch(&self, shard: usize) -> u64 {
        self.nodes[shard]
            .db
            .as_ref()
            .expect("shard is down")
            .snapshot_epoch()
    }

    /// One replica's apply progress (WAL position, epoch, liveness of
    /// its shipping connection).
    pub fn replica_status(&self, shard: usize, idx: usize) -> NodeStatus {
        self.nodes[shard].replicas[idx].node.status()
    }

    /// One replica's database (read-only until promoted).
    pub fn replica_db(&self, shard: usize, idx: usize) -> &Arc<Database> {
        &self.nodes[shard].replicas[idx].db
    }

    /// The primary's WAL-shipping hub. Panics without replicas.
    pub fn hub(&self, shard: usize) -> &ReplicationHub {
        self.nodes[shard].hub.as_ref().expect("shard has no hub")
    }

    /// Cut (`true`) or heal (`false`) the WAL-shipping channel between
    /// one replica and its primary. Client traffic is untouched: a cut
    /// replica keeps serving reads, just increasingly stale ones —
    /// which the router's epoch gate must absorb.
    pub fn partition_replica(&self, shard: usize, idx: usize, cut: bool) {
        let relay = &self.nodes[shard].replicas[idx].repl_relay;
        relay.set_down(cut);
        if cut {
            relay.cut_all();
        }
    }

    /// Kill one shard: cut every live connection mid-frame, refuse new
    /// ones, and stop the backend server. In-flight requests on that
    /// shard surface as `Unavailable`; other shards are untouched.
    pub fn kill_shard(&mut self, shard: usize) {
        let node = &mut self.nodes[shard];
        node.relay.set_down(true);
        node.relay.cut_all();
        if let Some(hub) = node.hub.take() {
            hub.shutdown();
        }
        if let Some(server) = node.server.take() {
            server.shutdown();
        }
        node.db = None; // release the database before a reopen
    }

    /// Crash-kill one shard's primary: like [`Cluster::kill_shard`]
    /// but the database is *leaked*, not dropped, so no shutdown
    /// checkpoint runs — on-disk state is exactly what the WAL fsynced,
    /// as after SIGKILL. The shipping hub dies with it, so replicas
    /// keep only what was shipped: the setup for driven failover.
    pub fn kill_primary(&mut self, shard: usize) {
        let node = &mut self.nodes[shard];
        node.relay.set_down(true);
        node.relay.cut_all();
        if let Some(hub) = node.hub.take() {
            hub.shutdown();
        }
        if let Some(server) = node.server.take() {
            server.shutdown();
        }
        if let Some(db) = node.db.take() {
            std::mem::forget(db);
        }
    }

    /// Manually promote one replica (the router's driven failover does
    /// this itself; tests use this for split-brain setups). Goes
    /// through the wire like the router would.
    pub fn promote(&self, shard: usize, idx: usize) {
        let addr = self.nodes[shard].replicas[idx].relay.local_addr();
        let mut client = OdeClient::connect(addr, ClientConfig::default())
            .unwrap_or_else(|e| panic!("connect for promote: {e}"));
        client
            .promote()
            .unwrap_or_else(|e| panic!("promote shard {shard} replica {idx}: {e}"));
    }

    /// Restart a killed shard from its on-disk state (WAL recovery
    /// included) on a fresh port, re-pointing the relay at it. Only
    /// meaningful for unreplicated shards: a replicated ex-primary
    /// rejoins as a replica instead (fenced by the generation check in
    /// `ode-repl`).
    pub fn restart_shard(&mut self, shard: usize, server_config: ServerConfig) {
        let node = &mut self.nodes[shard];
        assert!(node.server.is_none(), "shard {shard} is already running");
        let db = Arc::new(
            Database::open(&node.path, DatabaseOptions::no_sync())
                .unwrap_or_else(|e| panic!("reopen shard {shard} db: {e}")),
        );
        let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", server_config)
            .unwrap_or_else(|e| panic!("rebind shard {shard}: {e}"));
        node.relay.set_upstream(server.local_addr());
        node.relay.set_down(false);
        node.db = Some(db);
        node.server = Some(server);
    }
}

fn remove_db_files(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for node in &mut self.nodes {
            if let Some(hub) = node.hub.take() {
                hub.shutdown();
            }
            for replica in &mut node.replicas {
                replica.node.stop();
                replica.repl_relay.shutdown();
                replica.relay.shutdown();
                if let Some(server) = replica.server.take() {
                    server.shutdown();
                }
                remove_db_files(&replica.path);
            }
            node.relay.shutdown();
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
            node.db = None;
            remove_db_files(&node.path);
        }
    }
}
