//! The original thread-per-connection Ode server, kept as the
//! **reference oracle** for the event-loop [`crate::OdeServer`].
//!
//! [`ThreadedServer`] serves the identical wire protocol with the
//! pre-event-loop architecture: an accept-loop thread hands
//! connections to a bounded pool of worker threads; each worker runs
//! one connection's session at a time, split into a reader thread
//! (decode-ahead into a bounded queue, fast-path answers) and an
//! executor thread (in-order drain). The state-machine proptest
//! battery drives both servers with the same byte streams — split and
//! coalesced arbitrarily — and asserts the responses are
//! byte-identical, which is what makes this implementation worth its
//! weight: every behavior of the readiness loop is checked against a
//! model whose control flow is plain blocking code.
//!
//! Semantics shared with the event-loop server (same `execute_job`,
//! same cache, same hooks): reads on snapshots, writes committed
//! before the response, per-connection ordering, out-of-order
//! responses, read-your-writes gating. The one intentional divergence
//! is resource shape — a thread per connection and an unbounded
//! response buffer, exactly the scaling limits the event loop exists
//! to remove — so the write-buffer cap and eviction counter do not
//! apply here.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use ode::Database;

use crate::error::RemoteError;
use crate::protocol::{read_frame_into, write_frame, Request, Response, StatsReport, MAGIC};
use crate::server::{
    execute_job, frame_prefix_len, seq_prefix_len, Job, NodeCtx, ServerConfig, ServerHooks,
    ServerStats,
};
use crate::NetError;

/// Live connections by id, kept as `try_clone`d handles so shutdown can
/// unblock a worker parked in a socket read.
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A running thread-per-connection Ode server (the reference
/// implementation — see the module docs).
pub struct ThreadedServer {
    addr: SocketAddr,
    ctx: Arc<NodeCtx>,
    shutdown: Arc<AtomicBool>,
    conns: ConnRegistry,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `db`.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ThreadedServer> {
        ThreadedServer::bind_with(db, addr, config, ServerHooks::default())
    }

    /// [`ThreadedServer::bind`] with replication hooks.
    pub fn bind_with(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        hooks: ServerHooks,
    ) -> io::Result<ThreadedServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let depth = config.pipeline_depth.max(1);
        let ctx = Arc::new(NodeCtx::new(db, &config, hooks));

        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&conn_rx);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name(format!("ode-net-tworker-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx, &conns, depth))
                    .expect("spawn server worker thread")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&ctx.stats);
            thread::Builder::new()
                .name("ode-net-taccept".into())
                .spawn(move || {
                    let mut next_id = 0u64;
                    // conn_tx moves in here; dropping it on exit stops
                    // the workers once the queue drains.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        stats.total_connections.fetch_add(1, Ordering::Relaxed);
                        next_id += 1;
                        if conn_tx.send((next_id, stream)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn server accept thread")
        };

        Ok(ThreadedServer {
            addr,
            ctx,
            shutdown,
            conns,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether this node currently refuses writes (replica role).
    pub fn is_replica(&self) -> bool {
        self.ctx.replica.load(Ordering::Acquire)
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> StatsReport {
        self.ctx.stats.report(&self.ctx.cache, &self.ctx.db)
    }

    /// Stop accepting, unblock and close every live connection, and
    /// join all server threads. In-flight requests complete first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection; it sees the
        // flag and exits, dropping the channel sender.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock workers parked in reads on live sessions.
        for (_, stream) in self.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    ctx: &NodeCtx,
    rx: &Mutex<mpsc::Receiver<(u64, TcpStream)>>,
    conns: &ConnRegistry,
    depth: usize,
) {
    loop {
        // Hold the lock only for the dequeue, not the whole session.
        let next = rx.lock().unwrap().recv();
        let (id, stream) = match next {
            Ok(pair) => pair,
            Err(_) => return, // sender gone: server is shutting down
        };
        if let Ok(handle) = stream.try_clone() {
            conns.lock().unwrap().insert(id, handle);
        }
        ctx.stats.active_connections.fetch_add(1, Ordering::Relaxed);
        let _ = serve_connection(ctx, stream, depth);
        ctx.stats.active_connections.fetch_sub(1, Ordering::Relaxed);
        conns.lock().unwrap().remove(&id);
    }
}

/// Send one response frame. Responses from the reader fast path and the
/// executor interleave on the same socket, so every frame goes through
/// this one lock. The frame lands in the shared `BufWriter` only —
/// flushing is coalesced: each half of the session flushes when it runs
/// out of immediate work.
fn respond(
    writer: &Mutex<BufWriter<TcpStream>>,
    stats: &ServerStats,
    seq: u64,
    response: &Response,
) -> io::Result<()> {
    respond_bytes(writer, stats, &response.encode(seq))
}

/// [`respond`] for an already-encoded payload.
fn respond_bytes(
    writer: &Mutex<BufWriter<TcpStream>>,
    stats: &ServerStats,
    out: &[u8],
) -> io::Result<()> {
    let mut w = writer.lock().unwrap();
    let written = write_frame(&mut *w, out)?;
    drop(w);
    stats.bytes_out.fetch_add(written, Ordering::Relaxed);
    Ok(())
}

/// Flush everything buffered on the shared writer.
fn flush_writer(writer: &Mutex<BufWriter<TcpStream>>) -> io::Result<()> {
    writer.lock().unwrap().flush()
}

/// Run one connection's session to completion. Any `Err` return or
/// protocol violation closes the connection; per-request operation
/// failures are reported in error frames and the session continues.
fn serve_connection(ctx: &NodeCtx, stream: TcpStream, depth: usize) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Mutex::new(BufWriter::new(stream));

    // Handshake: expect the client's magic, echo it back.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    {
        let mut w = writer.lock().unwrap();
        w.write_all(&MAGIC)?;
        w.flush()?;
    }

    // Writes queued on this connection but not yet committed. While
    // non-zero the reader must not answer reads from the cache: a read
    // pipelined after a write has to observe that write.
    let pending_writes = AtomicU64::new(0);
    // This connection's read floor (the `ReadFloor` opcode): reads wait
    // until the node has applied at least this epoch.
    let read_floor = AtomicU64::new(0);

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(depth);
    thread::scope(|scope| {
        let executor = thread::Builder::new()
            .name("ode-net-texec".into())
            .spawn_scoped(scope, {
                let writer = &writer;
                let pending_writes = &pending_writes;
                move || executor_loop(ctx, job_rx, writer, pending_writes)
            })
            .expect("spawn connection executor thread");
        let result = reader_loop(
            ctx,
            &mut reader,
            job_tx, // moved: dropping it on return stops the executor
            &writer,
            &pending_writes,
            &read_floor,
        );
        let _ = executor.join();
        result
    })
}

/// The session's frame-decoding half: pulls frames off the socket,
/// answers what it can immediately (`Ping`, `Stats`, cache hits,
/// protocol errors), and queues the rest for the executor in order.
fn reader_loop(
    ctx: &NodeCtx,
    reader: &mut BufReader<TcpStream>,
    job_tx: mpsc::SyncSender<Job>,
    writer: &Mutex<BufWriter<TcpStream>>,
    pending_writes: &AtomicU64,
    read_floor: &AtomicU64,
) -> io::Result<()> {
    let (db, stats, cache) = (&*ctx.db, &*ctx.stats, &*ctx.cache);
    // Both buffers live across iterations — frame payloads and
    // fast-path responses reuse one allocation each.
    let mut payload = Vec::new();
    let mut out = Vec::new();
    loop {
        // Coalesced flushing: once the read buffer is dry, the next
        // frame read can block, so everything answered since the last
        // flush (fast-path hits, pings) must reach the wire first.
        if reader.buffer().is_empty() {
            flush_writer(writer)?;
        }
        match read_frame_into(reader, &mut payload) {
            Ok(true) => {}
            Ok(false) => return Ok(()), // client hung up cleanly
            Err(NetError::Io(e)) => return Err(e),
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        };
        stats.bytes_in.fetch_add(
            payload.len() as u64 + frame_prefix_len(payload.len()),
            Ordering::Relaxed,
        );

        let (seq, request) = match Request::decode(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame was well delimited, so the stream is still
                // in sync: report under the request's sequence id (or 0
                // when even that is unreadable) and keep the session
                // alive.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = Request::decode_seq(&payload).unwrap_or(0);
                let response = Response::Err(RemoteError::BadRequest(e.to_string()));
                respond(writer, stats, seq, &response)?;
                continue;
            }
        };
        stats.requests[request.opcode() as usize].fetch_add(1, Ordering::Relaxed);

        match request {
            // Answered in place, possibly ahead of queued work.
            Request::Ping => respond(writer, stats, seq, &Response::Pong)?,
            Request::Stats => {
                respond(
                    writer,
                    stats,
                    seq,
                    &Response::Stats(stats.report(cache, db)),
                )?;
            }
            // The router's health probe: answered inline so a node busy
            // with queued work still reports its epoch promptly.
            Request::Epoch => {
                respond(writer, stats, seq, &Response::Count(db.snapshot_epoch()))?;
            }
            // Set here, in stream order: every read decoded after this
            // frame sees the new floor, exactly the read-your-writes
            // contract the router relies on.
            Request::ReadFloor { epoch } => {
                read_floor.store(epoch, Ordering::Release);
                respond(writer, stats, seq, &Response::Unit)?;
            }
            request if request.is_read() => {
                // The cache key is the request's operation bytes — the
                // payload minus its sequence varint, borrowed straight
                // off the frame (no re-encode).
                let op_bytes = &payload[seq_prefix_len(&payload)..];
                // Cache fast path, only when no write is queued ahead
                // on this connection (read-your-writes). The epoch is
                // sampled here, after the gate: any commit acknowledged
                // before this request was sent has already bumped it.
                let mut looked_up = false;
                let floor = read_floor.load(Ordering::Acquire);
                if pending_writes.load(Ordering::Acquire) == 0 && db.snapshot_epoch() >= floor {
                    if let Some(cached) = cache.lookup(db.snapshot_epoch(), op_bytes) {
                        // Wire-ready bytes: this caller's sequence id
                        // prefixed onto the stored encoded response.
                        out.clear();
                        ode_codec::varint::write_u64(&mut out, seq);
                        out.extend_from_slice(&cached);
                        respond_bytes(writer, stats, &out)?;
                        continue;
                    }
                    looked_up = true;
                }
                let job = Job {
                    seq,
                    request,
                    key: Some(op_bytes.to_vec()),
                    looked_up,
                    floor,
                };
                if job_tx.send(job).is_err() {
                    return Ok(()); // executor died (socket gone)
                }
            }
            request => {
                pending_writes.fetch_add(1, Ordering::AcqRel);
                let job = Job {
                    seq,
                    request,
                    key: None,
                    looked_up: false,
                    floor: read_floor.load(Ordering::Acquire),
                };
                if job_tx.send(job).is_err() {
                    return Ok(());
                }
            }
        }
    }
}

/// The session's executing half: drains the job queue in order, runs
/// each request against the database, and ships the response.
fn executor_loop(
    ctx: &NodeCtx,
    job_rx: mpsc::Receiver<Job>,
    writer: &Mutex<BufWriter<TcpStream>>,
    pending_writes: &AtomicU64,
) {
    let stats = &*ctx.stats;
    loop {
        let job = match job_rx.try_recv() {
            Ok(job) => Some(job),
            Err(mpsc::TryRecvError::Empty) => {
                // The queue is dry: everything answered so far must
                // reach the wire before this thread blocks.
                if flush_writer(writer).is_err() {
                    return;
                }
                job_rx.recv().ok()
            }
            Err(mpsc::TryRecvError::Disconnected) => None,
        };
        let Some(job) = job else {
            let _ = flush_writer(writer);
            return;
        };
        let (out, is_write) = execute_job(ctx, job);
        let sent = respond_bytes(writer, stats, &out);
        if is_write {
            // Cleared only now, after the write committed (or failed):
            // a reader that sees zero can safely serve cached reads.
            pending_writes.fetch_sub(1, Ordering::AcqRel);
        }
        if sent.is_err() {
            return; // socket gone; reader will notice too
        }
    }
}
