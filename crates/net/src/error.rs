//! Error types for the network layer.
//!
//! Two kinds of failure are kept distinct: [`NetError::Remote`] means
//! the server executed the request and the *operation* failed (an
//! `ode::Error` happened on the other side and was shipped back in an
//! error frame); [`NetError::Io`] / [`NetError::Protocol`] mean the
//! conversation itself broke down.

use std::fmt;
use std::io;

use ode::{Oid, TypeTag, Vid};

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;

/// An error from a client or server network operation.
#[derive(Debug)]
pub enum NetError {
    /// A socket read/write failed (includes timeouts and the peer
    /// closing the connection mid-exchange).
    Io(io::Error),
    /// The byte stream violated the wire protocol: bad handshake,
    /// oversized or truncated frame, unknown opcode, undecodable
    /// payload, or a response of the wrong shape for the request.
    Protocol(String),
    /// The server executed the operation and it failed; the remote
    /// error, reconstructed from the error frame.
    Remote(RemoteError),
}

/// A server-side operation failure, mirroring [`ode::Error`] closely
/// enough that clients can match on the failure kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// No object with this id exists on the server.
    UnknownObject(Oid),
    /// No version with this id exists on the server.
    UnknownVersion(Vid),
    /// The stored type tag did not match the one the request carried.
    TypeMismatch {
        /// Tag the request asked for.
        expected: TypeTag,
        /// Tag actually stored.
        found: TypeTag,
    },
    /// Refused to delete the last remaining version of an object.
    LastVersion(Vid),
    /// The server's storage layer failed; carries the rendered message
    /// (storage errors hold non-portable detail such as file paths).
    Storage(String),
    /// The server could not make sense of the request frame.
    BadRequest(String),
    /// The authority for this request is temporarily unreachable. Sent
    /// by a routing tier when the backend shard owning the request's
    /// object is down or still in its reconnect-backoff window; the
    /// operation was **not** executed (or, for requests already
    /// forwarded when the shard died, its outcome is unknown and it was
    /// not retried).
    Unavailable(String),
}

impl RemoteError {
    /// Stable wire code for this error kind.
    pub(crate) fn code(&self) -> u8 {
        match self {
            RemoteError::UnknownObject(_) => 1,
            RemoteError::UnknownVersion(_) => 2,
            RemoteError::TypeMismatch { .. } => 3,
            RemoteError::LastVersion(_) => 4,
            RemoteError::Storage(_) => 5,
            RemoteError::BadRequest(_) => 6,
            RemoteError::Unavailable(_) => 7,
        }
    }
}

impl From<&ode::Error> for RemoteError {
    fn from(e: &ode::Error) -> RemoteError {
        match e {
            ode::Error::UnknownObject(oid) => RemoteError::UnknownObject(*oid),
            ode::Error::UnknownVersion(vid) => RemoteError::UnknownVersion(*vid),
            ode::Error::TypeMismatch { expected, found } => RemoteError::TypeMismatch {
                expected: *expected,
                found: *found,
            },
            ode::Error::LastVersion(vid) => RemoteError::LastVersion(*vid),
            // The vids in a merge mismatch are shard-local; ship the
            // rendered message rather than ids the client can't map.
            ode::Error::MergeMismatch { .. } => RemoteError::BadRequest(e.to_string()),
            ode::Error::Storage(e) => RemoteError::Storage(e.to_string()),
            // A corrupt delta chain is a storage-integrity failure as
            // far as a remote caller is concerned.
            ode::Error::ChainCorrupt(msg) => RemoteError::Storage(format!("delta chain: {msg}")),
        }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            RemoteError::UnknownVersion(vid) => write!(f, "unknown version {vid}"),
            RemoteError::TypeMismatch { expected, found } => write!(
                f,
                "type mismatch: expected tag {:#018x}, found {:#018x}",
                expected.0, found.0
            ),
            RemoteError::LastVersion(vid) => write!(
                f,
                "{vid} is the last version of its object; pdelete the object instead"
            ),
            RemoteError::Storage(msg) => write!(f, "remote storage error: {msg}"),
            RemoteError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            RemoteError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote(e) => write!(f, "remote error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<ode_codec::DecodeError> for NetError {
    fn from(e: ode_codec::DecodeError) -> NetError {
        NetError::Protocol(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_error_mirrors_version_error() {
        let e = ode::Error::UnknownObject(Oid(7));
        assert_eq!(RemoteError::from(&e), RemoteError::UnknownObject(Oid(7)));
        let e = ode::Error::TypeMismatch {
            expected: TypeTag(1),
            found: TypeTag(2),
        };
        assert_eq!(
            RemoteError::from(&e),
            RemoteError::TypeMismatch {
                expected: TypeTag(1),
                found: TypeTag(2),
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let msg = NetError::Remote(RemoteError::LastVersion(Vid(3))).to_string();
        assert!(msg.contains("vid:3"));
    }
}
