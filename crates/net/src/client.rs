//! The blocking Ode client.
//!
//! [`OdeClient`] speaks the wire protocol over one reused TCP
//! connection and exposes typed methods mirroring the embedded
//! [`ode::Txn`] API: values are encoded/decoded locally with
//! [`ode_codec`], and references come back as [`ClientObjPtr`] /
//! [`ClientVersionPtr`] — the same generic-vs-specific distinction as
//! [`ode::ObjPtr`] / [`ode::VersionPtr`], carrying the raw [`Oid`] /
//! [`Vid`].
//!
//! The connection is a **pipeline**: every request carries a
//! client-assigned sequence id and the server may answer out of order,
//! so [`OdeClient::send`] / [`OdeClient::recv`] keep any number of
//! requests in flight, with [`OdeClient::pipeline`] batching a whole
//! group in one flush. The typed methods are all one-request
//! conveniences over the same machinery.
//!
//! The connection is lazily (re)established. Idempotent reads are
//! retried once on a fresh connection when the old one turns out to be
//! dead (a server restart, an idle-timeout close) — and only when
//! nothing else was in flight, so a retry can never reorder around
//! other requests; writes are never retried — an I/O error on a write
//! leaves its outcome unknown and is surfaced to the caller.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ode::{MergeConflict, MergePolicy, ObjPtr, OdeType, Oid, TypeTag, VersionPtr, Vid};
use ode_codec::{from_bytes, to_bytes};

use crate::error::{NetError, Result};
use crate::protocol::{
    read_frame, write_frame, DiffSummary, Request, Response, StatsReport, MAGIC,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket read timeout (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Retry an idempotent read once on a fresh connection after an
    /// I/O failure.
    pub retry_reads: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry_reads: true,
        }
    }
}

/// A generic (latest-version) reference held by a remote client.
///
/// The client-side analogue of [`ObjPtr`]: same identity, no borrow of
/// a local database.
pub struct ClientObjPtr<T> {
    oid: Oid,
    _marker: PhantomData<fn() -> T>,
}

/// A specific (pinned-version) reference held by a remote client; the
/// analogue of [`VersionPtr`].
pub struct ClientVersionPtr<T> {
    vid: Vid,
    _marker: PhantomData<fn() -> T>,
}

impl<T> ClientObjPtr<T> {
    /// Wrap a raw object id.
    pub fn from_oid(oid: Oid) -> ClientObjPtr<T> {
        ClientObjPtr {
            oid,
            _marker: PhantomData,
        }
    }

    /// The raw object id.
    pub fn oid(self) -> Oid {
        self.oid
    }

    /// The embedded-API pointer with the same identity (for code that
    /// also opens the database file directly).
    pub fn as_obj_ptr(self) -> ObjPtr<T> {
        ObjPtr::from_oid(self.oid)
    }
}

impl<T> ClientVersionPtr<T> {
    /// Wrap a raw version id.
    pub fn from_vid(vid: Vid) -> ClientVersionPtr<T> {
        ClientVersionPtr {
            vid,
            _marker: PhantomData,
        }
    }

    /// The raw version id.
    pub fn vid(self) -> Vid {
        self.vid
    }

    /// The embedded-API pointer with the same identity.
    pub fn as_version_ptr(self) -> VersionPtr<T> {
        VersionPtr::from_vid(self.vid)
    }
}

impl<T: OdeType> ClientObjPtr<T> {
    /// The stable type tag of `T`.
    pub fn tag() -> TypeTag {
        ObjPtr::<T>::tag()
    }
}

impl<T> From<ObjPtr<T>> for ClientObjPtr<T> {
    fn from(p: ObjPtr<T>) -> ClientObjPtr<T> {
        ClientObjPtr::from_oid(p.oid())
    }
}

impl<T> From<VersionPtr<T>> for ClientVersionPtr<T> {
    fn from(v: VersionPtr<T>) -> ClientVersionPtr<T> {
        ClientVersionPtr::from_vid(v.vid())
    }
}

// Manual impls: derive would wrongly require `T: Clone` etc.
impl<T> Clone for ClientObjPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ClientObjPtr<T> {}
impl<T> PartialEq for ClientObjPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid
    }
}
impl<T> Eq for ClientObjPtr<T> {}
impl<T> fmt::Debug for ClientObjPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientObjPtr({})", self.oid)
    }
}
impl<T> fmt::Display for ClientObjPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.oid)
    }
}
impl<T> Clone for ClientVersionPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ClientVersionPtr<T> {}
impl<T> PartialEq for ClientVersionPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.vid == other.vid
    }
}
impl<T> Eq for ClientVersionPtr<T> {}
impl<T> fmt::Debug for ClientVersionPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientVersionPtr({})", self.vid)
    }
}
impl<T> fmt::Display for ClientVersionPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vid)
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking client for one Ode server.
pub struct OdeClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Next sequence id to stamp on a request. Connection-independent:
    /// ids never repeat across reconnects, so a late response from a
    /// dead connection can never be confused with a live request's.
    next_seq: u64,
    /// Sequence ids sent but not yet answered.
    inflight: HashSet<u64>,
    /// Results that arrived while waiting for a different sequence id.
    /// An `Err` entry is a frame that arrived for this sequence id but
    /// would not decode — the error is surfaced to whoever collects
    /// that id, without poisoning the rest of the pipeline (frames are
    /// length-delimited, so one bad payload leaves the stream in sync).
    backlog: HashMap<u64, Result<Response>>,
}

impl OdeClient {
    /// Connect to a server (handshake included), so configuration
    /// errors surface here rather than on the first operation.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<OdeClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let mut client = OdeClient {
            addrs,
            config,
            conn: None,
            next_seq: 0,
            inflight: HashSet::new(),
            backlog: HashMap::new(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Drop the current connection; the next operation dials anew.
    /// Responses to anything still in flight are abandoned.
    pub fn disconnect(&mut self) {
        self.poison();
    }

    /// Forget the connection and everything that was in flight on it.
    fn poison(&mut self) {
        self.conn = None;
        self.inflight.clear();
        self.backlog.clear();
    }

    fn reconnect(&mut self) -> Result<()> {
        self.poison();
        let stream = TcpStream::connect(&self.addrs[..])?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        stream.set_nodelay(true).ok();
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        writer.write_all(&MAGIC)?;
        writer.flush()?;
        let mut echo = [0u8; 4];
        io::Read::read_exact(&mut reader, &mut echo)?;
        if echo != MAGIC {
            return Err(NetError::Protocol(
                "server did not echo the handshake magic".into(),
            ));
        }
        self.conn = Some(Conn { reader, writer });
        Ok(())
    }

    // -- pipelined core ------------------------------------------------------

    /// Send one request without waiting for its response; returns the
    /// sequence id to pass to [`OdeClient::recv_for`]. The request is
    /// buffered — it reaches the wire at the next `recv`/`recv_for`
    /// (which flush before reading), keeping a burst of sends in one
    /// write.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = request.encode(seq);
        let conn = self.conn.as_mut().expect("connection just established");
        match write_frame(&mut conn.writer, &payload) {
            Ok(_) => {
                self.inflight.insert(seq);
                Ok(seq)
            }
            Err(e) => {
                self.poison();
                Err(NetError::Io(e))
            }
        }
    }

    /// Receive the next response the server sends (order unspecified —
    /// responses backlogged while waiting for other sequence ids are
    /// drained first). Errors when nothing is in flight. A frame that
    /// arrived for a known sequence id but would not decode surfaces
    /// here as `Err` after removing that id from flight; other in-flight
    /// requests are unaffected.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        if let Some(&seq) = self.backlog.keys().next() {
            let result = self.backlog.remove(&seq).expect("key just seen");
            return result.map(|response| (seq, response));
        }
        let (seq, result) = self.read_one()?;
        result.map(|response| (seq, response))
    }

    /// Receive the response for one specific sequence id, buffering any
    /// other responses that arrive first. An undecodable frame for a
    /// *different* in-flight id is backlogged as that id's error; only
    /// `seq`'s own bad frame errors this call.
    pub fn recv_for(&mut self, seq: u64) -> Result<Response> {
        loop {
            if let Some(result) = self.backlog.remove(&seq) {
                return result;
            }
            if !self.inflight.contains(&seq) {
                return Err(NetError::Protocol(format!(
                    "sequence id {seq} is not in flight"
                )));
            }
            let (got, result) = self.read_one()?;
            if got == seq {
                return result;
            }
            self.backlog.insert(got, result);
        }
    }

    /// Start a batch of pipelined requests on this connection.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline {
            client: self,
            seqs: Vec::new(),
        }
    }

    /// Flush buffered requests and read one frame off the socket.
    ///
    /// Stream-level failures (I/O, a frame whose sequence id is
    /// unknown or unreadable) poison the connection — everything in
    /// flight is lost. A well-delimited frame that decodes its sequence
    /// id but not its payload is a *per-request* failure: the stream is
    /// still in sync, so only that request's result becomes the decode
    /// error and the rest of the pipeline proceeds.
    fn read_one(&mut self) -> Result<(u64, Result<Response>)> {
        if self.inflight.is_empty() {
            return Err(NetError::Protocol("no requests in flight".into()));
        }
        let conn = self
            .conn
            .as_mut()
            .expect("in-flight requests imply a connection");
        let frame = (|| {
            conn.writer.flush()?;
            match read_frame(&mut conn.reader)? {
                Some(frame) => Ok(frame),
                None => Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))),
            }
        })();
        let frame = match frame {
            Ok(frame) => frame,
            Err(e) => {
                self.poison();
                return Err(e);
            }
        };
        match Response::decode(&frame) {
            Ok((seq, response)) => {
                if !self.inflight.remove(&seq) {
                    self.poison();
                    return Err(NetError::Protocol(format!(
                        "response for unknown sequence id {seq}"
                    )));
                }
                Ok((seq, Ok(response)))
            }
            Err(e) => match Response::decode_seq(&frame) {
                Ok(seq) if self.inflight.remove(&seq) => Ok((seq, Err(e))),
                _ => {
                    self.poison();
                    Err(e)
                }
            },
        }
    }

    fn call_once(&mut self, request: &Request) -> Result<Response> {
        let seq = self.send(request)?;
        self.recv_for(seq)
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        // Only an idle connection may retry: with other requests in
        // flight a reconnect would abandon them, and the retry could
        // slip past a write queued ahead of it.
        let idle = self.inflight.is_empty() && self.backlog.is_empty();
        match self.call_once(request) {
            Err(NetError::Io(_)) if idle && request.is_read() && self.config.retry_reads => {
                self.call_once(request)
            }
            other => other,
        }
    }

    // -- liveness & stats ---------------------------------------------------

    /// Round-trip a ping.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Fetch the server's statistics counters.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    // -- replication role ---------------------------------------------------

    /// The node's applied commit epoch — the freshness token a reader
    /// pins with [`OdeClient::read_floor`] on another connection.
    /// Answered inline by the server (like `Ping`), so it doubles as a
    /// health probe that stays prompt under load.
    pub fn epoch(&mut self) -> Result<u64> {
        match self.call(&Request::Epoch)? {
            Response::Count(epoch) => Ok(epoch),
            other => Err(unexpected("count", &other)),
        }
    }

    /// Pin this connection's reads at `epoch`: the node holds each
    /// subsequent read until it has applied at least that epoch, and
    /// fails it `Unavailable` (never answers from older state) if it
    /// stays behind past the server's floor timeout.
    pub fn read_floor(&mut self, epoch: u64) -> Result<()> {
        match self.call(&Request::ReadFloor { epoch })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }

    /// Promote the node from replica to primary (driven failover):
    /// fences the unapplied WAL tail and starts accepting writes.
    /// Idempotent — promoting a primary is a no-op success.
    pub fn promote(&mut self) -> Result<()> {
        match self.call(&Request::Promote)? {
            Response::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }

    // -- typed operations (mirror ode::Txn) ---------------------------------

    /// `pnew`: create a persistent object on the server.
    pub fn pnew<T: OdeType>(&mut self, value: &T) -> Result<ClientObjPtr<T>> {
        let response = self.call(&Request::Pnew {
            tag: ObjPtr::<T>::tag(),
            body: to_bytes(value),
        })?;
        match response {
            Response::Created { oid, .. } => Ok(ClientObjPtr::from_oid(oid)),
            other => Err(unexpected("created", &other)),
        }
    }

    /// Dereference a generic reference: the latest version's value plus
    /// a pinned pointer to the version it came from.
    pub fn deref<T: OdeType>(&mut self, ptr: &ClientObjPtr<T>) -> Result<(T, ClientVersionPtr<T>)> {
        let response = self.call(&Request::Deref {
            oid: ptr.oid,
            tag: ObjPtr::<T>::tag(),
        })?;
        match response {
            Response::Body { vid, bytes } => {
                Ok((from_bytes(&bytes)?, ClientVersionPtr::from_vid(vid)))
            }
            other => Err(unexpected("body", &other)),
        }
    }

    /// Dereference a specific reference.
    pub fn deref_v<T: OdeType>(&mut self, vp: &ClientVersionPtr<T>) -> Result<T> {
        let response = self.call(&Request::DerefVersion {
            vid: vp.vid,
            tag: VersionPtr::<T>::tag(),
        })?;
        match response {
            Response::Body { bytes, .. } => Ok(from_bytes(&bytes)?),
            other => Err(unexpected("body", &other)),
        }
    }

    /// Replace the latest version's state; returns the version written.
    pub fn put<T: OdeType>(
        &mut self,
        ptr: &ClientObjPtr<T>,
        value: &T,
    ) -> Result<ClientVersionPtr<T>> {
        let response = self.call(&Request::Update {
            oid: ptr.oid,
            tag: ObjPtr::<T>::tag(),
            body: to_bytes(value),
        })?;
        match response {
            Response::Version(vid) => Ok(ClientVersionPtr::from_vid(vid)),
            other => Err(unexpected("version", &other)),
        }
    }

    /// Replace a specific version's state.
    pub fn put_version<T: OdeType>(&mut self, vp: &ClientVersionPtr<T>, value: &T) -> Result<()> {
        let response = self.call(&Request::UpdateVersion {
            vid: vp.vid,
            tag: VersionPtr::<T>::tag(),
            body: to_bytes(value),
        })?;
        match response {
            Response::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }

    /// `newversion(p)`: derive a new version from the object's latest.
    pub fn newversion<T: OdeType>(&mut self, ptr: &ClientObjPtr<T>) -> Result<ClientVersionPtr<T>> {
        match self.call(&Request::NewVersion { oid: ptr.oid })? {
            Response::Version(vid) => Ok(ClientVersionPtr::from_vid(vid)),
            other => Err(unexpected("version", &other)),
        }
    }

    /// `newversion(vp)`: derive from a specific base version.
    pub fn newversion_from<T: OdeType>(
        &mut self,
        vp: &ClientVersionPtr<T>,
    ) -> Result<ClientVersionPtr<T>> {
        match self.call(&Request::NewVersionFrom { vid: vp.vid })? {
            Response::Version(vid) => Ok(ClientVersionPtr::from_vid(vid)),
            other => Err(unexpected("version", &other)),
        }
    }

    /// `pdelete p`: delete the object and all its versions.
    pub fn pdelete<T: OdeType>(&mut self, ptr: ClientObjPtr<T>) -> Result<()> {
        match self.call(&Request::Pdelete { oid: ptr.oid })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }

    /// `pdelete vp`: delete one specific version.
    pub fn pdelete_version<T: OdeType>(&mut self, vp: ClientVersionPtr<T>) -> Result<()> {
        match self.call(&Request::PdeleteVersion { vid: vp.vid })? {
            Response::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }

    /// `Dprevious`: the version `vp` was derived from.
    pub fn dprevious<T: OdeType>(
        &mut self,
        vp: &ClientVersionPtr<T>,
    ) -> Result<Option<ClientVersionPtr<T>>> {
        self.maybe_version(&Request::Dprevious { vid: vp.vid })
    }

    /// `Dnext`: versions derived from `vp`, in creation order.
    pub fn dnext<T: OdeType>(
        &mut self,
        vp: &ClientVersionPtr<T>,
    ) -> Result<Vec<ClientVersionPtr<T>>> {
        self.versions(&Request::Dnext { vid: vp.vid })
    }

    /// `Tprevious`: the version created immediately before `vp`.
    pub fn tprevious<T: OdeType>(
        &mut self,
        vp: &ClientVersionPtr<T>,
    ) -> Result<Option<ClientVersionPtr<T>>> {
        self.maybe_version(&Request::Tprevious { vid: vp.vid })
    }

    /// `Tnext`: the version created immediately after `vp`.
    pub fn tnext<T: OdeType>(
        &mut self,
        vp: &ClientVersionPtr<T>,
    ) -> Result<Option<ClientVersionPtr<T>>> {
        self.maybe_version(&Request::Tnext { vid: vp.vid })
    }

    /// All versions of an object in temporal (creation) order.
    pub fn version_history<T: OdeType>(
        &mut self,
        ptr: &ClientObjPtr<T>,
    ) -> Result<Vec<ClientVersionPtr<T>>> {
        self.versions(&Request::VersionHistory { oid: ptr.oid })
    }

    /// Pin the object's current latest version.
    pub fn current_version<T: OdeType>(
        &mut self,
        ptr: &ClientObjPtr<T>,
    ) -> Result<ClientVersionPtr<T>> {
        match self.call(&Request::CurrentVersion { oid: ptr.oid })? {
            Response::Version(vid) => Ok(ClientVersionPtr::from_vid(vid)),
            other => Err(unexpected("version", &other)),
        }
    }

    /// The object a version belongs to.
    pub fn object_of<T: OdeType>(&mut self, vp: &ClientVersionPtr<T>) -> Result<ClientObjPtr<T>> {
        match self.call(&Request::ObjectOf { vid: vp.vid })? {
            Response::Object(oid) => Ok(ClientObjPtr::from_oid(oid)),
            other => Err(unexpected("object", &other)),
        }
    }

    /// Extent query: every live object of type `T` on the server.
    pub fn objects<T: OdeType>(&mut self) -> Result<Vec<ClientObjPtr<T>>> {
        match self.call(&Request::Objects {
            tag: ObjPtr::<T>::tag(),
        })? {
            Response::Objects(oids) => Ok(oids.into_iter().map(ClientObjPtr::from_oid).collect()),
            other => Err(unexpected("objects", &other)),
        }
    }

    /// A page of the type's extent: up to `limit` objects with ids
    /// `>= after` (pass [`Oid::NULL`] to start).
    pub fn objects_page<T: OdeType>(
        &mut self,
        after: Oid,
        limit: u64,
    ) -> Result<Vec<ClientObjPtr<T>>> {
        match self.call(&Request::ObjectsPage {
            tag: ObjPtr::<T>::tag(),
            after,
            limit,
        })? {
            Response::Objects(oids) => Ok(oids.into_iter().map(ClientObjPtr::from_oid).collect()),
            other => Err(unexpected("objects", &other)),
        }
    }

    /// Number of live versions of an object.
    pub fn version_count<T: OdeType>(&mut self, ptr: &ClientObjPtr<T>) -> Result<u64> {
        match self.call(&Request::VersionCount { oid: ptr.oid })? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected("count", &other)),
        }
    }

    /// Whether the object still exists.
    pub fn exists<T: OdeType>(&mut self, ptr: &ClientObjPtr<T>) -> Result<bool> {
        match self.call(&Request::Exists { oid: ptr.oid })? {
            Response::Flag(b) => Ok(b),
            other => Err(unexpected("flag", &other)),
        }
    }

    /// Whether the version still exists.
    pub fn version_exists<T: OdeType>(&mut self, vp: &ClientVersionPtr<T>) -> Result<bool> {
        match self.call(&Request::VersionExists { vid: vp.vid })? {
            Response::Flag(b) => Ok(b),
            other => Err(unexpected("flag", &other)),
        }
    }

    /// All versions of an object whose global stamp lies in
    /// `from..=to`, oldest first — served from the object's delta chain
    /// when it has one, without materializing any bodies.
    pub fn history_between<T: OdeType>(
        &mut self,
        ptr: &ClientObjPtr<T>,
        from: u64,
        to: u64,
    ) -> Result<Vec<ClientVersionPtr<T>>> {
        self.versions(&Request::HistoryBetween {
            oid: ptr.oid,
            from,
            to,
        })
    }

    /// Summary of the byte difference between two versions of the same
    /// object (how much changed, and how compactly it deltas).
    pub fn diff_versions<T: OdeType>(
        &mut self,
        from: &ClientVersionPtr<T>,
        to: &ClientVersionPtr<T>,
    ) -> Result<DiffSummary> {
        match self.call(&Request::DiffVersions {
            from: from.vid,
            to: to.vid,
        })? {
            Response::Diff(d) => Ok(d),
            other => Err(unexpected("diff", &other)),
        }
    }

    /// Three-way merge two versions of one object on the server; the
    /// result (when the policy resolves) is checked in as a new version
    /// with both parents recorded. Returns the new version, if any,
    /// plus every conflicting byte range.
    pub fn merge<T: OdeType>(
        &mut self,
        a: &ClientVersionPtr<T>,
        b: &ClientVersionPtr<T>,
        policy: MergePolicy,
    ) -> Result<(Option<ClientVersionPtr<T>>, Vec<MergeConflict>)> {
        let (vid, conflicts) = self.merge_raw(a.vid, b.vid, policy)?;
        Ok((vid.map(ClientVersionPtr::from_vid), conflicts))
    }

    // -- raw (type-erased) operations ---------------------------------------

    /// Type-erased [`merge`](Self::merge).
    pub fn merge_raw(
        &mut self,
        a: Vid,
        b: Vid,
        policy: MergePolicy,
    ) -> Result<(Option<Vid>, Vec<MergeConflict>)> {
        match self.call(&Request::Merge { a, b, policy })? {
            Response::Merged { vid, conflicts } => Ok((vid, conflicts)),
            other => Err(unexpected("merged", &other)),
        }
    }

    /// Type-erased `pnew` from an already-encoded body.
    pub fn pnew_raw(&mut self, tag: TypeTag, body: Vec<u8>) -> Result<(Oid, Vid)> {
        match self.call(&Request::Pnew { tag, body })? {
            Response::Created { oid, vid } => Ok((oid, vid)),
            other => Err(unexpected("created", &other)),
        }
    }

    /// Type-erased `deref`: the latest version id and encoded body.
    pub fn deref_raw(&mut self, oid: Oid, tag: TypeTag) -> Result<(Vid, Vec<u8>)> {
        match self.call(&Request::Deref { oid, tag })? {
            Response::Body { vid, bytes } => Ok((vid, bytes)),
            other => Err(unexpected("body", &other)),
        }
    }

    fn maybe_version<T>(&mut self, request: &Request) -> Result<Option<ClientVersionPtr<T>>> {
        match self.call(request)? {
            Response::MaybeVersion(vid) => Ok(vid.map(ClientVersionPtr::from_vid)),
            other => Err(unexpected("maybe_version", &other)),
        }
    }

    fn versions<T>(&mut self, request: &Request) -> Result<Vec<ClientVersionPtr<T>>> {
        match self.call(request)? {
            Response::Versions(vids) => {
                Ok(vids.into_iter().map(ClientVersionPtr::from_vid).collect())
            }
            other => Err(unexpected("versions", &other)),
        }
    }
}

/// A batch of requests kept in flight together on one [`OdeClient`]
/// connection.
///
/// [`push`](Pipeline::push) buffers requests without waiting;
/// [`run`](Pipeline::run) flushes them as one write and collects every
/// response, returned in **request order** regardless of the order the
/// server answered. Nothing in a pipeline is ever retried — the first
/// failure surfaces immediately and abandons the rest of the batch
/// (their outcomes, like any failed write's, are unknown).
/// [`run_each`](Pipeline::run_each) collects a result *per request*
/// instead, so one bad response frame cannot poison its siblings.
pub struct Pipeline<'a> {
    client: &'a mut OdeClient,
    seqs: Vec<u64>,
}

impl Pipeline<'_> {
    /// Queue one request; returns its sequence id.
    pub fn push(&mut self, request: &Request) -> Result<u64> {
        let seq = self.client.send(request)?;
        self.seqs.push(seq);
        Ok(seq)
    }

    /// Number of requests queued so far.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the batch is still empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Collect every queued response, in the order the requests were
    /// pushed. The first failure wins and the remaining results are
    /// dropped (a response that would not decode only fails its own
    /// request — the connection survives, and siblings stay
    /// collectable via [`OdeClient::recv_for`] when collected through
    /// [`Pipeline::run_each`] instead).
    pub fn run(self) -> Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(self.seqs.len());
        for seq in self.seqs {
            responses.push(self.client.recv_for(seq)?);
        }
        Ok(responses)
    }

    /// Collect a result per queued request, in the order the requests
    /// were pushed. One request's failure (an error frame that would
    /// not decode, a response of the wrong shape) is confined to its
    /// own slot; siblings before *and after* it in the batch still get
    /// their responses. Connection-level failures (the socket dying
    /// mid-batch) still fail every not-yet-collected slot, because
    /// their responses can no longer arrive.
    pub fn run_each(self) -> Vec<Result<Response>> {
        let Pipeline { client, seqs } = self;
        seqs.into_iter().map(|seq| client.recv_for(seq)).collect()
    }
}

/// Fold an error frame into [`NetError::Remote`]; anything else of the
/// wrong shape is a protocol violation.
fn unexpected(wanted: &str, got: &Response) -> NetError {
    match got {
        Response::Err(e) => NetError::Remote(e.clone()),
        other => NetError::Protocol(format!(
            "expected a {wanted} response, got {}",
            other.kind_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    #[test]
    fn client_pointers_are_copy_eq() {
        let p: ClientObjPtr<Dummy> = ClientObjPtr::from_oid(Oid(3));
        let q = p;
        assert_eq!(p, q);
        assert_eq!(p.oid(), Oid(3));
        let v: ClientVersionPtr<Dummy> = ClientVersionPtr::from_vid(Vid(4));
        assert_eq!(v, v);
        assert_eq!(v.as_version_ptr().vid(), Vid(4));
    }

    #[test]
    fn pointers_convert_to_and_from_embedded_api() {
        let p: ObjPtr<Dummy> = ObjPtr::from_oid(Oid(7));
        let c: ClientObjPtr<Dummy> = p.into();
        assert_eq!(c.as_obj_ptr(), p);
    }
}
