//! The Ode TCP server.
//!
//! [`OdeServer`] wraps an [`Arc<Database>`] and serves the wire
//! protocol over `std::net`: an accept-loop thread hands connections to
//! a bounded pool of worker threads; each worker runs one connection's
//! session at a time. Read requests run on [`Database::snapshot`]s;
//! write requests each run in their own [`Database::begin`] transaction
//! committed before the response frame is sent (so a successful reply
//! means the change is durable to the WAL).
//!
//! Each session is a **pipeline**: the connection's worker splits into
//! a reader that decodes frames ahead into a bounded queue and an
//! executor that drains it, so the client can keep many requests in
//! flight. Responses carry the request's sequence id and may leave out
//! of order — the reader answers `Ping`, `Stats`, and snapshot-cache
//! hits immediately, ahead of queued work. The cache fast path is
//! gated on the connection having no write queued, which preserves
//! read-your-writes per connection; cross-connection consistency is
//! commit-granular via the database's snapshot epoch (see
//! [`crate::cache`]).
//!
//! Ordering is **per connection only**: since the storage engine's
//! snapshots are lock-free with respect to writers, one connection's
//! in-flight write transaction never queues another connection's reads
//! — each executor opens its snapshot immediately and reads the last
//! published commit. The `Stats` response's storage counters
//! ([`StorageCounters`]) expose the engine's reader/writer lock waits
//! and group-commit batching for exactly this behavior.
//!
//! Shutdown is graceful and prompt: the listener is woken, every live
//! connection's socket is shut down (unblocking worker reads), and all
//! threads are joined. In-flight requests finish; their connections
//! then close.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use ode::Database;

use crate::cache::SnapshotCache;
use crate::error::RemoteError;
use crate::protocol::{
    read_frame_into, write_frame, Opcode, Request, Response, StatsReport, StorageCounters, MAGIC,
    OPCODE_COUNT,
};
use crate::NetError;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the maximum number of concurrently served
    /// connections (further accepted connections wait in line).
    pub workers: usize,
    /// Per-connection decode-ahead depth: how many decoded requests may
    /// wait in the executor queue before the reader stops pulling
    /// frames off the socket (backpressure).
    pub pipeline_depth: usize,
    /// Snapshot-cache capacity in responses per epoch; `0` disables the
    /// cache entirely.
    pub cache_entries: usize,
    /// Start in replica mode: writes are refused with `Unavailable`
    /// until a `Promote` request flips the node to primary.
    pub replica: bool,
    /// How long a read pinned by `ReadFloor` may wait for the node to
    /// apply the floor epoch before failing with `Unavailable`.
    pub read_floor_timeout: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 16);
        ServerConfig {
            workers,
            pipeline_depth: 64,
            cache_entries: 4096,
            replica: false,
            read_floor_timeout: std::time::Duration::from_secs(5),
        }
    }
}

/// Replication wiring, injected by whatever owns the node's shipping
/// role (the cluster harness, or a standalone deployment script). The
/// server itself stays ignorant of the replication transport.
#[derive(Clone, Default)]
pub struct ServerHooks {
    /// Called after every committed write with the database's commit
    /// epoch: a primary's semi-synchronous barrier (block until a
    /// replica acked the epoch). The response frame is not sent until
    /// this returns.
    pub commit_wait: Option<Arc<dyn Fn(u64) + Send + Sync>>,
    /// Called when a `Promote` request arrives on a replica, *instead
    /// of* the default `Database::promote_to_primary` — so the owner
    /// can also stop its tailing `ReplicaNode`, start a hub, etc.
    /// Returning `Err` keeps the node a replica.
    pub promote: Option<Arc<dyn Fn() -> std::result::Result<(), String> + Send + Sync>>,
}

impl std::fmt::Debug for ServerHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHooks")
            .field("commit_wait", &self.commit_wait.is_some())
            .field("promote", &self.promote.is_some())
            .finish()
    }
}

/// Lifetime counters, all monotone except `active_connections`.
#[derive(Default)]
struct ServerStats {
    active_connections: AtomicU64,
    total_connections: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    protocol_errors: AtomicU64,
    op_errors: AtomicU64,
    requests: [AtomicU64; OPCODE_COUNT],
}

impl ServerStats {
    fn report(&self, cache: &SnapshotCache, db: &Database) -> StatsReport {
        let storage = db.storage_stats();
        let requests = Opcode::ALL
            .iter()
            .filter_map(|&op| {
                let n = self.requests[op as usize].load(Ordering::Relaxed);
                (n != 0).then_some((op, n))
            })
            .collect();
        StatsReport {
            active_connections: self.active_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            snapshot_hits: cache.hits(),
            snapshot_misses: cache.misses(),
            requests,
            storage: StorageCounters {
                read_txs: storage.read_txs,
                write_txs: storage.write_txs,
                reader_waits: storage.reader_waits,
                reader_wait_nanos: storage.reader_wait_nanos,
                writer_waits: storage.writer_waits,
                writer_wait_nanos: storage.writer_wait_nanos,
                wal_syncs: storage.wal_syncs,
                group_syncs: storage.group_syncs,
                group_commit_txns: storage.group_commit_txns,
                group_batch_max: storage.group_batch_max,
                bytes_shipped: storage.bytes_shipped,
                replica_lag_epochs: storage.replica_lag_epochs,
                failovers: storage.failovers,
                write_conflicts: storage.write_conflicts,
                write_retries: storage.write_retries,
            },
        }
    }
}

/// Live connections by id, kept as `try_clone`d handles so shutdown can
/// unblock a worker parked in a socket read.
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Everything a connection needs about the node it runs on, shared by
/// all workers: the database, counters, cache, and the node's
/// replication role.
struct NodeCtx {
    db: Arc<Database>,
    stats: Arc<ServerStats>,
    cache: Arc<SnapshotCache>,
    /// `true` while this node is a replica (writes refused). Flipped to
    /// `false` by a successful `Promote`.
    replica: AtomicBool,
    hooks: ServerHooks,
    floor_timeout: std::time::Duration,
}

/// A running Ode network server.
pub struct OdeServer {
    addr: SocketAddr,
    ctx: Arc<NodeCtx>,
    shutdown: Arc<AtomicBool>,
    conns: ConnRegistry,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OdeServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `db`.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<OdeServer> {
        OdeServer::bind_with(db, addr, config, ServerHooks::default())
    }

    /// [`OdeServer::bind`] with replication hooks (commit barrier,
    /// promote handler).
    pub fn bind_with(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        hooks: ServerHooks,
    ) -> io::Result<OdeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let cache = Arc::new(SnapshotCache::new(config.cache_entries));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let depth = config.pipeline_depth.max(1);
        let ctx = Arc::new(NodeCtx {
            db,
            stats: Arc::clone(&stats),
            cache,
            replica: AtomicBool::new(config.replica),
            hooks,
            floor_timeout: config.read_floor_timeout,
        });

        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&conn_rx);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name(format!("ode-net-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx, &conns, depth))
                    .expect("spawn server worker thread")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("ode-net-accept".into())
                .spawn(move || {
                    let mut next_id = 0u64;
                    // conn_tx moves in here; dropping it on exit stops
                    // the workers once the queue drains.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        stats.total_connections.fetch_add(1, Ordering::Relaxed);
                        next_id += 1;
                        if conn_tx.send((next_id, stream)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn server accept thread")
        };

        Ok(OdeServer {
            addr,
            ctx,
            shutdown,
            conns,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether this node currently refuses writes (replica role).
    pub fn is_replica(&self) -> bool {
        self.ctx.replica.load(Ordering::Acquire)
    }

    /// A snapshot of the server's counters (the same data the `Stats`
    /// opcode serves remotely).
    pub fn stats(&self) -> StatsReport {
        self.ctx.stats.report(&self.ctx.cache, &self.ctx.db)
    }

    /// Stop accepting, unblock and close every live connection, and
    /// join all server threads. In-flight requests complete first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection; it sees the
        // flag and exits, dropping the channel sender.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock workers parked in reads on live sessions.
        for (_, stream) in self.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OdeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    ctx: &NodeCtx,
    rx: &Mutex<mpsc::Receiver<(u64, TcpStream)>>,
    conns: &ConnRegistry,
    depth: usize,
) {
    loop {
        // Hold the lock only for the dequeue, not the whole session.
        let next = rx.lock().unwrap().recv();
        let (id, stream) = match next {
            Ok(pair) => pair,
            Err(_) => return, // sender gone: server is shutting down
        };
        if let Ok(handle) = stream.try_clone() {
            conns.lock().unwrap().insert(id, handle);
        }
        ctx.stats.active_connections.fetch_add(1, Ordering::Relaxed);
        let _ = serve_connection(ctx, stream, depth);
        ctx.stats.active_connections.fetch_sub(1, Ordering::Relaxed);
        conns.lock().unwrap().remove(&id);
    }
}

/// One decoded request waiting for the connection's executor.
struct Job {
    seq: u64,
    request: Request,
    /// Cache key (the request's operation bytes, i.e. the payload
    /// after its sequence varint) — `Some` for reads.
    key: Option<Vec<u8>>,
    /// Whether the reader already consulted the cache and missed; the
    /// executor then skips its own lookup so each request counts one
    /// hit or one miss, never both.
    looked_up: bool,
}

/// Send one response frame. Responses from the reader fast path and the
/// executor interleave on the same socket, so every frame goes through
/// this one lock. The frame lands in the shared `BufWriter` only —
/// flushing is coalesced: each half of the session flushes when it runs
/// out of immediate work (the reader before a socket read can block,
/// the executor when its queue drains), so a pipelined batch costs a
/// handful of write syscalls instead of one per response.
fn respond(
    writer: &Mutex<BufWriter<TcpStream>>,
    stats: &ServerStats,
    seq: u64,
    response: &Response,
) -> io::Result<()> {
    respond_bytes(writer, stats, &response.encode(seq))
}

/// [`respond`] for an already-encoded payload.
fn respond_bytes(
    writer: &Mutex<BufWriter<TcpStream>>,
    stats: &ServerStats,
    out: &[u8],
) -> io::Result<()> {
    let mut w = writer.lock().unwrap();
    let written = write_frame(&mut *w, out)?;
    drop(w);
    stats.bytes_out.fetch_add(written, Ordering::Relaxed);
    Ok(())
}

/// Flush everything buffered on the shared writer.
fn flush_writer(writer: &Mutex<BufWriter<TcpStream>>) -> io::Result<()> {
    writer.lock().unwrap().flush()
}

/// Length in bytes of the sequence-id varint a frame payload starts
/// with — the *actual* length off the wire, so the operation bytes
/// after it are exact even for non-canonical encodings.
fn seq_prefix_len(payload: &[u8]) -> usize {
    payload.iter().take_while(|b| **b & 0x80 != 0).count() + 1
}

/// Run one connection's session to completion. Any `Err` return or
/// protocol violation closes the connection; per-request operation
/// failures are reported in error frames and the session continues.
fn serve_connection(ctx: &NodeCtx, stream: TcpStream, depth: usize) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Mutex::new(BufWriter::new(stream));

    // Handshake: expect the client's magic, echo it back.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    {
        let mut w = writer.lock().unwrap();
        w.write_all(&MAGIC)?;
        w.flush()?;
    }

    // Writes queued on this connection but not yet committed. While
    // non-zero the reader must not answer reads from the cache: a read
    // pipelined after a write has to observe that write.
    let pending_writes = AtomicU64::new(0);
    // This connection's read floor (the `ReadFloor` opcode): reads wait
    // until the node has applied at least this epoch. Per-connection,
    // because it encodes one client session's read-your-writes horizon.
    let read_floor = AtomicU64::new(0);

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(depth);
    thread::scope(|scope| {
        let executor = thread::Builder::new()
            .name("ode-net-exec".into())
            .spawn_scoped(scope, {
                let writer = &writer;
                let pending_writes = &pending_writes;
                let read_floor = &read_floor;
                move || executor_loop(ctx, job_rx, writer, pending_writes, read_floor)
            })
            .expect("spawn connection executor thread");
        let result = reader_loop(
            ctx,
            &mut reader,
            job_tx, // moved: dropping it on return stops the executor
            &writer,
            &pending_writes,
            &read_floor,
        );
        let _ = executor.join();
        result
    })
}

/// The session's frame-decoding half: pulls frames off the socket,
/// answers what it can immediately (`Ping`, `Stats`, cache hits,
/// protocol errors), and queues the rest for the executor in order.
fn reader_loop(
    ctx: &NodeCtx,
    reader: &mut BufReader<TcpStream>,
    job_tx: mpsc::SyncSender<Job>,
    writer: &Mutex<BufWriter<TcpStream>>,
    pending_writes: &AtomicU64,
    read_floor: &AtomicU64,
) -> io::Result<()> {
    let (db, stats, cache) = (&*ctx.db, &*ctx.stats, &*ctx.cache);
    // Both buffers live across iterations — frame payloads and
    // fast-path responses reuse one allocation each.
    let mut payload = Vec::new();
    let mut out = Vec::new();
    loop {
        // Coalesced flushing: once the read buffer is dry, the next
        // frame read can block, so everything answered since the last
        // flush (fast-path hits, pings) must reach the wire first.
        if reader.buffer().is_empty() {
            flush_writer(writer)?;
        }
        match read_frame_into(reader, &mut payload) {
            Ok(true) => {}
            Ok(false) => return Ok(()), // client hung up cleanly
            Err(NetError::Io(e)) => return Err(e),
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        };
        stats.bytes_in.fetch_add(
            payload.len() as u64 + frame_prefix_len(payload.len()),
            Ordering::Relaxed,
        );

        let (seq, request) = match Request::decode(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame was well delimited, so the stream is still
                // in sync: report under the request's sequence id (or 0
                // when even that is unreadable) and keep the session
                // alive.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = Request::decode_seq(&payload).unwrap_or(0);
                let response = Response::Err(RemoteError::BadRequest(e.to_string()));
                respond(writer, stats, seq, &response)?;
                continue;
            }
        };
        stats.requests[request.opcode() as usize].fetch_add(1, Ordering::Relaxed);

        match request {
            // Answered in place, possibly ahead of queued work.
            Request::Ping => respond(writer, stats, seq, &Response::Pong)?,
            Request::Stats => {
                respond(
                    writer,
                    stats,
                    seq,
                    &Response::Stats(stats.report(cache, db)),
                )?;
            }
            // The router's health probe: answered inline so a node busy
            // with queued work still reports its epoch promptly.
            Request::Epoch => {
                respond(writer, stats, seq, &Response::Count(db.snapshot_epoch()))?;
            }
            // Set here, in stream order: every read decoded after this
            // frame sees the new floor, exactly the read-your-writes
            // contract the router relies on.
            Request::ReadFloor { epoch } => {
                read_floor.store(epoch, Ordering::Release);
                respond(writer, stats, seq, &Response::Unit)?;
            }
            request if request.is_read() => {
                // The cache key is the request's operation bytes — the
                // payload minus its sequence varint, borrowed straight
                // off the frame (no re-encode).
                let op_bytes = &payload[seq_prefix_len(&payload)..];
                // Cache fast path, only when no write is queued ahead
                // on this connection (read-your-writes). The epoch is
                // sampled here, after the gate: any commit acknowledged
                // before this request was sent has already bumped it.
                let mut looked_up = false;
                let floor = read_floor.load(Ordering::Acquire);
                if pending_writes.load(Ordering::Acquire) == 0 && db.snapshot_epoch() >= floor {
                    if let Some(cached) = cache.lookup(db.snapshot_epoch(), op_bytes) {
                        // Wire-ready bytes: this caller's sequence id
                        // prefixed onto the stored encoded response.
                        out.clear();
                        ode_codec::varint::write_u64(&mut out, seq);
                        out.extend_from_slice(&cached);
                        respond_bytes(writer, stats, &out)?;
                        continue;
                    }
                    looked_up = true;
                }
                let job = Job {
                    seq,
                    request,
                    key: Some(op_bytes.to_vec()),
                    looked_up,
                };
                if job_tx.send(job).is_err() {
                    return Ok(()); // executor died (socket gone)
                }
            }
            request => {
                pending_writes.fetch_add(1, Ordering::AcqRel);
                let job = Job {
                    seq,
                    request,
                    key: None,
                    looked_up: false,
                };
                if job_tx.send(job).is_err() {
                    return Ok(());
                }
            }
        }
    }
}

/// The session's executing half: drains the job queue in order, runs
/// each request against the database, and ships the response.
fn executor_loop(
    ctx: &NodeCtx,
    job_rx: mpsc::Receiver<Job>,
    writer: &Mutex<BufWriter<TcpStream>>,
    pending_writes: &AtomicU64,
    read_floor: &AtomicU64,
) {
    let (db, stats, cache) = (&*ctx.db, &*ctx.stats, &*ctx.cache);
    loop {
        let job = match job_rx.try_recv() {
            Ok(job) => Some(job),
            Err(mpsc::TryRecvError::Empty) => {
                // The queue is dry: everything answered so far must
                // reach the wire before this thread blocks.
                if flush_writer(writer).is_err() {
                    return;
                }
                job_rx.recv().ok()
            }
            Err(mpsc::TryRecvError::Disconnected) => None,
        };
        let Some(job) = job else {
            let _ = flush_writer(writer);
            return;
        };
        let is_write = job.key.is_none();
        // The response encoded under the job's sequence id; what the
        // cache stores is the part after the sequence varint, which is
        // caller-independent.
        let out: Vec<u8> = match job.key {
            Some(key) => {
                // Replica read gate: a pinned connection's reads wait
                // until this node has applied the floor epoch, and fail
                // `Unavailable` (never answer from older state) when it
                // stays behind past the timeout.
                let floor = read_floor.load(Ordering::Acquire);
                if floor > 0 && db.wait_for_epoch(floor, ctx.floor_timeout) < floor {
                    stats.op_errors.fetch_add(1, Ordering::Relaxed);
                    Response::Err(RemoteError::Unavailable(format!(
                        "node at epoch {} has not applied read floor {floor}",
                        db.snapshot_epoch()
                    )))
                    .encode(job.seq)
                } else {
                    // Sampled before the snapshot opens: a commit
                    // landing in between tags the fill with an already-
                    // stale epoch (a wasted entry, never a stale hit).
                    let epoch = db.snapshot_epoch();
                    let cached = if job.looked_up {
                        None
                    } else {
                        cache.lookup(epoch, &key)
                    };
                    match cached {
                        Some(cached) => {
                            let mut out = Vec::with_capacity(10 + cached.len());
                            ode_codec::varint::write_u64(&mut out, job.seq);
                            out.extend_from_slice(&cached);
                            out
                        }
                        None => match apply(db, job.request) {
                            Ok(response) => {
                                let out = response.encode(job.seq);
                                cache.insert(epoch, key, Arc::from(&out[seq_prefix_len(&out)..]));
                                out
                            }
                            Err(e) => {
                                stats.op_errors.fetch_add(1, Ordering::Relaxed);
                                Response::Err(RemoteError::from(&e)).encode(job.seq)
                            }
                        },
                    }
                }
            }
            None if matches!(job.request, Request::Promote) => {
                // Driven failover. Idempotent: promoting a primary is a
                // no-op success.
                let result = if !ctx.replica.load(Ordering::Acquire) {
                    Ok(())
                } else {
                    match &ctx.hooks.promote {
                        Some(hook) => hook(),
                        None => ctx.db.promote_to_primary().map_err(|e| e.to_string()),
                    }
                };
                match result {
                    Ok(()) => {
                        ctx.replica.store(false, Ordering::Release);
                        Response::Unit.encode(job.seq)
                    }
                    Err(msg) => {
                        stats.op_errors.fetch_add(1, Ordering::Relaxed);
                        Response::Err(RemoteError::Storage(msg)).encode(job.seq)
                    }
                }
            }
            None if ctx.replica.load(Ordering::Acquire) => {
                // Replicas are read-only; the router never routes
                // writes here, so this is a client targeting the wrong
                // node (or a promotion race) — strictly not retryable
                // on this connection.
                stats.op_errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(RemoteError::Unavailable(
                    "replica is read-only (writes go to the primary)".into(),
                ))
                .encode(job.seq)
            }
            None => apply(db, job.request)
                .inspect(|_| {
                    // Semi-synchronous barrier: hold the response
                    // until a replica acked this commit's epoch.
                    if let Some(wait) = &ctx.hooks.commit_wait {
                        wait(db.snapshot_epoch());
                    }
                })
                .unwrap_or_else(|e| {
                    stats.op_errors.fetch_add(1, Ordering::Relaxed);
                    Response::Err(RemoteError::from(&e))
                })
                .encode(job.seq),
        };
        let sent = respond_bytes(writer, stats, &out);
        if is_write {
            // Cleared only now, after the write committed (or failed):
            // a reader that sees zero can safely serve cached reads.
            pending_writes.fetch_sub(1, Ordering::AcqRel);
        }
        if sent.is_err() {
            return; // socket gone; reader will notice too
        }
    }
}

fn frame_prefix_len(payload_len: usize) -> u64 {
    let mut buf = Vec::with_capacity(10);
    ode_codec::varint::write_u64(&mut buf, payload_len as u64);
    buf.len() as u64
}

/// Execute one operation. Reads run on a snapshot; writes run in a
/// transaction committed before returning, so the response implies
/// durability.
fn apply(db: &Database, request: Request) -> ode::Result<Response> {
    if request.is_read() {
        let mut snap = db.snapshot();
        return match request {
            Request::Deref { oid, tag } => {
                let (vid, bytes) = snap.deref_raw(oid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::DerefVersion { vid, tag } => {
                let bytes = snap.deref_version_raw(vid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::Dprevious { vid } => Ok(Response::MaybeVersion(snap.dprevious_raw(vid)?)),
            Request::Dnext { vid } => Ok(Response::Versions(snap.dnext_raw(vid)?)),
            Request::Tprevious { vid } => Ok(Response::MaybeVersion(snap.tprevious_raw(vid)?)),
            Request::Tnext { vid } => Ok(Response::MaybeVersion(snap.tnext_raw(vid)?)),
            Request::VersionHistory { oid } => {
                Ok(Response::Versions(snap.version_history_raw(oid)?))
            }
            Request::CurrentVersion { oid } => Ok(Response::Version(snap.latest_raw(oid)?)),
            Request::Objects { tag } => Ok(Response::Objects(snap.objects_raw(tag)?)),
            Request::ObjectsPage { tag, after, limit } => Ok(Response::Objects(
                snap.objects_page_raw(tag, after, limit as usize)?,
            )),
            Request::ObjectOf { vid } => Ok(Response::Object(snap.object_of_raw(vid)?)),
            Request::VersionCount { oid } => Ok(Response::Count(snap.version_count_raw(oid)?)),
            Request::Exists { oid } => Ok(Response::Flag(snap.exists_raw(oid)?)),
            Request::VersionExists { vid } => Ok(Response::Flag(snap.version_exists_raw(vid)?)),
            // Ping/Stats are answered by the reader; writes are handled
            // below.
            _ => unreachable!("non-read request routed to snapshot"),
        };
    }

    let mut txn = db.begin();
    let response = match request {
        Request::Pnew { tag, body } => {
            let (oid, vid) = txn.pnew_raw(tag, body)?;
            Response::Created { oid, vid }
        }
        Request::Update { oid, tag, body } => Response::Version(txn.put_raw(oid, tag, body)?),
        Request::UpdateVersion { vid, tag, body } => {
            txn.put_version_raw(vid, tag, body)?;
            Response::Unit
        }
        Request::NewVersion { oid } => Response::Version(txn.newversion_raw(oid)?),
        Request::NewVersionFrom { vid } => Response::Version(txn.newversion_from_raw(vid)?),
        Request::Pdelete { oid } => {
            txn.pdelete_raw(oid)?;
            Response::Unit
        }
        Request::PdeleteVersion { vid } => {
            txn.pdelete_version_raw(vid)?;
            Response::Unit
        }
        _ => unreachable!("read request routed to transaction"),
    };
    txn.commit()?;
    Ok(response)
}
