//! The Ode TCP server.
//!
//! [`OdeServer`] wraps an [`Arc<Database>`] and serves the wire
//! protocol over a **readiness event loop**: one thread runs an epoll
//! poller (the vendored [`polling`] crate) over a nonblocking listener
//! and every connection's nonblocking socket, so connection count is
//! decoupled from thread count — 10k idle sessions cost 10k fds and
//! some buffers, not 10k stacks. Request *execution* stays on a small
//! worker pool ([`ServerConfig::workers`]), preserving the storage
//! engine's multi-core parallelism: only connection I/O moved off
//! dedicated threads.
//!
//! Each connection is a small state machine driven by readiness:
//!
//! - **reading-frame** — readable bytes are pulled into an incremental
//!   [`FrameBuffer`] (partial reads leave a partial frame buffered);
//!   each complete frame is decoded on the loop. `Ping`, `Stats`,
//!   `Epoch`, `ReadFloor`, and snapshot-cache hits are answered right
//!   there, ahead of queued work; everything else becomes a job in the
//!   connection's bounded inbox (the decode-ahead queue,
//!   [`ServerConfig::pipeline_depth`]). A full inbox drops the
//!   connection's read interest — backpressure is "stop reading", and
//!   the kernel's receive window does the rest.
//! - **executing** — at most one job batch per connection is in flight
//!   on the worker pool at a time, so one connection's requests
//!   execute in decode order (pipelining stays per-connection FIFO at
//!   the store) while different connections execute in parallel.
//!   Completed responses come back to the loop over a queue + poller
//!   wake and may interleave arbitrarily across connections — the v2
//!   sequence ids make out-of-order completion safe.
//! - **writing-response** — response frames append to a per-connection
//!   write buffer flushed as far as the socket allows (partial writes
//!   keep a cursor). A non-empty buffer arms write interest; a reader
//!   slower than its responses accumulates backlog until
//!   [`ServerConfig::write_buffer_cap`], at which point the connection
//!   is evicted (counted in `Stats` as `slow_client_evictions`) rather
//!   than allowed to pin server memory.
//!
//! Read requests run on [`Database::snapshot`]s; write requests each
//! run in their own [`Database::begin`] transaction committed before
//! the response frame is sent (a successful reply means the change is
//! durable to the WAL). The cache fast path is gated on the connection
//! having no write in flight, which preserves read-your-writes per
//! connection; cross-connection consistency is commit-granular via the
//! database's snapshot epoch (see [`crate::cache`]).
//!
//! The previous thread-per-connection implementation survives as
//! [`crate::ThreadedServer`] — same wire behavior, used as the
//! reference oracle by the state-machine proptest battery.
//!
//! Shutdown is graceful and prompt: the loop is woken, every live
//! socket is shut down, queued jobs finish on the workers (writes
//! commit), and all threads are joined.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use ode::Database;
use polling::{Event, Poller};

use crate::cache::SnapshotCache;
use crate::error::RemoteError;
use crate::protocol::{
    write_frame, DiffSummary, FrameBuffer, Opcode, Request, Response, StatsReport, StorageCounters,
    MAGIC, OPCODE_COUNT,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests — the storage-layer
    /// parallelism cap. Connection count is independent of this.
    pub workers: usize,
    /// Per-connection decode-ahead depth: how many decoded requests may
    /// wait in the connection's inbox before the loop stops reading its
    /// socket (backpressure).
    pub pipeline_depth: usize,
    /// Snapshot-cache capacity in responses per epoch; `0` disables the
    /// cache entirely.
    pub cache_entries: usize,
    /// Start in replica mode: writes are refused with `Unavailable`
    /// until a `Promote` request flips the node to primary.
    pub replica: bool,
    /// How long a read pinned by `ReadFloor` may wait for the node to
    /// apply the floor epoch before failing with `Unavailable`.
    pub read_floor_timeout: std::time::Duration,
    /// Per-connection response-backlog cap in bytes. A client that
    /// reads slower than it pipelines accumulates encoded responses in
    /// its write buffer; crossing this cap evicts the connection
    /// (`slow_client_evictions` in `Stats`) instead of letting one slow
    /// reader pin unbounded server memory. Sized so that a full
    /// pipeline of maximum-size frames fits comfortably above it.
    pub write_buffer_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 16);
        ServerConfig {
            workers,
            pipeline_depth: 64,
            cache_entries: 4096,
            replica: false,
            read_floor_timeout: std::time::Duration::from_secs(5),
            write_buffer_cap: 64 << 20,
        }
    }
}

/// Replication wiring, injected by whatever owns the node's shipping
/// role (the cluster harness, or a standalone deployment script). The
/// server itself stays ignorant of the replication transport.
#[derive(Clone, Default)]
pub struct ServerHooks {
    /// Called after every committed write with the database's commit
    /// epoch: a primary's semi-synchronous barrier (block until a
    /// replica acked the epoch). The response frame is not sent until
    /// this returns.
    pub commit_wait: Option<Arc<dyn Fn(u64) + Send + Sync>>,
    /// Called when a `Promote` request arrives on a replica, *instead
    /// of* the default `Database::promote_to_primary` — so the owner
    /// can also stop its tailing `ReplicaNode`, start a hub, etc.
    /// Returning `Err` keeps the node a replica.
    pub promote: Option<Arc<dyn Fn() -> std::result::Result<(), String> + Send + Sync>>,
}

impl std::fmt::Debug for ServerHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHooks")
            .field("commit_wait", &self.commit_wait.is_some())
            .field("promote", &self.promote.is_some())
            .finish()
    }
}

/// Lifetime counters, all monotone except `active_connections`.
#[derive(Default)]
pub(crate) struct ServerStats {
    pub(crate) active_connections: AtomicU64,
    pub(crate) total_connections: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) op_errors: AtomicU64,
    pub(crate) slow_client_evictions: AtomicU64,
    pub(crate) requests: [AtomicU64; OPCODE_COUNT],
}

impl ServerStats {
    pub(crate) fn report(&self, cache: &SnapshotCache, db: &Database) -> StatsReport {
        let storage = db.storage_stats();
        let (materialize_hits, materialize_misses) = db.materialize_cache_counters();
        let requests = Opcode::ALL
            .iter()
            .filter_map(|&op| {
                let n = self.requests[op as usize].load(Ordering::Relaxed);
                (n != 0).then_some((op, n))
            })
            .collect();
        StatsReport {
            active_connections: self.active_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            snapshot_hits: cache.hits(),
            snapshot_misses: cache.misses(),
            slow_client_evictions: self.slow_client_evictions.load(Ordering::Relaxed),
            materialize_hits,
            materialize_misses,
            requests,
            storage: StorageCounters {
                read_txs: storage.read_txs,
                write_txs: storage.write_txs,
                reader_waits: storage.reader_waits,
                reader_wait_nanos: storage.reader_wait_nanos,
                writer_waits: storage.writer_waits,
                writer_wait_nanos: storage.writer_wait_nanos,
                wal_syncs: storage.wal_syncs,
                group_syncs: storage.group_syncs,
                group_commit_txns: storage.group_commit_txns,
                group_batch_max: storage.group_batch_max,
                bytes_shipped: storage.bytes_shipped,
                replica_lag_epochs: storage.replica_lag_epochs,
                failovers: storage.failovers,
                write_conflicts: storage.write_conflicts,
                write_retries: storage.write_retries,
            },
        }
    }
}

/// Everything a connection needs about the node it runs on, shared by
/// the loop and all workers: the database, counters, cache, and the
/// node's replication role.
pub(crate) struct NodeCtx {
    pub(crate) db: Arc<Database>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) cache: Arc<SnapshotCache>,
    /// `true` while this node is a replica (writes refused). Flipped to
    /// `false` by a successful `Promote`.
    pub(crate) replica: AtomicBool,
    pub(crate) hooks: ServerHooks,
    pub(crate) floor_timeout: std::time::Duration,
}

impl NodeCtx {
    pub(crate) fn new(db: Arc<Database>, config: &ServerConfig, hooks: ServerHooks) -> NodeCtx {
        NodeCtx {
            db,
            stats: Arc::new(ServerStats::default()),
            cache: Arc::new(SnapshotCache::new(config.cache_entries)),
            replica: AtomicBool::new(config.replica),
            hooks,
            floor_timeout: config.read_floor_timeout,
        }
    }
}

/// Length in bytes of the sequence-id varint a frame payload starts
/// with — the *actual* length off the wire, so the operation bytes
/// after it are exact even for non-canonical encodings.
pub(crate) fn seq_prefix_len(payload: &[u8]) -> usize {
    payload.iter().take_while(|b| **b & 0x80 != 0).count() + 1
}

pub(crate) fn frame_prefix_len(payload_len: usize) -> u64 {
    let mut buf = Vec::with_capacity(10);
    ode_codec::varint::write_u64(&mut buf, payload_len as u64);
    buf.len() as u64
}

/// One decoded request waiting for (or in flight on) the worker pool.
pub(crate) struct Job {
    pub(crate) seq: u64,
    pub(crate) request: Request,
    /// Cache key (the request's operation bytes, i.e. the payload
    /// after its sequence varint) — `Some` for reads.
    pub(crate) key: Option<Vec<u8>>,
    /// Whether the decode path already consulted the cache and missed;
    /// execution then skips its own lookup so each request counts one
    /// hit or one miss, never both.
    pub(crate) looked_up: bool,
    /// The connection's read floor when this request was decoded —
    /// stream-order semantics for the `ReadFloor` opcode.
    pub(crate) floor: u64,
}

/// Execute one job to a wire-ready encoded response. The second return
/// is whether the job was a write (the caller clears its
/// read-your-writes gate only after the commit happened here).
pub(crate) fn execute_job(ctx: &NodeCtx, job: Job) -> (Vec<u8>, bool) {
    let (db, stats, cache) = (&*ctx.db, &*ctx.stats, &*ctx.cache);
    let is_write = job.key.is_none();
    let out: Vec<u8> = match job.key {
        Some(key) => {
            // Replica read gate: a pinned connection's reads wait until
            // this node has applied the floor epoch, and fail
            // `Unavailable` (never answer from older state) when it
            // stays behind past the timeout.
            let floor = job.floor;
            if floor > 0 && db.wait_for_epoch(floor, ctx.floor_timeout) < floor {
                stats.op_errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(RemoteError::Unavailable(format!(
                    "node at epoch {} has not applied read floor {floor}",
                    db.snapshot_epoch()
                )))
                .encode(job.seq)
            } else {
                // Sampled before the snapshot opens: a commit landing
                // in between tags the fill with an already-stale epoch
                // (a wasted entry, never a stale hit).
                let epoch = db.snapshot_epoch();
                let cached = if job.looked_up {
                    None
                } else {
                    cache.lookup(epoch, &key)
                };
                match cached {
                    Some(cached) => {
                        let mut out = Vec::with_capacity(10 + cached.len());
                        ode_codec::varint::write_u64(&mut out, job.seq);
                        out.extend_from_slice(&cached);
                        out
                    }
                    None => match apply(db, job.request) {
                        Ok(response) => {
                            let out = response.encode(job.seq);
                            cache.insert(epoch, key, Arc::from(&out[seq_prefix_len(&out)..]));
                            out
                        }
                        Err(e) => {
                            stats.op_errors.fetch_add(1, Ordering::Relaxed);
                            Response::Err(RemoteError::from(&e)).encode(job.seq)
                        }
                    },
                }
            }
        }
        None if matches!(job.request, Request::Promote) => {
            // Driven failover. Idempotent: promoting a primary is a
            // no-op success.
            let result = if !ctx.replica.load(Ordering::Acquire) {
                Ok(())
            } else {
                match &ctx.hooks.promote {
                    Some(hook) => hook(),
                    None => ctx.db.promote_to_primary().map_err(|e| e.to_string()),
                }
            };
            match result {
                Ok(()) => {
                    ctx.replica.store(false, Ordering::Release);
                    Response::Unit.encode(job.seq)
                }
                Err(msg) => {
                    stats.op_errors.fetch_add(1, Ordering::Relaxed);
                    Response::Err(RemoteError::Storage(msg)).encode(job.seq)
                }
            }
        }
        None if ctx.replica.load(Ordering::Acquire) => {
            // Replicas are read-only; the router never routes writes
            // here, so this is a client targeting the wrong node (or a
            // promotion race) — strictly not retryable on this
            // connection.
            stats.op_errors.fetch_add(1, Ordering::Relaxed);
            Response::Err(RemoteError::Unavailable(
                "replica is read-only (writes go to the primary)".into(),
            ))
            .encode(job.seq)
        }
        None => apply(db, job.request)
            .inspect(|_| {
                // Semi-synchronous barrier: hold the response until a
                // replica acked this commit's epoch.
                if let Some(wait) = &ctx.hooks.commit_wait {
                    wait(db.snapshot_epoch());
                }
            })
            .unwrap_or_else(|e| {
                stats.op_errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(RemoteError::from(&e))
            })
            .encode(job.seq),
    };
    (out, is_write)
}

/// Execute one operation. Reads run on a snapshot; writes run in a
/// transaction committed before returning, so the response implies
/// durability.
pub(crate) fn apply(db: &Database, request: Request) -> ode::Result<Response> {
    if request.is_read() {
        let mut snap = db.snapshot();
        return match request {
            Request::Deref { oid, tag } => {
                let (vid, bytes) = snap.deref_raw(oid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::DerefVersion { vid, tag } => {
                let bytes = snap.deref_version_raw(vid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::Dprevious { vid } => Ok(Response::MaybeVersion(snap.dprevious_raw(vid)?)),
            Request::Dnext { vid } => Ok(Response::Versions(snap.dnext_raw(vid)?)),
            Request::Tprevious { vid } => Ok(Response::MaybeVersion(snap.tprevious_raw(vid)?)),
            Request::Tnext { vid } => Ok(Response::MaybeVersion(snap.tnext_raw(vid)?)),
            Request::VersionHistory { oid } => {
                Ok(Response::Versions(snap.version_history_raw(oid)?))
            }
            Request::CurrentVersion { oid } => Ok(Response::Version(snap.latest_raw(oid)?)),
            Request::Objects { tag } => Ok(Response::Objects(snap.objects_raw(tag)?)),
            Request::ObjectsPage { tag, after, limit } => Ok(Response::Objects(
                snap.objects_page_raw(tag, after, limit as usize)?,
            )),
            Request::ObjectOf { vid } => Ok(Response::Object(snap.object_of_raw(vid)?)),
            Request::VersionCount { oid } => Ok(Response::Count(snap.version_count_raw(oid)?)),
            Request::Exists { oid } => Ok(Response::Flag(snap.exists_raw(oid)?)),
            Request::VersionExists { vid } => Ok(Response::Flag(snap.version_exists_raw(vid)?)),
            Request::HistoryBetween { oid, from, to } => {
                Ok(Response::Versions(snap.history_between_raw(oid, from, to)?))
            }
            Request::DiffVersions { from, to } => {
                let d = snap.diff_versions_raw(from, to)?;
                Ok(Response::Diff(DiffSummary {
                    from: d.from,
                    to: d.to,
                    to_len: d.to_len,
                    ops: d.ops,
                    literal_bytes: d.literal_bytes,
                    encoded_bytes: d.encoded_bytes,
                    stored: d.stored,
                }))
            }
            // Ping/Stats are answered at decode; writes are handled
            // below.
            _ => unreachable!("non-read request routed to snapshot"),
        };
    }

    let mut txn = db.begin();
    let response = match request {
        Request::Pnew { tag, body } => {
            let (oid, vid) = txn.pnew_raw(tag, body)?;
            Response::Created { oid, vid }
        }
        Request::Update { oid, tag, body } => Response::Version(txn.put_raw(oid, tag, body)?),
        Request::UpdateVersion { vid, tag, body } => {
            txn.put_version_raw(vid, tag, body)?;
            Response::Unit
        }
        Request::NewVersion { oid } => Response::Version(txn.newversion_raw(oid)?),
        Request::NewVersionFrom { vid } => Response::Version(txn.newversion_from_raw(vid)?),
        Request::Pdelete { oid } => {
            txn.pdelete_raw(oid)?;
            Response::Unit
        }
        Request::PdeleteVersion { vid } => {
            txn.pdelete_version_raw(vid)?;
            Response::Unit
        }
        Request::Merge { a, b, policy } => {
            let (vid, conflicts) = txn.merge_raw(a, b, policy)?;
            Response::Merged { vid, conflicts }
        }
        _ => unreachable!("read request routed to transaction"),
    };
    txn.commit()?;
    Ok(response)
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// The listener's poller key; connection tokens start above it.
const LISTENER_KEY: usize = 0;

/// One connection's batch of decoded jobs headed for the worker pool.
struct Batch {
    token: usize,
    jobs: Vec<Job>,
}

/// What a worker sends back to the loop.
enum Completion {
    /// One job's encoded response frame payload.
    Response {
        token: usize,
        out: Vec<u8>,
        is_write: bool,
    },
    /// The batch finished; the connection may dispatch its next one.
    BatchDone { token: usize },
}

/// Worker→loop completion queue. Workers push and wake the poller; the
/// loop drains on every wakeup.
struct Completions {
    queue: Mutex<VecDeque<Completion>>,
    poller: Arc<Poller>,
}

impl Completions {
    fn push(&self, c: Completion) {
        self.queue.lock().unwrap().push_back(c);
        let _ = self.poller.notify();
    }
}

/// Per-connection state machine. The `state` a connection is in is
/// encoded by its buffers and flags: bytes pending in `rbuf` =
/// reading-frame, `dispatched` = executing, bytes pending in `wbuf` =
/// writing-response; all three can hold at once (that is what
/// pipelining means).
struct Conn {
    stream: TcpStream,
    token: usize,
    /// Handshake progress: how many magic bytes have been read
    /// (sessions start in the handshake state, `got < 4`).
    magic_got: usize,
    /// Partial-read buffer: accumulates socket bytes, yields frames.
    rbuf: FrameBuffer,
    /// Decoded jobs not yet dispatched to the workers.
    inbox: VecDeque<Job>,
    /// A batch is executing on the worker pool (at most one at a time
    /// per connection — this is what keeps execution in decode order).
    dispatched: bool,
    /// Writes decoded but not yet committed: non-zero closes the
    /// snapshot-cache fast path (read-your-writes).
    pending_writes: u64,
    /// The connection's read floor (the `ReadFloor` opcode), applied
    /// to reads decoded after it.
    read_floor: u64,
    /// Partial-write buffer (`wpos` = bytes already on the wire).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer sent EOF: finish decoded work, then close.
    peer_closed: bool,
    /// The socket's write side failed; responses are discarded but
    /// decoded writes still execute (they were accepted off the wire).
    write_dead: bool,
    /// Interest currently armed with the poller, to skip no-op
    /// `modify` syscalls.
    armed: (bool, bool),
}

impl Conn {
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Appends one response frame to the write buffer.
    fn queue_frame(&mut self, stats: &ServerStats, payload: &[u8]) {
        queue_frame(
            &mut self.wbuf,
            &mut self.wpos,
            self.write_dead,
            stats,
            payload,
        );
    }
}

/// [`Conn::queue_frame`] over split borrows, for call sites holding a
/// frame payload borrowed out of the same connection's read buffer.
fn queue_frame(
    wbuf: &mut Vec<u8>,
    wpos: &mut usize,
    write_dead: bool,
    stats: &ServerStats,
    payload: &[u8],
) {
    if write_dead {
        return;
    }
    // Compact lazily once the sent prefix dominates.
    if *wpos > 4096 && *wpos * 2 > wbuf.len() {
        wbuf.drain(..*wpos);
        *wpos = 0;
    }
    let written = write_frame(wbuf, payload).expect("Vec write is infallible");
    stats.bytes_out.fetch_add(written, Ordering::Relaxed);
}

/// Why a connection is being torn down.
enum Close {
    /// Clean end of session (EOF with nothing left to do, handshake
    /// refusal, frame-level protocol error).
    Done,
    /// Response backlog exceeded the write-buffer cap.
    Evicted,
}

/// A running Ode network server (readiness event loop).
pub struct OdeServer {
    addr: SocketAddr,
    ctx: Arc<NodeCtx>,
    shutdown: Arc<AtomicBool>,
    poller: Arc<Poller>,
    loop_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OdeServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `db`.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<OdeServer> {
        OdeServer::bind_with(db, addr, config, ServerHooks::default())
    }

    /// [`OdeServer::bind`] with replication hooks (commit barrier,
    /// promote handler).
    pub fn bind_with(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        hooks: ServerHooks,
    ) -> io::Result<OdeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(NodeCtx::new(db, &config, hooks));
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;

        let (job_tx, job_rx) = mpsc::channel::<Batch>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions = Arc::new(Completions {
            queue: Mutex::new(VecDeque::new()),
            poller: Arc::clone(&poller),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&job_rx);
                let completions = Arc::clone(&completions);
                thread::Builder::new()
                    .name(format!("ode-net-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx, &completions))
                    .expect("spawn server worker thread")
            })
            .collect();

        let loop_handle = {
            let ctx = Arc::clone(&ctx);
            let poller = Arc::clone(&poller);
            let shutdown = Arc::clone(&shutdown);
            let depth = config.pipeline_depth.max(1);
            let write_cap = config.write_buffer_cap.max(1);
            thread::Builder::new()
                .name("ode-net-loop".into())
                .spawn(move || {
                    // job_tx moves in here; dropping it on exit stops
                    // the workers once the queue drains.
                    event_loop(
                        &ctx,
                        listener,
                        &poller,
                        job_tx,
                        &completions,
                        &shutdown,
                        depth,
                        write_cap,
                    )
                })
                .expect("spawn server event-loop thread")
        };

        Ok(OdeServer {
            addr,
            ctx,
            shutdown,
            poller,
            loop_handle: Some(loop_handle),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether this node currently refuses writes (replica role).
    pub fn is_replica(&self) -> bool {
        self.ctx.replica.load(Ordering::Acquire)
    }

    /// A snapshot of the server's counters (the same data the `Stats`
    /// opcode serves remotely).
    pub fn stats(&self) -> StatsReport {
        self.ctx.stats.report(&self.ctx.cache, &self.ctx.db)
    }

    /// Stop accepting, close every live connection, and join all
    /// server threads. Requests already decoded complete first (their
    /// writes commit; undeliverable responses are discarded).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.poller.notify();
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        // The loop dropped job_tx on exit; workers drain what was
        // dispatched, then see the hangup and exit.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OdeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for OdeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OdeServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn worker_loop(ctx: &NodeCtx, rx: &Mutex<mpsc::Receiver<Batch>>, completions: &Completions) {
    loop {
        // Hold the lock only for the dequeue, not the execution.
        let next = rx.lock().unwrap().recv();
        let Ok(batch) = next else {
            return; // sender gone: server is shutting down
        };
        for job in batch.jobs {
            let (out, is_write) = execute_job(ctx, job);
            // Streamed back one by one: earlier responses in a batch
            // reach the wire while later jobs still execute.
            completions.push(Completion::Response {
                token: batch.token,
                out,
                is_write,
            });
        }
        completions.push(Completion::BatchDone { token: batch.token });
    }
}

#[allow(clippy::too_many_arguments)]
fn event_loop(
    ctx: &NodeCtx,
    listener: TcpListener,
    poller: &Arc<Poller>,
    job_tx: mpsc::Sender<Batch>,
    completions: &Completions,
    shutdown: &AtomicBool,
    depth: usize,
    write_cap: usize,
) {
    let stats = &*ctx.stats;
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    // Connections touched this wakeup, pumped once at the end so a
    // burst of completions costs one flush, not one syscall each.
    let mut touched: Vec<usize> = Vec::new();

    'run: loop {
        if poller.wait(&mut events, None).is_err() {
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        touched.clear();

        for &ev in &events {
            if ev.key == LISTENER_KEY {
                accept_ready(&listener, poller, &mut conns, &mut next_token, stats);
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue;
            };
            if ev.readable {
                read_ready(conn, ctx, &mut scratch, depth);
            }
            if !touched.contains(&ev.key) {
                touched.push(ev.key);
            }
        }

        // Drain completions delivered by the workers.
        loop {
            let Some(c) = completions.queue.lock().unwrap().pop_front() else {
                break;
            };
            match c {
                Completion::Response {
                    token,
                    out,
                    is_write,
                } => {
                    // The connection may have been evicted while the
                    // job executed; its work stands, the frame drops.
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if is_write {
                        conn.pending_writes -= 1;
                    }
                    conn.queue_frame(stats, &out);
                    if !touched.contains(&token) {
                        touched.push(token);
                    }
                }
                Completion::BatchDone { token } => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    conn.dispatched = false;
                    if !touched.contains(&token) {
                        touched.push(token);
                    }
                }
            }
        }

        // One pump — parse, dispatch, flush, re-arm — per touched
        // connection.
        for &token in &touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            match pump(conn, ctx, poller, &job_tx, depth, write_cap) {
                Ok(()) => {}
                Err(close) => {
                    if let Close::Evicted = close {
                        stats.slow_client_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut conn = conns.remove(&token).expect("conn present");
                    // Best-effort final flush (one nonblocking pass),
                    // mirroring the threaded server's buffered-writer
                    // drop: answers queued before a fatal frame should
                    // still try to reach the client.
                    if !conn.write_dead && conn.backlog() > 0 {
                        let wpos = conn.wpos;
                        let _ = conn.stream.write_all(&conn.wbuf[wpos..]);
                    }
                    let _ = poller.delete(&conn.stream);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    stats.active_connections.fetch_sub(1, Ordering::Relaxed);
                }
            }
            if shutdown.load(Ordering::SeqCst) {
                break 'run;
            }
        }
    }

    // Teardown: close every socket; decoded-but-undispatched jobs are
    // flushed to the workers first so "accepted off the wire" implies
    // "executed" even across shutdown.
    for (_, mut conn) in conns.drain() {
        if !conn.inbox.is_empty() {
            let _ = job_tx.send(Batch {
                token: conn.token,
                jobs: conn.inbox.drain(..).collect(),
            });
        }
        let _ = poller.delete(&conn.stream);
        let _ = conn.stream.shutdown(Shutdown::Both);
        stats.active_connections.fetch_sub(1, Ordering::Relaxed);
    }
    drop(listener);
    // job_tx drops here: workers finish the backlog and exit.
}

fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    stats: &ServerStats,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            // Transient accept failures (ECONNABORTED, EMFILE): leave
            // the rest for the next readiness report.
            Err(_) => break,
        };
        stats.total_connections.fetch_add(1, Ordering::Relaxed);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        let token = *next_token;
        *next_token += 1;
        if poller.add(&stream, Event::readable(token)).is_err() {
            continue;
        }
        stats.active_connections.fetch_add(1, Ordering::Relaxed);
        conns.insert(
            token,
            Conn {
                stream,
                token,
                magic_got: 0,
                rbuf: FrameBuffer::new(),
                inbox: VecDeque::new(),
                dispatched: false,
                pending_writes: 0,
                read_floor: 0,
                wbuf: Vec::new(),
                wpos: 0,
                peer_closed: false,
                write_dead: false,
                armed: (true, false),
            },
        );
    }
}

/// Pull whatever the kernel has into the connection's read state.
/// Stops early once the inbox is full (backpressure): unread bytes
/// stay in the kernel buffer and the read interest is dropped by the
/// subsequent pump.
fn read_ready(conn: &mut Conn, ctx: &NodeCtx, scratch: &mut [u8], depth: usize) {
    while !conn.peer_closed && conn.inbox.len() < depth {
        let n = match conn.stream.read(scratch) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Reset mid-stream: what was decoded still executes,
                // nothing more arrives and nothing can be delivered.
                conn.peer_closed = true;
                conn.write_dead = true;
                break;
            }
        };
        let mut bytes = &scratch[..n];
        // Handshake state: expect the client's 4 magic bytes, echo
        // them back.
        if conn.magic_got < 4 {
            let take = bytes.len().min(4 - conn.magic_got);
            let (magic, rest) = bytes.split_at(take);
            if magic != &MAGIC[conn.magic_got..conn.magic_got + take] {
                ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.peer_closed = true;
                conn.write_dead = true;
                return;
            }
            conn.magic_got += take;
            bytes = rest;
            if conn.magic_got == 4 && !conn.write_dead {
                // The echo is raw bytes, not a frame: splice it in
                // front of the write buffer path directly.
                conn.wbuf.extend_from_slice(&MAGIC);
            }
            if bytes.is_empty() {
                continue;
            }
        }
        conn.rbuf.extend(bytes);
    }
}

/// Decode complete frames out of the connection's read buffer: answer
/// the fast-path opcodes inline, queue the rest as jobs. A frame-level
/// protocol error (hostile length prefix) poisons the stream and ends
/// the session.
fn parse_frames(conn: &mut Conn, ctx: &NodeCtx, depth: usize) -> Result<(), Close> {
    let (db, stats, cache) = (&*ctx.db, &*ctx.stats, &*ctx.cache);
    // Split borrows: frame payloads stay borrowed out of `rbuf` while
    // the other connection fields are written.
    let Conn {
        rbuf,
        inbox,
        pending_writes,
        read_floor,
        wbuf,
        wpos,
        write_dead,
        ..
    } = conn;
    let mut out = Vec::new();
    while inbox.len() < depth {
        let payload: &[u8] = match rbuf.next_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Err(Close::Done);
            }
        };
        stats.bytes_in.fetch_add(
            payload.len() as u64 + frame_prefix_len(payload.len()),
            Ordering::Relaxed,
        );

        let (seq, request) = match Request::decode(payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame was well delimited, so the stream is still
                // in sync: report under the request's sequence id (or 0
                // when even that is unreadable) and keep the session
                // alive.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = Request::decode_seq(payload).unwrap_or(0);
                let frame = Response::Err(RemoteError::BadRequest(e.to_string())).encode(seq);
                queue_frame(wbuf, wpos, *write_dead, stats, &frame);
                continue;
            }
        };
        stats.requests[request.opcode() as usize].fetch_add(1, Ordering::Relaxed);

        match request {
            // Answered in place, possibly ahead of queued work.
            Request::Ping => {
                let frame = Response::Pong.encode(seq);
                queue_frame(wbuf, wpos, *write_dead, stats, &frame);
            }
            Request::Stats => {
                let frame = Response::Stats(stats.report(cache, db)).encode(seq);
                queue_frame(wbuf, wpos, *write_dead, stats, &frame);
            }
            // The router's health probe: answered inline so a node busy
            // with queued work still reports its epoch promptly.
            Request::Epoch => {
                let frame = Response::Count(db.snapshot_epoch()).encode(seq);
                queue_frame(wbuf, wpos, *write_dead, stats, &frame);
            }
            // Set here, in stream order: every read decoded after this
            // frame sees the new floor, exactly the read-your-writes
            // contract the router relies on.
            Request::ReadFloor { epoch } => {
                *read_floor = epoch;
                let frame = Response::Unit.encode(seq);
                queue_frame(wbuf, wpos, *write_dead, stats, &frame);
            }
            request if request.is_read() => {
                // The cache key is the request's operation bytes — the
                // payload minus its sequence varint, borrowed straight
                // off the frame (no re-encode).
                let op_bytes = &payload[seq_prefix_len(payload)..];
                // Cache fast path, only when no write is in flight on
                // this connection (read-your-writes). The epoch is
                // sampled here, after the gate: any commit acknowledged
                // before this request was sent has already bumped it.
                let mut looked_up = false;
                let floor = *read_floor;
                if *pending_writes == 0 && db.snapshot_epoch() >= floor {
                    if let Some(cached) = cache.lookup(db.snapshot_epoch(), op_bytes) {
                        // Wire-ready bytes: this caller's sequence id
                        // prefixed onto the stored encoded response.
                        out.clear();
                        ode_codec::varint::write_u64(&mut out, seq);
                        out.extend_from_slice(&cached);
                        queue_frame(wbuf, wpos, *write_dead, stats, &out);
                        continue;
                    }
                    looked_up = true;
                }
                let key = Some(op_bytes.to_vec());
                inbox.push_back(Job {
                    seq,
                    request,
                    key,
                    looked_up,
                    floor,
                });
            }
            request => {
                *pending_writes += 1;
                inbox.push_back(Job {
                    seq,
                    request,
                    key: None,
                    looked_up: false,
                    floor: *read_floor,
                });
            }
        }
    }
    Ok(())
}

/// Advance a connection's state machine: decode, dispatch, flush, and
/// re-arm interest. `Err` means the connection is done (or evicted)
/// and must be torn down by the caller.
fn pump(
    conn: &mut Conn,
    ctx: &NodeCtx,
    poller: &Poller,
    job_tx: &mpsc::Sender<Batch>,
    depth: usize,
    write_cap: usize,
) -> Result<(), Close> {
    parse_frames(conn, ctx, depth)?;

    // Dispatch the next batch, if none is executing.
    if !conn.dispatched && !conn.inbox.is_empty() {
        let batch = Batch {
            token: conn.token,
            jobs: conn.inbox.drain(..).collect(),
        };
        conn.dispatched = true;
        let _ = job_tx.send(batch);
    }

    // Flush as far as the socket allows.
    while conn.wpos < conn.wbuf.len() && !conn.write_dead {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.write_dead = true;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.write_dead = true;
            }
        }
    }
    if conn.write_dead {
        // Undeliverable: drop the backlog, keep executing what was
        // decoded.
        conn.wbuf.clear();
        conn.wpos = 0;
    }

    // Slow-client guard: a reader this far behind its responses is
    // evicted rather than allowed to pin server memory.
    if conn.backlog() > write_cap {
        return Err(Close::Evicted);
    }

    // Nothing left to read, execute, or write: the session is over.
    // (`parse_frames` just ran and the dispatch above drained the
    // inbox, so any bytes still in `rbuf` are a partial frame cut off
    // by the EOF — exactly the case the threaded server closed on.)
    if conn.peer_closed
        && !conn.dispatched
        && conn.inbox.is_empty()
        && (conn.backlog() == 0 || conn.write_dead)
    {
        return Err(Close::Done);
    }

    // Re-arm interest to match the state machine: read while the inbox
    // has room, write while there is backlog.
    let want = (
        !conn.peer_closed && conn.inbox.len() < depth,
        conn.backlog() > 0 && !conn.write_dead,
    );
    if want != conn.armed {
        let ev = Event {
            key: conn.token,
            readable: want.0,
            writable: want.1,
        };
        if poller.modify(&conn.stream, ev).is_err() {
            return Err(Close::Done);
        }
        conn.armed = want;
    }
    Ok(())
}
