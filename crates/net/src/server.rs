//! The Ode TCP server.
//!
//! [`OdeServer`] wraps an [`Arc<Database>`] and serves the wire
//! protocol over `std::net`: an accept-loop thread hands connections to
//! a bounded pool of worker threads; each worker runs one connection's
//! session at a time. Read requests run on [`Database::snapshot`]s;
//! write requests each run in their own [`Database::begin`] transaction
//! committed before the response frame is sent (so a successful reply
//! means the change is durable to the WAL).
//!
//! Shutdown is graceful and prompt: the listener is woken, every live
//! connection's socket is shut down (unblocking worker reads), and all
//! threads are joined. In-flight requests finish; their connections
//! then close.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use ode::Database;

use crate::error::RemoteError;
use crate::protocol::{
    read_frame, write_frame, Opcode, Request, Response, StatsReport, MAGIC, OPCODE_COUNT,
};
use crate::NetError;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the maximum number of concurrently served
    /// connections (further accepted connections wait in line).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 16);
        ServerConfig { workers }
    }
}

/// Lifetime counters, all monotone except `active_connections`.
#[derive(Default)]
struct ServerStats {
    active_connections: AtomicU64,
    total_connections: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    protocol_errors: AtomicU64,
    op_errors: AtomicU64,
    requests: [AtomicU64; OPCODE_COUNT],
}

impl ServerStats {
    fn report(&self) -> StatsReport {
        let requests = Opcode::ALL
            .iter()
            .filter_map(|&op| {
                let n = self.requests[op as usize].load(Ordering::Relaxed);
                (n != 0).then_some((op, n))
            })
            .collect();
        StatsReport {
            active_connections: self.active_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            requests,
        }
    }
}

/// Live connections by id, kept as `try_clone`d handles so shutdown can
/// unblock a worker parked in a socket read.
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A running Ode network server.
pub struct OdeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    conns: ConnRegistry,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OdeServer {
    /// Bind `addr` (port 0 picks a free port) and start serving `db`.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<OdeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));

        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let db = Arc::clone(&db);
                let rx = Arc::clone(&conn_rx);
                let stats = Arc::clone(&stats);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name(format!("ode-net-worker-{i}"))
                    .spawn(move || worker_loop(&db, &rx, &stats, &conns))
                    .expect("spawn server worker thread")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("ode-net-accept".into())
                .spawn(move || {
                    let mut next_id = 0u64;
                    // conn_tx moves in here; dropping it on exit stops
                    // the workers once the queue drains.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        stats.total_connections.fetch_add(1, Ordering::Relaxed);
                        next_id += 1;
                        if conn_tx.send((next_id, stream)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn server accept thread")
        };

        Ok(OdeServer {
            addr,
            shutdown,
            stats,
            conns,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters (the same data the `Stats`
    /// opcode serves remotely).
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// Stop accepting, unblock and close every live connection, and
    /// join all server threads. In-flight requests complete first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection; it sees the
        // flag and exits, dropping the channel sender.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock workers parked in reads on live sessions.
        for (_, stream) in self.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OdeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    db: &Database,
    rx: &Mutex<mpsc::Receiver<(u64, TcpStream)>>,
    stats: &ServerStats,
    conns: &ConnRegistry,
) {
    loop {
        // Hold the lock only for the dequeue, not the whole session.
        let next = rx.lock().unwrap().recv();
        let (id, stream) = match next {
            Ok(pair) => pair,
            Err(_) => return, // sender gone: server is shutting down
        };
        if let Ok(handle) = stream.try_clone() {
            conns.lock().unwrap().insert(id, handle);
        }
        stats.active_connections.fetch_add(1, Ordering::Relaxed);
        let _ = serve_connection(db, stream, stats);
        stats.active_connections.fetch_sub(1, Ordering::Relaxed);
        conns.lock().unwrap().remove(&id);
    }
}

/// Run one connection's session to completion. Any `Err` return or
/// protocol violation closes the connection; per-request operation
/// failures are reported in error frames and the session continues.
fn serve_connection(db: &Database, stream: TcpStream, stats: &ServerStats) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Handshake: expect the client's magic, echo it back.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    writer.write_all(&MAGIC)?;
    writer.flush()?;

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // client hung up cleanly
            Err(NetError::Io(e)) => return Err(e),
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        };
        stats.bytes_in.fetch_add(
            payload.len() as u64 + frame_prefix_len(payload.len()),
            Ordering::Relaxed,
        );

        let response = match Request::decode(&payload) {
            Ok(request) => {
                stats.requests[request.opcode() as usize].fetch_add(1, Ordering::Relaxed);
                match request {
                    Request::Ping => Response::Pong,
                    Request::Stats => Response::Stats(stats.report()),
                    request => apply(db, request).unwrap_or_else(|e| {
                        stats.op_errors.fetch_add(1, Ordering::Relaxed);
                        Response::Err(RemoteError::from(&e))
                    }),
                }
            }
            Err(e) => {
                // The frame was well delimited, so the stream is still
                // in sync: report and keep the session alive.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(RemoteError::BadRequest(e.to_string()))
            }
        };

        let out = response.encode();
        let written = write_frame(&mut writer, &out)?;
        writer.flush()?;
        stats.bytes_out.fetch_add(written, Ordering::Relaxed);
    }
}

fn frame_prefix_len(payload_len: usize) -> u64 {
    let mut buf = Vec::with_capacity(10);
    ode_codec::varint::write_u64(&mut buf, payload_len as u64);
    buf.len() as u64
}

/// Execute one operation. Reads run on a snapshot; writes run in a
/// transaction committed before returning, so the response implies
/// durability.
fn apply(db: &Database, request: Request) -> ode::Result<Response> {
    if request.is_read() {
        let mut snap = db.snapshot();
        return match request {
            Request::Deref { oid, tag } => {
                let (vid, bytes) = snap.deref_raw(oid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::DerefVersion { vid, tag } => {
                let bytes = snap.deref_version_raw(vid, tag)?;
                Ok(Response::Body { vid, bytes })
            }
            Request::Dprevious { vid } => Ok(Response::MaybeVersion(snap.dprevious_raw(vid)?)),
            Request::Dnext { vid } => Ok(Response::Versions(snap.dnext_raw(vid)?)),
            Request::Tprevious { vid } => Ok(Response::MaybeVersion(snap.tprevious_raw(vid)?)),
            Request::Tnext { vid } => Ok(Response::MaybeVersion(snap.tnext_raw(vid)?)),
            Request::VersionHistory { oid } => {
                Ok(Response::Versions(snap.version_history_raw(oid)?))
            }
            Request::CurrentVersion { oid } => Ok(Response::Version(snap.latest_raw(oid)?)),
            Request::Objects { tag } => Ok(Response::Objects(snap.objects_raw(tag)?)),
            Request::ObjectsPage { tag, after, limit } => Ok(Response::Objects(
                snap.objects_page_raw(tag, after, limit as usize)?,
            )),
            Request::ObjectOf { vid } => Ok(Response::Object(snap.object_of_raw(vid)?)),
            Request::VersionCount { oid } => Ok(Response::Count(snap.version_count_raw(oid)?)),
            Request::Exists { oid } => Ok(Response::Flag(snap.exists_raw(oid)?)),
            Request::VersionExists { vid } => Ok(Response::Flag(snap.version_exists_raw(vid)?)),
            // Ping/Stats are answered before apply; writes are handled
            // below.
            _ => unreachable!("non-read request routed to snapshot"),
        };
    }

    let mut txn = db.begin();
    let response = match request {
        Request::Pnew { tag, body } => {
            let (oid, vid) = txn.pnew_raw(tag, body)?;
            Response::Created { oid, vid }
        }
        Request::Update { oid, tag, body } => Response::Version(txn.put_raw(oid, tag, body)?),
        Request::UpdateVersion { vid, tag, body } => {
            txn.put_version_raw(vid, tag, body)?;
            Response::Unit
        }
        Request::NewVersion { oid } => Response::Version(txn.newversion_raw(oid)?),
        Request::NewVersionFrom { vid } => Response::Version(txn.newversion_from_raw(vid)?),
        Request::Pdelete { oid } => {
            txn.pdelete_raw(oid)?;
            Response::Unit
        }
        Request::PdeleteVersion { vid } => {
            txn.pdelete_version_raw(vid)?;
            Response::Unit
        }
        _ => unreachable!("read request routed to transaction"),
    };
    txn.commit()?;
    Ok(response)
}
