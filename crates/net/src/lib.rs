//! # ode-net — networked access to an Ode database
//!
//! The paper's O++ programs run *in-process* against the database; this
//! crate adds the client/server deployment shape: a TCP server
//! ([`OdeServer`]) wrapping a shared [`ode::Database`], a compact
//! binary wire protocol ([`protocol`]) carrying the full O++ operation
//! set (`pnew`, generic/specific dereference, `newversion` in both
//! forms, `pdelete` of objects and versions, the four derived-from /
//! temporal traversals, extent scans), and a blocking typed client
//! ([`OdeClient`]) whose [`ClientObjPtr`] / [`ClientVersionPtr`]
//! preserve the generic-vs-specific reference distinction across the
//! network.
//!
//! No async runtime: the server is one epoll **readiness loop** (the
//! vendored [`polling`] crate) over nonblocking sockets, driving a
//! per-connection state machine — partial-read frame reassembly, a
//! bounded decode-ahead inbox, a partial-write output buffer — with a
//! fixed worker pool executing the operations, so thread count is
//! constant no matter how many thousands of connections are open. A
//! client that stops reading is evicted once its buffered responses
//! hit [`ServerConfig::write_buffer_cap`]
//! ([`StatsReport::slow_client_evictions`] counts these). The old
//! thread-per-connection implementation lives on as [`ThreadedServer`],
//! the oracle the event loop is differentially property-tested against.
//! One request maps to one server-side snapshot (reads) or one
//! committed transaction (writes), so a successful write response
//! implies WAL durability, and a client reconnecting after a server
//! restart sees every version it was ever acknowledged.
//!
//! Protocol v2 makes every connection a **pipeline**: requests carry
//! client-assigned sequence ids and responses may arrive out of order,
//! so [`OdeClient::send`]/[`OdeClient::recv`] (and the
//! [`Pipeline`] batch API) keep many requests in flight per
//! connection. The server decodes ahead into a bounded per-connection
//! queue and serves repeated reads from a commit-invalidated snapshot
//! cache ([`StatsReport::snapshot_hits`] /
//! [`StatsReport::snapshot_misses`] show its effectiveness).
//!
//! For scale-out, [`OdeRouter`] is a shard-routing front tier speaking
//! the same protocol on both sides: clients connect to it exactly as
//! to a single server while it routes each request to one of N backend
//! shards by object id ([`ShardMap`]) — see the [`router`](OdeRouter)
//! docs for the ordering and fault semantics. [`Cluster`] and
//! [`relay::FaultRelay`] make the whole tier spawnable in-process for
//! deterministic fault-injection tests.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ode::{Database, DatabaseOptions};
//! use ode_net::{ClientConfig, OdeClient, OdeServer, ServerConfig};
//!
//! let db = Arc::new(Database::create("parts.odb", DatabaseOptions::default()).unwrap());
//! let server = OdeServer::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = OdeClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! client.ping().unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
pub mod cluster;
mod error;
pub mod protocol;
pub mod relay;
mod router;
mod server;
mod shard;
mod threaded;

pub use client::{ClientConfig, ClientObjPtr, ClientVersionPtr, OdeClient, Pipeline};
pub use cluster::{Cluster, ClusterConfig};
pub use error::{NetError, RemoteError, Result};
pub use protocol::{DiffSummary, Opcode, Request, Response, StatsReport, StorageCounters};
pub use relay::{FaultRelay, RelayPlan};
pub use router::{OdeRouter, RouterConfig, RouterStatsReport, ShardMembership};
pub use server::{OdeServer, ServerConfig, ServerHooks};
pub use shard::ShardMap;
pub use threaded::ThreadedServer;
