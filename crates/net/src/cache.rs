//! The server's epoch-tagged read-snapshot cache.
//!
//! The storage engine resolves every read under the store's coarse
//! lock, so a hot read path pays lock traffic plus latest-version
//! resolution per request even when nothing has changed. The paper's
//! generic references make this worse: *every* `Deref` re-resolves the
//! latest version. This cache keys successful read responses by the
//! request's *operation bytes* (the encoded payload after the sequence
//! id varint — sequence-independent, so every connection shares one
//! map) and stores the *encoded response* the same way (the payload
//! after its sequence varint), so a hit is served by prefixing the
//! caller's sequence id onto bytes that are already wire-ready: no
//! snapshot, no store lock, no re-encode. Values sit behind an `Arc`
//! so a hit never copies the body either.
//!
//! The whole map is tagged with the database's
//! [snapshot epoch](ode::Database::snapshot_epoch).
//!
//! Consistency is commit-granular: [`Txn::commit`](ode::Txn) bumps the
//! epoch before it returns, and [`SnapshotCache::lookup`] discards the
//! whole map the moment it sees a newer epoch, so a read that starts
//! after any commit was acknowledged can never be served a pre-commit
//! answer. Readers sample the epoch *before* opening their snapshot;
//! a commit racing the fill then leaves the entry tagged with an
//! already-stale epoch, which only costs a future miss — never a stale
//! hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Cached responses for one epoch.
#[derive(Default)]
struct Generation {
    /// Epoch every entry in `map` was resolved at.
    epoch: u64,
    /// Request operation bytes → encoded response (both without their
    /// sequence id varint).
    map: HashMap<Vec<u8>, Arc<[u8]>>,
}

/// A commit-invalidated cache of read responses, shared by every
/// connection of one server.
pub(crate) struct SnapshotCache {
    inner: Mutex<Generation>,
    /// Entry cap; at the cap, new fills are dropped (the map never
    /// outlives one epoch, so eviction pressure resolves itself at the
    /// next commit).
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SnapshotCache {
    /// A cache holding at most `max_entries` responses per epoch.
    /// `max_entries == 0` disables caching: every lookup misses and
    /// every insert is dropped (the counters still tick, keeping the
    /// stats meaningful).
    pub(crate) fn new(max_entries: usize) -> SnapshotCache {
        SnapshotCache {
            inner: Mutex::new(Generation::default()),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up the cached response bytes for `key` as of `epoch`. Drops
    /// the whole map first if `epoch` has moved past the one the
    /// entries were filled at.
    pub(crate) fn lookup(&self, epoch: u64, key: &[u8]) -> Option<Arc<[u8]>> {
        let mut inner = self.inner.lock();
        if inner.epoch < epoch {
            // One generation at a time: a newer epoch orphans every
            // entry. The inverse (a caller still holding an older
            // sample while the cache moved on) just misses — the
            // generation is never rolled back.
            inner.map.clear();
            inner.epoch = epoch;
        }
        if inner.epoch != epoch {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match inner.map.get(key) {
            Some(resp) => {
                let resp = resp.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(resp)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the encoded response a read resolved to at `epoch`.
    /// Skipped when the cache has moved on to a newer epoch (the entry
    /// would be stale on arrival) and when the per-epoch cap is
    /// reached.
    pub(crate) fn insert(&self, epoch: u64, key: Vec<u8>, resp: Arc<[u8]>) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.epoch < epoch {
            inner.map.clear();
            inner.epoch = epoch;
        }
        if inner.epoch != epoch || inner.map.len() >= self.max_entries {
            return;
        }
        inner.map.insert(key, resp);
    }

    /// Total lookups served from the map.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that had to open a snapshot.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(b: &[u8]) -> Arc<[u8]> {
        Arc::from(b)
    }

    #[test]
    fn hit_after_fill_within_one_epoch() {
        let cache = SnapshotCache::new(16);
        assert_eq!(cache.lookup(1, b"k"), None);
        cache.insert(1, b"k".to_vec(), bytes(b"seven"));
        assert_eq!(cache.lookup(1, b"k"), Some(bytes(b"seven")));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn epoch_advance_invalidates_everything() {
        let cache = SnapshotCache::new(16);
        cache.insert(1, b"k".to_vec(), bytes(b"seven"));
        assert_eq!(cache.lookup(2, b"k"), None);
        // And the old-epoch entry cannot resurface later.
        assert_eq!(cache.lookup(2, b"k"), None);
    }

    #[test]
    fn stale_fill_is_dropped() {
        let cache = SnapshotCache::new(16);
        assert_eq!(cache.lookup(2, b"k"), None); // cache now at epoch 2
        cache.insert(1, b"k".to_vec(), bytes(b"seven")); // resolved pre-commit
        assert_eq!(cache.lookup(2, b"k"), None);
    }

    #[test]
    fn capacity_zero_disables() {
        let cache = SnapshotCache::new(0);
        cache.insert(1, b"k".to_vec(), bytes(b"seven"));
        assert_eq!(cache.lookup(1, b"k"), None);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_cap_drops_new_fills() {
        let cache = SnapshotCache::new(1);
        cache.insert(1, b"a".to_vec(), bytes(b"one"));
        cache.insert(1, b"b".to_vec(), bytes(b"two"));
        assert_eq!(cache.lookup(1, b"a"), Some(bytes(b"one")));
        assert_eq!(cache.lookup(1, b"b"), None);
    }
}
