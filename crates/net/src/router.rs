//! `ode-router` — a shard-routing front tier for ode-net.
//!
//! An [`OdeRouter`] listens on one address speaking wire-protocol v2
//! and forwards every request to one of N backend [`crate::OdeServer`]
//! shards chosen by `shard_of(oid)` (see [`crate::ShardMap`]). Clients
//! connect to the router exactly as they would to a single server:
//! same handshake, same frames, same pipelining. The router remaps
//! sequence ids per backend connection and re-tags responses with the
//! client's original ids, so a client may keep requests to many shards
//! in flight and receive their responses in whatever order the shards
//! finish.
//!
//! ## Ordering guarantees
//!
//! Requests naming the *same object* always route to the same shard
//! and travel one backend connection in client send order, so the
//! per-connection read-your-writes guarantee of a single `OdeServer`
//! survives the tier per oid. Requests naming *different* objects may
//! land on different shards and complete in any order — there are no
//! cross-shard transactions and no cross-object ordering.
//!
//! ## Faults
//!
//! When a backend connection drops, every request in flight on it is
//! answered with [`RemoteError::Unavailable`] — the router never
//! retries, because a request that reached a dead shard has an unknown
//! outcome and a silent retry could double-execute a write. The shard
//! then enters a reconnect-with-backoff window (doubling from
//! [`RouterConfig::reconnect_backoff`] up to
//! [`RouterConfig::reconnect_backoff_max`]); requests for its objects
//! fail fast with `Unavailable` until a dial succeeds. Other shards
//! are unaffected throughout.
//!
//! ## Scatter requests
//!
//! `Ping` is answered by the router itself. `Stats`, `Objects`, and
//! `ObjectsPage` fan out to every shard and merge: stats counters sum,
//! extent scans merge-sort by client-visible id (`ObjectsPage`
//! re-truncates to the requested limit). A scatter fails as a whole if
//! any shard is down — partial extents would be silent lies.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle, Scope};
use std::time::{Duration, Instant};

use ode::{Oid, Vid};
use ode_codec::varint;
use parking_lot::Mutex;
use polling::{Event, Poller};

use crate::client::{ClientConfig, OdeClient};
use crate::error::RemoteError;
use crate::protocol::{
    kind, read_frame_into, write_frame, FrameBuffer, Opcode, Request, Response, StatsReport, MAGIC,
};
use crate::shard::ShardMap;
use crate::NetError;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker threads — the maximum number of concurrently served
    /// client connections (further accepted connections wait in line).
    pub workers: usize,
    /// Dial + handshake timeout for backend connections.
    pub connect_timeout: Duration,
    /// First reconnect-backoff window after a shard connection fails;
    /// doubles per consecutive failure.
    pub reconnect_backoff: Duration,
    /// Backoff ceiling.
    pub reconnect_backoff_max: Duration,
    /// How often the health prober samples every member's epoch.
    pub probe_interval: Duration,
    /// Consecutive failed primary probes before the router drives a
    /// failover (given a live replica to promote).
    pub failover_after: u32,
    /// Route reads from sessions that have not written to a shard onto
    /// that shard's replicas (pinned by `ReadFloor` at the primary's
    /// last probed epoch). Writes always go to the primary, and a
    /// session's first write to a shard flips its reads there too.
    pub replica_reads: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            workers: 16,
            connect_timeout: Duration::from_secs(5),
            reconnect_backoff: Duration::from_millis(50),
            reconnect_backoff_max: Duration::from_secs(2),
            probe_interval: Duration::from_millis(150),
            failover_after: 3,
            replica_reads: true,
        }
    }
}

/// One shard's member set, as handed to
/// [`OdeRouter::bind_with_members`]: the address writes go to plus the
/// replicas tailing its WAL (possibly none).
#[derive(Debug, Clone)]
pub struct ShardMembership {
    /// The shard's current primary.
    pub primary: SocketAddr,
    /// Read-only replicas of that primary.
    pub replicas: Vec<SocketAddr>,
}

impl ShardMembership {
    /// A single-node shard (no replicas).
    pub fn solo(primary: SocketAddr) -> ShardMembership {
        ShardMembership {
            primary,
            replicas: Vec::new(),
        }
    }
}

/// One shard's live membership view, maintained by the prober.
struct MemberState {
    primary: SocketAddr,
    /// Last epoch a primary probe reported.
    primary_epoch: u64,
    /// Consecutive failed primary probes.
    primary_failures: u32,
    replicas: Vec<SocketAddr>,
    /// Last probed epoch per replica; `None` = unreachable.
    replica_epochs: Vec<Option<u64>>,
    /// Set for the promotion window: every dial to this shard fails
    /// with `Unavailable` (strictly no retry) until the new primary is
    /// installed or the attempt is abandoned.
    promoting: bool,
}

/// The router's membership table: one probed member set per shard.
struct Membership {
    shards: Vec<Mutex<MemberState>>,
    /// Round-robin cursor for spreading read connections over replicas.
    read_rr: AtomicU64,
}

impl Membership {
    fn new(members: Vec<ShardMembership>) -> Membership {
        Membership {
            shards: members
                .into_iter()
                .map(|m| {
                    let n = m.replicas.len();
                    Mutex::new(MemberState {
                        primary: m.primary,
                        primary_epoch: 0,
                        primary_failures: 0,
                        replicas: m.replicas,
                        replica_epochs: vec![None; n],
                        promoting: false,
                    })
                })
                .collect(),
            read_rr: AtomicU64::new(0),
        }
    }

    fn primary_addr(&self, shard: usize) -> SocketAddr {
        self.shards[shard].lock().primary
    }

    /// The primary's last probed epoch — the read floor pinned onto
    /// replica-read connections.
    fn primary_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].lock().primary_epoch
    }

    fn promoting(&self, shard: usize) -> bool {
        self.shards[shard].lock().promoting
    }

    /// Whether any replica answered its last probe (a read connection
    /// would have somewhere to go).
    fn has_live_replica(&self, shard: usize) -> bool {
        self.shards[shard]
            .lock()
            .replica_epochs
            .iter()
            .any(Option::is_some)
    }

    /// Address for a *read* connection: a live replica round-robin,
    /// falling back to the primary when none is reachable.
    fn pick_read_addr(&self, shard: usize) -> SocketAddr {
        let ms = self.shards[shard].lock();
        let live: Vec<SocketAddr> = ms
            .replicas
            .iter()
            .zip(&ms.replica_epochs)
            .filter_map(|(a, e)| e.map(|_| *a))
            .collect();
        if live.is_empty() {
            return ms.primary;
        }
        let i = self.read_rr.fetch_add(1, Ordering::Relaxed) as usize;
        live[i % live.len()]
    }
}

/// A snapshot of the router's lifetime counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStatsReport {
    /// Client connections accepted over the router's lifetime.
    pub client_connections: u64,
    /// Requests forwarded to a backend (scatter requests count once per
    /// shard).
    pub forwarded: u64,
    /// Requests answered by the router without touching a backend
    /// (`Ping`).
    pub answered_locally: u64,
    /// Scatter requests fanned out to every shard.
    pub gathers: u64,
    /// Successful backend dials (including reconnects).
    pub backend_connects: u64,
    /// Backend connections lost (each triggers a backoff window).
    pub shard_failures: u64,
    /// `Unavailable` error frames sent to clients.
    pub unavailable_errors: u64,
    /// Undecodable frames, from clients or backends.
    pub protocol_errors: u64,
    /// Read requests forwarded to a replica instead of a primary.
    pub replica_reads: u64,
    /// Failovers this router drove to completion (a replica promoted
    /// and installed as the shard's primary).
    pub failovers: u64,
}

#[derive(Default)]
struct RouterStats {
    client_connections: AtomicU64,
    forwarded: AtomicU64,
    answered_locally: AtomicU64,
    gathers: AtomicU64,
    backend_connects: AtomicU64,
    shard_failures: AtomicU64,
    unavailable_errors: AtomicU64,
    protocol_errors: AtomicU64,
    replica_reads: AtomicU64,
    failovers: AtomicU64,
}

impl RouterStats {
    fn report(&self) -> RouterStatsReport {
        RouterStatsReport {
            client_connections: self.client_connections.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            answered_locally: self.answered_locally.load(Ordering::Relaxed),
            gathers: self.gathers.load(Ordering::Relaxed),
            backend_connects: self.backend_connects.load(Ordering::Relaxed),
            shard_failures: self.shard_failures.load(Ordering::Relaxed),
            unavailable_errors: self.unavailable_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every session of one router.
struct RouterShared {
    membership: Membership,
    map: ShardMap,
    config: RouterConfig,
    stats: RouterStats,
    /// Round-robin cursor for `Pnew` placement: new objects have no id
    /// yet, so the router picks their shard and the minted id then
    /// carries the placement forever.
    next_pnew_shard: AtomicU64,
    shutdown: AtomicBool,
}

type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A running shard router. See the module docs.
pub struct OdeRouter {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    conns: ConnRegistry,
    accept_handle: Option<JoinHandle<()>>,
    prober_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OdeRouter {
    /// Bind `addr` (port 0 picks a free port) and start routing to
    /// `backends`, each a single-node shard with no replicas. The order
    /// of `backends` **is** the shard map — it must be identical on
    /// every router over the same tier.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<SocketAddr>,
        config: RouterConfig,
    ) -> io::Result<OdeRouter> {
        let members = backends.into_iter().map(ShardMembership::solo).collect();
        OdeRouter::bind_with_members(addr, members, config)
    }

    /// [`OdeRouter::bind`] with full per-shard membership: each shard
    /// has a primary plus replicas. The router probes every member's
    /// epoch on [`RouterConfig::probe_interval`], routes replica reads
    /// behind a `ReadFloor` pin, and on
    /// [`RouterConfig::failover_after`] consecutive failed primary
    /// probes promotes the most-caught-up live replica and installs it
    /// as the shard's primary.
    pub fn bind_with_members(
        addr: impl ToSocketAddrs,
        members: Vec<ShardMembership>,
        config: RouterConfig,
    ) -> io::Result<OdeRouter> {
        if members.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend shard",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let map = ShardMap::new(members.len());
        let shared = Arc::new(RouterShared {
            membership: Membership::new(members),
            map,
            config: config.clone(),
            stats: RouterStats::default(),
            next_pnew_shard: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));

        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&conn_rx);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name(format!("ode-router-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, &conns))
                    .expect("spawn router worker thread")
            })
            .collect();

        let accept_handle = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ode-router-accept".into())
                .spawn(move || {
                    let mut next_id = 0u64;
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        shared
                            .stats
                            .client_connections
                            .fetch_add(1, Ordering::Relaxed);
                        next_id += 1;
                        if conn_tx.send((next_id, stream)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn router accept thread")
        };

        let prober_handle = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ode-router-prober".into())
                .spawn(move || prober_loop(&shared))
                .expect("spawn router prober thread")
        };

        Ok(OdeRouter {
            addr,
            shared,
            conns,
            accept_handle: Some(accept_handle),
            prober_handle: Some(prober_handle),
            workers,
        })
    }

    /// One shard's current membership as the prober sees it: the
    /// primary address and its last probed epoch, then each replica
    /// with its last probed epoch (`None` = unreachable).
    pub fn shard_members(&self, shard: usize) -> (SocketAddr, u64, Vec<(SocketAddr, Option<u64>)>) {
        let ms = self.shared.membership.shards[shard].lock();
        (
            ms.primary,
            ms.primary_epoch,
            ms.replicas
                .iter()
                .copied()
                .zip(ms.replica_epochs.iter().copied())
                .collect(),
        )
    }

    /// The address the router is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard map this router routes by.
    pub fn shard_map(&self) -> ShardMap {
        self.shared.map
    }

    /// A snapshot of the router's counters.
    pub fn stats(&self) -> RouterStatsReport {
        self.shared.stats.report()
    }

    /// Stop accepting, close every client session (which closes its
    /// backend connections), and join all router threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober_handle.take() {
            let _ = handle.join();
        }
        for (_, stream) in self.conns.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OdeRouter {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    shared: &RouterShared,
    rx: &Mutex<mpsc::Receiver<(u64, TcpStream)>>,
    conns: &ConnRegistry,
) {
    loop {
        let next = rx.lock().recv();
        let (id, stream) = match next {
            Ok(pair) => pair,
            Err(_) => return,
        };
        if let Ok(handle) = stream.try_clone() {
            conns.lock().insert(id, handle);
        }
        let _ = serve_session(shared, stream);
        conns.lock().remove(&id);
    }
}

// ---------------------------------------------------------------------------
// Health probing and driven failover
// ---------------------------------------------------------------------------

/// The router's health loop: sample every member's epoch each tick,
/// and drive a failover when a primary stays dead.
fn prober_loop(shared: &RouterShared) {
    loop {
        for shard in 0..shared.map.shard_count() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            probe_shard(shared, shard);
        }
        // Chunked sleep so shutdown is prompt.
        let deadline = Instant::now() + shared.config.probe_interval;
        while Instant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Dial a member and ask its applied epoch. A fresh connection per
/// probe keeps liveness honest: a wedged node fails the dial, not just
/// the request.
fn probe_epoch(addr: SocketAddr, timeout: Duration) -> Option<u64> {
    let config = ClientConfig {
        read_timeout: Some(timeout),
        write_timeout: Some(timeout),
        retry_reads: false,
    };
    let mut client = OdeClient::connect(addr, config).ok()?;
    client.epoch().ok()
}

fn probe_shard(shared: &RouterShared, shard: usize) {
    let (primary, replicas) = {
        let ms = shared.membership.shards[shard].lock();
        (ms.primary, ms.replicas.clone())
    };
    let timeout = shared.config.connect_timeout.min(Duration::from_secs(1));
    let replica_epochs: Vec<Option<u64>> = replicas
        .iter()
        .map(|&addr| probe_epoch(addr, timeout))
        .collect();
    let primary_epoch = probe_epoch(primary, timeout);
    let drive_failover = {
        let mut ms = shared.membership.shards[shard].lock();
        // Membership may have moved under us (another failover path);
        // only publish results for the set we probed.
        if ms.primary == primary && ms.replicas == replicas {
            ms.replica_epochs = replica_epochs;
            match primary_epoch {
                Some(e) => {
                    ms.primary_epoch = e;
                    ms.primary_failures = 0;
                    false
                }
                None => {
                    ms.primary_failures += 1;
                    ms.primary_failures >= shared.config.failover_after
                        && ms.replica_epochs.iter().any(Option::is_some)
                }
            }
        } else {
            false
        }
    };
    if drive_failover {
        attempt_failover(shared, shard);
    }
}

/// Promote the most-caught-up live replica and install it as the
/// shard's primary. During the promotion window every dial to the
/// shard fails `Unavailable` (strictly no retry — a request that
/// raced the old primary's death has an unknown outcome).
fn attempt_failover(shared: &RouterShared, shard: usize) {
    let (idx, addr, epoch) = {
        let mut ms = shared.membership.shards[shard].lock();
        let best = ms
            .replica_epochs
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .max_by_key(|&(_, e)| e);
        let Some((idx, epoch)) = best else { return };
        ms.promoting = true;
        (idx, ms.replicas[idx], epoch)
    };
    let timeout = shared.config.connect_timeout.min(Duration::from_secs(2));
    let promoted = (|| {
        let config = ClientConfig {
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
            retry_reads: false,
        };
        OdeClient::connect(addr, config)?.promote()
    })();
    let mut ms = shared.membership.shards[shard].lock();
    ms.promoting = false;
    if promoted.is_ok() && ms.replicas.get(idx) == Some(&addr) {
        let old = std::mem::replace(&mut ms.primary, addr);
        ms.replicas.remove(idx);
        ms.replica_epochs.remove(idx);
        // The dead ex-primary stays listed as a (currently unreachable)
        // replica: when it rejoins the shipping channel fences its
        // unshipped tail and it starts answering probes again.
        ms.replicas.push(old);
        ms.replica_epochs.push(None);
        ms.primary_epoch = epoch;
        ms.primary_failures = 0;
        shared.stats.failovers.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Routing and id translation
// ---------------------------------------------------------------------------

/// What kind of scatter a fan-out request is, and how to merge it.
#[derive(Debug, Clone, Copy)]
enum GatherKind {
    Stats,
    Objects,
    Page { limit: u64 },
}

/// Where one client request goes.
enum Route {
    /// Answered by the router itself.
    Local(Response),
    /// Forwarded to one shard, request already in backend id-space.
    Single { shard: usize, backend: Request },
    /// Fanned out to every shard; carries the original (client
    /// id-space) request so per-shard variants can be derived.
    Gather { kind: GatherKind, original: Request },
}

/// Decide a request's route and translate its ids to backend space.
fn route(req: Request, map: ShardMap, next_pnew: &AtomicU64) -> Route {
    use Request as R;
    let single = |shard, backend| Route::Single { shard, backend };
    match req {
        R::Ping => Route::Local(Response::Pong),
        // Node-local requests: epochs are per shard (not comparable
        // across the tier), read floors are pinned by the router
        // itself, and promotion is the router's failover to drive.
        R::Epoch | R::ReadFloor { .. } | R::Promote => Route::Local(Response::Err(
            RemoteError::BadRequest("node-local request; connect to a node directly".into()),
        )),
        R::Stats => Route::Gather {
            kind: GatherKind::Stats,
            original: R::Stats,
        },
        R::Objects { tag } => Route::Gather {
            kind: GatherKind::Objects,
            original: R::Objects { tag },
        },
        R::ObjectsPage { tag, after, limit } => Route::Gather {
            kind: GatherKind::Page { limit },
            original: R::ObjectsPage { tag, after, limit },
        },
        R::Pnew { tag, body } => {
            let n = map.shard_count() as u64;
            let shard = (next_pnew.fetch_add(1, Ordering::Relaxed) % n) as usize;
            single(shard, R::Pnew { tag, body })
        }
        R::Deref { oid, tag } => single(
            map.shard_of(oid),
            R::Deref {
                oid: map.backend_oid(oid),
                tag,
            },
        ),
        R::Update { oid, tag, body } => single(
            map.shard_of(oid),
            R::Update {
                oid: map.backend_oid(oid),
                tag,
                body,
            },
        ),
        R::NewVersion { oid } => single(
            map.shard_of(oid),
            R::NewVersion {
                oid: map.backend_oid(oid),
            },
        ),
        R::Pdelete { oid } => single(
            map.shard_of(oid),
            R::Pdelete {
                oid: map.backend_oid(oid),
            },
        ),
        R::VersionHistory { oid } => single(
            map.shard_of(oid),
            R::VersionHistory {
                oid: map.backend_oid(oid),
            },
        ),
        R::CurrentVersion { oid } => single(
            map.shard_of(oid),
            R::CurrentVersion {
                oid: map.backend_oid(oid),
            },
        ),
        R::VersionCount { oid } => single(
            map.shard_of(oid),
            R::VersionCount {
                oid: map.backend_oid(oid),
            },
        ),
        R::Exists { oid } => single(
            map.shard_of(oid),
            R::Exists {
                oid: map.backend_oid(oid),
            },
        ),
        R::DerefVersion { vid, tag } => single(
            map.shard_of_vid(vid),
            R::DerefVersion {
                vid: map.backend_vid(vid),
                tag,
            },
        ),
        R::UpdateVersion { vid, tag, body } => single(
            map.shard_of_vid(vid),
            R::UpdateVersion {
                vid: map.backend_vid(vid),
                tag,
                body,
            },
        ),
        R::NewVersionFrom { vid } => single(
            map.shard_of_vid(vid),
            R::NewVersionFrom {
                vid: map.backend_vid(vid),
            },
        ),
        R::PdeleteVersion { vid } => single(
            map.shard_of_vid(vid),
            R::PdeleteVersion {
                vid: map.backend_vid(vid),
            },
        ),
        R::Dprevious { vid } => single(
            map.shard_of_vid(vid),
            R::Dprevious {
                vid: map.backend_vid(vid),
            },
        ),
        R::Dnext { vid } => single(
            map.shard_of_vid(vid),
            R::Dnext {
                vid: map.backend_vid(vid),
            },
        ),
        R::Tprevious { vid } => single(
            map.shard_of_vid(vid),
            R::Tprevious {
                vid: map.backend_vid(vid),
            },
        ),
        R::Tnext { vid } => single(
            map.shard_of_vid(vid),
            R::Tnext {
                vid: map.backend_vid(vid),
            },
        ),
        R::ObjectOf { vid } => single(
            map.shard_of_vid(vid),
            R::ObjectOf {
                vid: map.backend_vid(vid),
            },
        ),
        R::VersionExists { vid } => single(
            map.shard_of_vid(vid),
            R::VersionExists {
                vid: map.backend_vid(vid),
            },
        ),
        R::HistoryBetween { oid, from, to } => {
            let shard = map.shard_of(oid);
            // Stamps are vid values, so the client-space range maps to
            // backend space by the same residue decomposition as ids:
            // the backend range is every backend stamp whose minted
            // client stamp falls inside [from, to].
            let s = shard as u64;
            if to < s || from > to {
                // No stamp on this shard can fall in the range.
                return Route::Local(Response::Versions(Vec::new()));
            }
            let bfrom = map.backend_cursor(Oid(from), shard).0;
            let bto = map.backend_vid(Vid(to)).0;
            single(
                shard,
                R::HistoryBetween {
                    oid: map.backend_oid(oid),
                    from: bfrom,
                    to: bto,
                },
            )
        }
        R::DiffVersions { from, to } => {
            let shard = map.shard_of_vid(from);
            if map.shard_of_vid(to) != shard {
                return Route::Local(Response::Err(RemoteError::BadRequest(
                    "diff endpoints live on different shards (different objects)".into(),
                )));
            }
            single(
                shard,
                R::DiffVersions {
                    from: map.backend_vid(from),
                    to: map.backend_vid(to),
                },
            )
        }
        R::Merge { a, b, policy } => {
            let shard = map.shard_of_vid(a);
            if map.shard_of_vid(b) != shard {
                return Route::Local(Response::Err(RemoteError::BadRequest(
                    "merge parents live on different shards (different objects)".into(),
                )));
            }
            single(
                shard,
                R::Merge {
                    a: map.backend_vid(a),
                    b: map.backend_vid(b),
                    policy,
                },
            )
        }
    }
}

/// The per-shard variant of a scatter request.
fn per_shard_request(original: &Request, map: ShardMap, shard: usize) -> Request {
    match original {
        Request::Stats => Request::Stats,
        Request::Objects { tag } => Request::Objects { tag: *tag },
        Request::ObjectsPage { tag, after, limit } => Request::ObjectsPage {
            tag: *tag,
            after: map.backend_cursor(*after, shard),
            limit: *limit,
        },
        other => unreachable!("{:?} is not a scatter request", other.opcode()),
    }
}

/// Rewrite every id embedded in a backend response into client space.
fn translate_response(resp: Response, map: ShardMap, shard: usize) -> Response {
    match resp {
        Response::Created { oid, vid } => Response::Created {
            oid: map.client_oid(oid, shard),
            vid: map.client_vid(vid, shard),
        },
        Response::Version(vid) => Response::Version(map.client_vid(vid, shard)),
        Response::Body { vid, bytes } => Response::Body {
            vid: map.client_vid(vid, shard),
            bytes,
        },
        Response::MaybeVersion(v) => Response::MaybeVersion(v.map(|v| map.client_vid(v, shard))),
        Response::Versions(vs) => {
            Response::Versions(vs.into_iter().map(|v| map.client_vid(v, shard)).collect())
        }
        Response::Objects(os) => {
            Response::Objects(os.into_iter().map(|o| map.client_oid(o, shard)).collect())
        }
        Response::Object(oid) => Response::Object(map.client_oid(oid, shard)),
        Response::Diff(d) => Response::Diff(crate::protocol::DiffSummary {
            from: map.client_vid(d.from, shard),
            to: map.client_vid(d.to, shard),
            ..d
        }),
        // Conflict ranges are byte offsets in the merge base — shard
        // agnostic; only the new version id needs remapping.
        Response::Merged { vid, conflicts } => Response::Merged {
            vid: vid.map(|v| map.client_vid(v, shard)),
            conflicts,
        },
        Response::Err(e) => Response::Err(match e {
            RemoteError::UnknownObject(oid) => {
                RemoteError::UnknownObject(map.client_oid(oid, shard))
            }
            RemoteError::UnknownVersion(vid) => {
                RemoteError::UnknownVersion(map.client_vid(vid, shard))
            }
            RemoteError::LastVersion(vid) => RemoteError::LastVersion(map.client_vid(vid, shard)),
            other => other,
        }),
        other => other, // Pong, Stats, Unit, Count, Flag: no ids
    }
}

/// Sum per-shard stats reports into one tier-wide report.
fn merge_stats(parts: Vec<StatsReport>) -> StatsReport {
    let mut merged = StatsReport::default();
    let mut per_op = [0u64; crate::protocol::OPCODE_COUNT];
    for part in parts {
        merged.active_connections += part.active_connections;
        merged.total_connections += part.total_connections;
        merged.bytes_in += part.bytes_in;
        merged.bytes_out += part.bytes_out;
        merged.protocol_errors += part.protocol_errors;
        merged.op_errors += part.op_errors;
        merged.snapshot_hits += part.snapshot_hits;
        merged.snapshot_misses += part.snapshot_misses;
        merged.slow_client_evictions += part.slow_client_evictions;
        merged.materialize_hits += part.materialize_hits;
        merged.materialize_misses += part.materialize_misses;
        merged.storage.read_txs += part.storage.read_txs;
        merged.storage.write_txs += part.storage.write_txs;
        merged.storage.reader_waits += part.storage.reader_waits;
        merged.storage.reader_wait_nanos += part.storage.reader_wait_nanos;
        merged.storage.writer_waits += part.storage.writer_waits;
        merged.storage.writer_wait_nanos += part.storage.writer_wait_nanos;
        merged.storage.wal_syncs += part.storage.wal_syncs;
        merged.storage.group_syncs += part.storage.group_syncs;
        merged.storage.group_commit_txns += part.storage.group_commit_txns;
        merged.storage.bytes_shipped += part.storage.bytes_shipped;
        merged.storage.replica_lag_epochs += part.storage.replica_lag_epochs;
        merged.storage.failovers += part.storage.failovers;
        merged.storage.write_conflicts += part.storage.write_conflicts;
        merged.storage.write_retries += part.storage.write_retries;
        // A max, not a sum: the largest cohort any one shard saw.
        merged.storage.group_batch_max = merged
            .storage
            .group_batch_max
            .max(part.storage.group_batch_max);
        for (op, n) in part.requests {
            per_op[op as usize] += n;
        }
    }
    merged.requests = Opcode::ALL
        .iter()
        .filter_map(|&op| {
            let n = per_op[op as usize];
            (n != 0).then_some((op, n))
        })
        .collect();
    merged
}

/// Merge per-shard extent scans (already translated to client ids,
/// each ascending) into one ascending list.
fn merge_objects(parts: Vec<Vec<Oid>>, limit: Option<u64>) -> Vec<Oid> {
    let mut all: Vec<Oid> = parts.into_iter().flatten().collect();
    all.sort_unstable_by_key(|o| o.0);
    if let Some(limit) = limit {
        all.truncate(limit as usize);
    }
    all
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

/// One in-flight scatter: per-shard parts accumulate until every shard
/// has answered (or failed), then the merged response ships exactly
/// once.
struct Gather {
    client_seq: u64,
    kind: GatherKind,
    parts: Vec<Option<Response>>,
    remaining: usize,
    error: Option<RemoteError>,
    done: bool,
}

impl Gather {
    fn new(client_seq: u64, kind: GatherKind, shards: usize) -> Gather {
        Gather {
            client_seq,
            kind,
            parts: (0..shards).map(|_| None).collect(),
            remaining: shards,
            error: None,
            done: false,
        }
    }

    /// Record one shard's outcome; returns the merged response when
    /// this was the last part.
    fn complete_part(
        &mut self,
        shard: usize,
        part: Result<Response, RemoteError>,
    ) -> Option<Response> {
        if self.done {
            return None;
        }
        match part {
            Ok(Response::Err(e)) | Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
            Ok(resp) => self.parts[shard] = Some(resp),
        }
        self.remaining -= 1;
        if self.remaining > 0 {
            return None;
        }
        self.done = true;
        if let Some(e) = self.error.take() {
            return Some(Response::Err(e));
        }
        Some(self.merge())
    }

    fn merge(&mut self) -> Response {
        let parts: Vec<Response> = self.parts.iter_mut().map(|p| p.take().unwrap()).collect();
        match self.kind {
            GatherKind::Stats => {
                let mut reports = Vec::with_capacity(parts.len());
                for p in parts {
                    match p {
                        Response::Stats(r) => reports.push(r),
                        other => {
                            return Response::Err(RemoteError::Unavailable(format!(
                                "shard returned a {} response to a stats scatter",
                                other.kind_name()
                            )))
                        }
                    }
                }
                Response::Stats(merge_stats(reports))
            }
            GatherKind::Objects | GatherKind::Page { .. } => {
                let mut lists = Vec::with_capacity(parts.len());
                for p in parts {
                    match p {
                        Response::Objects(oids) => lists.push(oids),
                        other => {
                            return Response::Err(RemoteError::Unavailable(format!(
                                "shard returned a {} response to an extent scatter",
                                other.kind_name()
                            )))
                        }
                    }
                }
                let limit = match self.kind {
                    GatherKind::Page { limit } => Some(limit),
                    _ => None,
                };
                Response::Objects(merge_objects(lists, limit))
            }
        }
    }
}

/// What a backend owes for one forwarded sequence id.
enum Pending {
    /// A single-shard request: answer the client under this seq.
    Single { client_seq: u64 },
    /// One part of a scatter.
    Part(Arc<Mutex<Gather>>),
    /// Router-internal bookkeeping (the `ReadFloor` pin sent when a
    /// replica-read connection opens): the response is swallowed.
    Internal,
}

/// The correlation half of one session's connection to one shard.
struct SlotCtl {
    alive: bool,
    /// Raw handle for tearing the connection down: shutting it makes
    /// the pump's registered dup readable (HUP), so the pump notices
    /// without being told.
    raw: Option<TcpStream>,
    /// Bumped on every successful dial. A failure report carries the
    /// generation it observed, so a stale error from a connection that
    /// has already been replaced can't tear down its successor.
    generation: u64,
    /// Next backend sequence id. Never reset across reconnects, so a
    /// bseq is unique for the session's lifetime.
    next_bseq: u64,
    /// Requests written to this backend and not yet answered.
    pending: HashMap<u64, Pending>,
    /// Consecutive connection failures (doubles the backoff).
    failures: u32,
    /// No dial is attempted before this instant.
    down_until: Option<Instant>,
}

/// One session's lazily-dialed connection to one shard.
///
/// Lock order, everywhere: `ctl` → `writer` → (gather) →
/// `client_writer`. The ctl lock is never held across a backend socket
/// write, and whichever path removes a [`Pending`] entry answers the
/// client — each client seq is answered exactly once.
struct ShardSlot {
    ctl: Mutex<SlotCtl>,
    writer: Mutex<Option<BufWriter<TcpStream>>>,
}

impl ShardSlot {
    fn new(_shard: usize) -> ShardSlot {
        ShardSlot {
            ctl: Mutex::new(SlotCtl {
                alive: false,
                raw: None,
                generation: 0,
                next_bseq: 0,
                pending: HashMap::new(),
                failures: 0,
                down_until: None,
            }),
            writer: Mutex::new(None),
        }
    }
}

/// Per-client-connection state, shared between the client-reader
/// thread and the session's single backend-pump thread.
///
/// Slots come in two banks of `shard_count` each: slot `s` is the
/// session's *write* connection to shard `s`'s primary, slot
/// `shard_count + s` its *read* connection (a replica when one is
/// live, pinned by `ReadFloor`; otherwise the primary again).
///
/// Backend responses are multiplexed: instead of one reader thread per
/// live shard connection, the session runs at most one [`backend_pump`]
/// thread that `epoll`-waits on every backend socket at once, so a
/// session costs two threads no matter how many shards it talks to.
struct Session<'a> {
    shared: &'a RouterShared,
    slots: Vec<ShardSlot>,
    /// Set once the session has written to a shard: its reads flip to
    /// the primary bank forever (read-your-writes without cross-node
    /// epoch bookkeeping).
    wrote: Vec<AtomicBool>,
    client_writer: Mutex<BufWriter<TcpStream>>,
    /// Readiness multiplexer for the backend pump.
    poller: Poller,
    /// Freshly dialed connections awaiting pump registration:
    /// `(slot, generation, pump's read half)`. Pushed *before*
    /// [`Poller::notify`], drained by the pump.
    handoff: Mutex<Vec<(usize, u64, TcpStream)>>,
    /// Tells the pump to exit (session teardown).
    hangup: AtomicBool,
    /// Whether the pump thread has been spawned yet — it starts
    /// lazily with the session's first backend dial, so sessions that
    /// never reach a shard never pay for it.
    pump_started: AtomicBool,
}

impl Session<'_> {
    /// Which slot a request for `shard` should ride.
    fn pick_slot(&self, shard: usize, is_read: bool) -> usize {
        let n = self.shared.map.shard_count();
        if is_read
            && self.shared.config.replica_reads
            && !self.wrote[shard].load(Ordering::Relaxed)
            && self.shared.membership.has_live_replica(shard)
        {
            n + shard
        } else {
            if !is_read {
                self.wrote[shard].store(true, Ordering::Relaxed);
            }
            shard
        }
    }

    /// Ship one response frame to the client. `flush` is the
    /// coalescing decision — callers pass `true` when they are about
    /// to block with nothing else to write.
    fn send_client(&self, seq: u64, resp: &Response, flush: bool) -> io::Result<()> {
        if matches!(resp, Response::Err(RemoteError::Unavailable(_))) {
            self.shared
                .stats
                .unavailable_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        let buf = resp.encode(seq);
        self.send_client_bytes(&buf, flush)
    }

    /// Ship an already-encoded response payload to the client.
    fn send_client_bytes(&self, buf: &[u8], flush: bool) -> io::Result<()> {
        let mut w = self.client_writer.lock();
        write_frame(&mut *w, buf)?;
        if flush {
            w.flush()?;
        }
        Ok(())
    }

    /// Kill every backend connection and stop the pump (session
    /// teardown): the pump wakes from its wait and exits.
    fn shutdown_backends(&self) {
        for slot in &self.slots {
            let mut ctl = slot.ctl.lock();
            ctl.alive = false;
            if let Some(raw) = ctl.raw.take() {
                let _ = raw.shutdown(Shutdown::Both);
            }
        }
        self.hangup.store(true, Ordering::Release);
        let _ = self.poller.notify();
    }
}

// ---------------------------------------------------------------------------
// Session threads
// ---------------------------------------------------------------------------

fn serve_session(shared: &RouterShared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);

    // Handshake: expect the client's magic, echo it back — the router
    // is indistinguishable from a single server here.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    let n = shared.map.shard_count();
    let session = Session {
        shared,
        slots: (0..n * 2).map(ShardSlot::new).collect(),
        wrote: (0..n).map(|_| AtomicBool::new(false)).collect(),
        client_writer: Mutex::new(BufWriter::new(stream)),
        poller: Poller::new()?,
        handoff: Mutex::new(Vec::new()),
        hangup: AtomicBool::new(false),
        pump_started: AtomicBool::new(false),
    };
    {
        let mut w = session.client_writer.lock();
        w.write_all(&MAGIC)?;
        w.flush()?;
    }

    thread::scope(|scope| {
        let result = client_loop(scope, &session, &mut reader);
        // Kill the backends and wake the pump; the scope joins it.
        session.shutdown_backends();
        result
    })
}

/// The session's client-facing half: decode frames, route each one,
/// and coalesce flushes — backend writers and the client writer are
/// only flushed when the client has nothing more buffered.
fn client_loop<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    reader: &mut BufReader<TcpStream>,
) -> io::Result<()> {
    let shared = session.shared;
    let mut dirty_slots = vec![false; session.slots.len()];
    let mut client_dirty = false;
    // Reused across frames: the inbound payload and the outbound
    // backend-frame scratch.
    let mut payload = Vec::new();
    let mut scratch = Vec::new();
    loop {
        // Before blocking on the socket, flush everything owed: the
        // batch the client pipelined is fully forwarded, and our own
        // locally-answered frames are on their way.
        if reader.buffer().is_empty() {
            if client_dirty {
                session.client_writer.lock().flush()?;
                client_dirty = false;
            }
            for (i, dirty) in dirty_slots.iter_mut().enumerate() {
                if *dirty {
                    *dirty = false;
                    if let Some(w) = session.slots[i].writer.lock().as_mut() {
                        let _ = w.flush();
                    }
                }
            }
        }
        match read_frame_into(reader, &mut payload) {
            Ok(true) => {}
            Ok(false) => return Ok(()), // client hung up cleanly
            Err(NetError::Io(e)) => return Err(e),
            Err(_) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        };
        // Fast path: most requests are `seq opcode id rest…` with the
        // routing id as their first field. Patching the two leading
        // varints straight into a backend frame skips the full
        // decode/re-encode round trip; the patched ids are canonical
        // varints either way, so a shard sees exactly the bytes the
        // slow path would have sent. Anything unparseable falls
        // through to the slow path for a proper error.
        if let Some((shard, sent)) = fast_forward(scope, session, &payload, &mut scratch) {
            match sent {
                Sent::Forwarded => dirty_slots[shard] = true,
                Sent::Answered => client_dirty = true,
            }
            continue;
        }
        let (seq, request) = match Request::decode(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // Well-delimited frame, bad payload: the stream is
                // still in sync, report and continue (server behavior).
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = Request::decode_seq(&payload).unwrap_or(0);
                let response = Response::Err(RemoteError::BadRequest(e.to_string()));
                session.send_client(seq, &response, false)?;
                client_dirty = true;
                continue;
            }
        };
        match route(request, shared.map, &shared.next_pnew_shard) {
            Route::Local(resp) => {
                shared
                    .stats
                    .answered_locally
                    .fetch_add(1, Ordering::Relaxed);
                session.send_client(seq, &resp, false)?;
                client_dirty = true;
            }
            Route::Single { shard, backend } => {
                let slot = session.pick_slot(shard, backend.is_read());
                let build = |bseq, out: &mut Vec<u8>| *out = backend.encode(bseq);
                if route_single(scope, session, slot, seq, &mut scratch, build).forwarded() {
                    dirty_slots[slot] = true;
                } else {
                    client_dirty = true;
                }
            }
            Route::Gather { kind, original } => {
                shared.stats.gathers.fetch_add(1, Ordering::Relaxed);
                let shards = shared.map.shard_count();
                let gather = Arc::new(Mutex::new(Gather::new(seq, kind, shards)));
                // Scatters always hit the primary bank: a merged extent
                // or stats report must not mix replica lag in.
                for (shard, dirty) in dirty_slots.iter_mut().enumerate().take(shards) {
                    let backend = per_shard_request(&original, shared.map, shard);
                    match route_part(scope, session, shard, &backend, &mut scratch, &gather) {
                        Sent::Forwarded => *dirty = true,
                        Sent::Answered => client_dirty = true,
                    }
                }
            }
        }
    }
}

/// Forward an id-keyed (or `Pnew`) request by patching its leading
/// varints in place, skipping the full `Request` decode. Returns the
/// shard it went to, or `None` when the frame needs the slow path —
/// a local answer, a scatter, or a payload whose head doesn't parse.
///
/// Validation of everything after the routing id is delegated to the
/// shard: a malformed tail comes back as the same `BadRequest` frame
/// the router itself would have produced, because shard and router run
/// the same decoder.
fn fast_forward<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    payload: &[u8],
    scratch: &mut Vec<u8>,
) -> Option<(usize, Sent)> {
    let shared = session.shared;
    let map = shared.map;
    let (seq, seq_len) = varint::read_u64(payload).ok()?;
    let op = Opcode::from_u8(*payload.get(seq_len)?)?;
    let after_op = seq_len + 1;

    // `Pnew` carries no id — the router places it; everything after
    // the opcode forwards verbatim.
    if op == Opcode::Pnew {
        let n = map.shard_count() as u64;
        let shard = (shared.next_pnew_shard.fetch_add(1, Ordering::Relaxed) % n) as usize;
        let slot = session.pick_slot(shard, false);
        let sent = route_single(scope, session, slot, seq, scratch, |bseq, out| {
            varint::write_u64(out, bseq);
            out.extend_from_slice(&payload[seq_len..]);
        });
        return Some((slot, sent));
    }

    let oid_keyed = matches!(
        op,
        Opcode::Deref
            | Opcode::Update
            | Opcode::NewVersion
            | Opcode::Pdelete
            | Opcode::VersionHistory
            | Opcode::CurrentVersion
            | Opcode::VersionCount
            | Opcode::Exists
    );
    let vid_keyed = matches!(
        op,
        Opcode::DerefVersion
            | Opcode::UpdateVersion
            | Opcode::NewVersionFrom
            | Opcode::PdeleteVersion
            | Opcode::Dprevious
            | Opcode::Dnext
            | Opcode::Tprevious
            | Opcode::Tnext
            | Opcode::ObjectOf
            | Opcode::VersionExists
    );
    if !oid_keyed && !vid_keyed {
        return None; // Ping, Stats, extent scans: slow path
    }
    let is_read = !matches!(
        op,
        Opcode::Update
            | Opcode::NewVersion
            | Opcode::Pdelete
            | Opcode::UpdateVersion
            | Opcode::NewVersionFrom
            | Opcode::PdeleteVersion
    );
    let (id, id_len) = varint::read_u64(&payload[after_op..]).ok()?;
    let rest = &payload[after_op + id_len..];
    let (shard, backend_id) = if oid_keyed {
        (map.shard_of(Oid(id)), map.backend_oid(Oid(id)).0)
    } else {
        (map.shard_of_vid(Vid(id)), map.backend_vid(Vid(id)).0)
    };
    let slot = session.pick_slot(shard, is_read);
    let sent = route_single(scope, session, slot, seq, scratch, |bseq, out| {
        varint::write_u64(out, bseq);
        out.push(op as u8);
        varint::write_u64(out, backend_id);
        out.extend_from_slice(rest);
    });
    Some((slot, sent))
}

/// Outcome of trying to hand a request to a shard: either it is on the
/// backend's wire (an answer will come through the slot's pending
/// table), or the client was already answered (unavailable shard).
#[derive(PartialEq)]
enum Sent {
    Forwarded,
    Answered,
}

impl Sent {
    fn forwarded(&self) -> bool {
        matches!(self, Sent::Forwarded)
    }
}

/// Forward one single-shard request. `build` writes the backend frame
/// into the (cleared) scratch buffer once the backend sequence id is
/// known.
fn route_single<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    slot: usize,
    client_seq: u64,
    scratch: &mut Vec<u8>,
    build: impl FnOnce(u64, &mut Vec<u8>),
) -> Sent {
    forward(
        scope,
        session,
        slot,
        scratch,
        build,
        Pending::Single { client_seq },
        |session, err| {
            let _ = session.send_client(client_seq, &Response::Err(err), false);
        },
    )
}

/// Forward one part of a scatter.
fn route_part<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    shard: usize,
    backend: &Request,
    scratch: &mut Vec<u8>,
    gather: &Arc<Mutex<Gather>>,
) -> Sent {
    forward(
        scope,
        session,
        shard,
        scratch,
        |bseq, out| *out = backend.encode(bseq),
        Pending::Part(Arc::clone(gather)),
        |session, err| {
            let done = gather.lock().complete_part(shard, Err(err));
            if let Some(resp) = done {
                let seq = gather.lock().client_seq;
                let _ = session.send_client(seq, &resp, false);
            }
        },
    )
}

/// The shared forwarding path: ensure a live connection, register the
/// pending entry, write the frame `build` produces for the assigned
/// backend sequence id. `on_unavailable` runs when the request never
/// made it onto a backend wire (the pending entry, if registered, has
/// already been drained by the failure path — exactly one of the two
/// answers the client).
fn forward<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    slot_idx: usize,
    scratch: &mut Vec<u8>,
    build: impl FnOnce(u64, &mut Vec<u8>),
    pending: Pending,
    on_unavailable: impl FnOnce(&Session<'env>, RemoteError),
) -> Sent {
    let slot = &session.slots[slot_idx];
    let (bseq, generation) = {
        let mut ctl = slot.ctl.lock();
        if !ctl.alive {
            if let Err(msg) = ensure_conn(scope, session, slot_idx, &mut ctl) {
                on_unavailable(session, RemoteError::Unavailable(msg));
                return Sent::Answered;
            }
        }
        let bseq = ctl.next_bseq;
        ctl.next_bseq += 1;
        ctl.pending.insert(bseq, pending);
        (bseq, ctl.generation)
    };
    session
        .shared
        .stats
        .forwarded
        .fetch_add(1, Ordering::Relaxed);
    if slot_idx >= session.shared.map.shard_count() {
        session
            .shared
            .stats
            .replica_reads
            .fetch_add(1, Ordering::Relaxed);
    }
    // The ctl lock is released: if the connection dies right here, the
    // failure path drains our pending entry and answers the client;
    // the writer below is then gone and we silently stand down.
    let write_result = {
        let mut w = slot.writer.lock();
        match w.as_mut() {
            None => return Sent::Forwarded, // failure path owns the answer
            Some(w) => {
                scratch.clear();
                build(bseq, scratch);
                write_frame(w, scratch).map(|_| ())
            }
        }
    };
    if write_result.is_err() {
        fail_slot(session, slot_idx, generation, "write to shard failed");
    }
    Sent::Forwarded
}

/// Dial a dead slot's backend, handshake, and hand the connection to
/// the session's backend pump (spawning the pump on the session's
/// first dial). Called with the slot's ctl lock held; on success the
/// slot is alive.
///
/// The address comes from the shard's *current* membership: primary
/// bank slots dial the primary, read bank slots a live replica (or the
/// primary when none is up). A read-bank connection is pinned with a
/// `ReadFloor` at the primary's last probed epoch before anything else
/// rides it, so the replica can never answer from state older than the
/// primary state the router has already observed.
fn ensure_conn<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    session: &'env Session<'env>,
    slot_idx: usize,
    ctl: &mut SlotCtl,
) -> Result<(), String> {
    let shared = session.shared;
    let shard = slot_idx % shared.map.shard_count();
    if let Some(until) = ctl.down_until {
        if Instant::now() < until {
            return Err(format!("shard {shard} is in its reconnect-backoff window"));
        }
    }
    if shared.membership.promoting(shard) {
        // The promotion window: strictly no retry, the request's
        // outcome on the dying primary is unknown.
        return Err(format!("shard {shard} is failing over"));
    }
    let read_bank = slot_idx >= shared.map.shard_count();
    let addr = if read_bank {
        shared.membership.pick_read_addr(shard)
    } else {
        shared.membership.primary_addr(shard)
    };
    let config = &shared.config;
    let dial = || -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        // Handshake under a deadline so a wedged backend can't hang
        // the whole session; cleared once the echo arrives.
        stream.set_read_timeout(Some(config.connect_timeout))?;
        let mut stream_w = stream.try_clone()?;
        stream_w.write_all(&MAGIC)?;
        stream_w.flush()?;
        let mut echo = [0u8; 4];
        (&stream).read_exact(&mut echo)?;
        if echo != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "backend handshake mismatch",
            ));
        }
        stream.set_read_timeout(None)?;
        Ok(stream)
    };
    match dial() {
        Ok(stream) => {
            let pump_half = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => return Err(format!("shard {shard}: {e}")),
            };
            let writer_half = match stream.try_clone().map(BufWriter::new) {
                Ok(w) => w,
                Err(e) => return Err(format!("shard {shard}: {e}")),
            };
            *session.slots[slot_idx].writer.lock() = Some(writer_half);
            ctl.alive = true;
            ctl.raw = Some(stream);
            ctl.generation += 1;
            ctl.failures = 0;
            ctl.down_until = None;
            if read_bank {
                let floor = shared.membership.primary_epoch(shard);
                if floor > 0 {
                    let bseq = ctl.next_bseq;
                    ctl.next_bseq += 1;
                    ctl.pending.insert(bseq, Pending::Internal);
                    let frame = Request::ReadFloor { epoch: floor }.encode(bseq);
                    if let Some(w) = session.slots[slot_idx].writer.lock().as_mut() {
                        let _ = write_frame(w, &frame);
                    }
                }
            }
            shared
                .stats
                .backend_connects
                .fetch_add(1, Ordering::Relaxed);
            // Hand the read half to the pump: push *then* notify, so
            // the pump can't wake without seeing the registration.
            session
                .handoff
                .lock()
                .push((slot_idx, ctl.generation, pump_half));
            if !session.pump_started.swap(true, Ordering::SeqCst) {
                scope.spawn(move || backend_pump(session));
            }
            let _ = session.poller.notify();
            Ok(())
        }
        Err(e) => {
            ctl.failures += 1;
            let exp = ctl.failures.saturating_sub(1).min(16);
            let backoff = config
                .reconnect_backoff
                .saturating_mul(1u32 << exp)
                .min(config.reconnect_backoff_max);
            ctl.down_until = Some(Instant::now() + backoff);
            shared.stats.shard_failures.fetch_add(1, Ordering::Relaxed);
            Err(format!("shard {shard} is unreachable: {e}"))
        }
    }
}

/// Tear down one slot's connection: mark it dead, start the backoff
/// clock, and answer every pending request with `Unavailable`. Safe to
/// call from any thread; only the first caller acts. `generation` is
/// the connection the caller saw fail — if the slot has already been
/// torn down *and redialed* since, the report is stale and ignored.
fn fail_slot(session: &Session<'_>, slot_idx: usize, generation: u64, why: &str) {
    let shard = slot_idx % session.shared.map.shard_count();
    let slot = &session.slots[slot_idx];
    let drained: Vec<(u64, Pending)> = {
        let mut ctl = slot.ctl.lock();
        if !ctl.alive || ctl.generation != generation {
            return; // already torn down (or a successor is up)
        }
        ctl.alive = false;
        if let Some(raw) = ctl.raw.take() {
            let _ = raw.shutdown(Shutdown::Both);
        }
        ctl.failures += 1;
        let exp = ctl.failures.saturating_sub(1).min(16);
        let backoff = session
            .shared
            .config
            .reconnect_backoff
            .saturating_mul(1u32 << exp)
            .min(session.shared.config.reconnect_backoff_max);
        ctl.down_until = Some(Instant::now() + backoff);
        ctl.pending.drain().collect()
    };
    *slot.writer.lock() = None;
    session
        .shared
        .stats
        .shard_failures
        .fetch_add(1, Ordering::Relaxed);
    let err = || RemoteError::Unavailable(format!("shard {shard}: {why}; request not retried"));
    for (_, pending) in drained {
        match pending {
            Pending::Single { client_seq } => {
                let _ = session.send_client(client_seq, &Response::Err(err()), false);
            }
            Pending::Part(gather) => {
                let done = gather.lock().complete_part(shard, Err(err()));
                if let Some(resp) = done {
                    let seq = gather.lock().client_seq;
                    let _ = session.send_client(seq, &resp, false);
                }
            }
            Pending::Internal => {} // nothing owed to the client
        }
    }
    // The drained answers must not sit in the buffer: the client loop
    // doesn't know we wrote them.
    let _ = session.client_writer.lock().flush();
}

/// Re-tag a backend response payload with the client's sequence id
/// without a full decode. Covers the shapes whose only embedded id is
/// a single leading varint (or none at all): the id is patched, every
/// byte after it is copied verbatim. The patched varints are canonical
/// either way, so the frame is byte-for-byte what decode + translate +
/// re-encode would produce. Returns `None` for richer shapes (and
/// garbage), which take the slow path.
fn retag_response(
    payload: &[u8],
    after_seq: usize,
    client_seq: u64,
    map: ShardMap,
    shard: usize,
    out: &mut Vec<u8>,
) -> Option<()> {
    let k = *payload.get(after_seq)?;
    let body = &payload[after_seq + 1..];
    out.clear();
    varint::write_u64(out, client_seq);
    out.push(k);
    match k {
        // No ids at all (COUNT's varint is a count, FLAG's byte a bool).
        kind::PONG | kind::UNIT | kind::COUNT | kind::FLAG => {
            out.extend_from_slice(body);
        }
        kind::VERSION | kind::BODY => {
            let (vid, len) = varint::read_u64(body).ok()?;
            varint::write_u64(out, map.client_vid(Vid(vid), shard).0);
            out.extend_from_slice(&body[len..]);
        }
        kind::OBJECT => {
            let (oid, len) = varint::read_u64(body).ok()?;
            varint::write_u64(out, map.client_oid(Oid(oid), shard).0);
            out.extend_from_slice(&body[len..]);
        }
        _ => return None, // Created, lists, errors, stats: slow path
    }
    Some(())
}

/// One live backend connection as the pump sees it: the read half
/// (registered with the poller under a session-unique key) and its
/// frame-reassembly buffer.
struct PumpConn {
    slot_idx: usize,
    /// The slot generation this connection was dialed under; failure
    /// reports carry it so they can't hit a successor connection.
    generation: u64,
    stream: TcpStream,
    fbuf: FrameBuffer,
}

/// What one pump step decided about a connection.
enum PumpStatus {
    /// Connection healthy, keep it registered.
    Keep,
    /// Connection faulted: fail the slot and drop the registration.
    Drop(&'static str),
    /// The *client* writer is dead — the session is tearing down, so
    /// the pump exits wholesale.
    ClientGone,
}

/// The session's backend-response pump: one thread multiplexing every
/// live shard connection through an epoll [`Poller`], replacing the
/// old reader-thread-per-backend design.
///
/// Backend sockets stay **blocking** — under level-triggered readiness
/// a single `read` per readable event cannot block (readable means at
/// least one byte, or EOF/error, is waiting), and the blocking writer
/// halves used by [`forward`] keep their simple `BufWriter` semantics.
/// New connections arrive through `Session::handoff` (pushed before a
/// [`Poller::notify`]); dead ones are noticed by the HUP their
/// shutdown causes. Each registration gets a fresh key, so a stale
/// event for a replaced connection can never be misread as its
/// successor's.
fn backend_pump(session: &Session<'_>) {
    let mut conns: HashMap<usize, PumpConn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    // Reused across frames: the re-tagged outbound copy.
    let mut retagged = Vec::new();
    loop {
        if session.poller.wait(&mut events, None).is_err() {
            return;
        }
        if session.hangup.load(Ordering::Acquire) {
            return; // teardown: shutdown_backends owns the sockets
        }
        // Register connections dialed since the last round. Drained to
        // a local vec first: fail_slot takes ctl locks, and ensure_conn
        // pushes here *while holding* a ctl lock.
        let fresh: Vec<_> = session.handoff.lock().drain(..).collect();
        for (slot_idx, generation, stream) in fresh {
            let key = next_key;
            next_key += 1;
            if session.poller.add(&stream, Event::readable(key)).is_err() {
                fail_slot(session, slot_idx, generation, "pump registration failed");
                continue;
            }
            conns.insert(
                key,
                PumpConn {
                    slot_idx,
                    generation,
                    stream,
                    fbuf: FrameBuffer::new(),
                },
            );
        }
        let mut wrote = false;
        for ev in &events {
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue; // stale event for a dropped registration
            };
            match pump_step(session, conn, &mut scratch, &mut retagged, &mut wrote) {
                PumpStatus::Keep => {}
                PumpStatus::Drop(why) => {
                    let conn = conns.remove(&ev.key).expect("checked above");
                    fail_slot(session, conn.slot_idx, conn.generation, why);
                    // Deregister before the dup closes on drop.
                    let _ = session.poller.delete(&conn.stream);
                }
                PumpStatus::ClientGone => return,
            }
        }
        // One flush per readiness round: responses from every backend
        // that spoke this round share it.
        if wrote && session.client_writer.lock().flush().is_err() {
            return;
        }
    }
}

/// Service one readable event: a single `read` (safe on the blocking
/// socket — the event guarantees it won't park), then every complete
/// frame it yields.
fn pump_step(
    session: &Session<'_>,
    conn: &mut PumpConn,
    scratch: &mut [u8],
    retagged: &mut Vec<u8>,
    wrote: &mut bool,
) -> PumpStatus {
    let n = match (&conn.stream).read(scratch) {
        Ok(0) => return PumpStatus::Drop("connection lost"),
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return PumpStatus::Keep,
        Err(_) => return PumpStatus::Drop("connection lost"),
    };
    conn.fbuf.extend(&scratch[..n]);
    let slot_idx = conn.slot_idx;
    loop {
        match conn.fbuf.next_frame() {
            Ok(None) => return PumpStatus::Keep,
            Ok(Some(payload)) => {
                match on_backend_frame(session, slot_idx, payload, retagged, wrote) {
                    FrameVerdict::Answered => {}
                    FrameVerdict::Fault(why) => return PumpStatus::Drop(why),
                    FrameVerdict::ClientGone => return PumpStatus::ClientGone,
                }
            }
            Err(_) => {
                // A backend framing its stream wrong can't be trusted
                // for anything in flight: kill the connection, which
                // answers every pending request cleanly.
                session
                    .shared
                    .stats
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return PumpStatus::Drop("undecodable response from shard");
            }
        }
    }
}

/// What correlating one backend frame concluded.
enum FrameVerdict {
    Answered,
    Fault(&'static str),
    ClientGone,
}

/// Correlate one backend frame with its pending entry, translate ids,
/// and answer the client. `*wrote` records that the client writer now
/// holds unflushed bytes — the pump flushes once per readiness round.
fn on_backend_frame(
    session: &Session<'_>,
    slot_idx: usize,
    payload: &[u8],
    retagged: &mut Vec<u8>,
    wrote: &mut bool,
) -> FrameVerdict {
    let map = session.shared.map;
    let shard = slot_idx % map.shard_count();
    let Ok((bseq, bseq_len)) = varint::read_u64(payload) else {
        session
            .shared
            .stats
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        return FrameVerdict::Fault("undecodable response from shard");
    };
    let pending = session.slots[slot_idx].ctl.lock().pending.remove(&bseq);
    // The pending entry is already removed, so this frame owns the
    // answer for `bseq` — on an undecodable payload it answers with
    // the exact `Unavailable` the failure path gives everything else
    // in flight, then has the connection torn down.
    let undecodable = |session: &Session<'_>| {
        session
            .shared
            .stats
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        RemoteError::Unavailable(format!(
            "shard {shard}: undecodable response from shard; request not retried"
        ))
    };
    match pending {
        None => {
            // A response nothing asked for; ignoring it would leave
            // the correlation state suspect, so treat as a fault.
            session
                .shared
                .stats
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            FrameVerdict::Fault("response with unknown sequence id")
        }
        Some(Pending::Internal) => FrameVerdict::Answered, // the `ReadFloor` pin's ack
        Some(Pending::Single { client_seq }) => {
            // Fast path first: single-id shapes re-tag in place.
            if retag_response(payload, bseq_len, client_seq, map, shard, retagged).is_some() {
                *wrote = true;
                return match session.send_client_bytes(retagged, false) {
                    Ok(()) => FrameVerdict::Answered,
                    Err(_) => FrameVerdict::ClientGone,
                };
            }
            match Response::decode(payload) {
                Ok((_, response)) => {
                    let resp = translate_response(response, map, shard);
                    *wrote = true;
                    match session.send_client(client_seq, &resp, false) {
                        Ok(()) => FrameVerdict::Answered,
                        Err(_) => FrameVerdict::ClientGone,
                    }
                }
                Err(_) => {
                    let err = undecodable(session);
                    *wrote = true;
                    let _ = session.send_client(client_seq, &Response::Err(err), false);
                    FrameVerdict::Fault("undecodable response from shard")
                }
            }
        }
        Some(Pending::Part(gather)) => {
            let part = match Response::decode(payload) {
                Ok((_, response)) => Ok(translate_response(response, map, shard)),
                Err(_) => Err(undecodable(session)),
            };
            let failed = part.is_err();
            let done = gather.lock().complete_part(shard, part);
            if let Some(merged) = done {
                let seq = gather.lock().client_seq;
                *wrote = true;
                if session.send_client(seq, &merged, false).is_err() {
                    return FrameVerdict::ClientGone;
                }
            }
            if failed {
                FrameVerdict::Fault("undecodable response from shard")
            } else {
                FrameVerdict::Answered
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode::{TypeTag, Vid};

    #[test]
    fn stats_scatter_sums_counters_and_per_opcode_counts() {
        let a = StatsReport {
            active_connections: 1,
            total_connections: 2,
            bytes_in: 10,
            bytes_out: 20,
            protocol_errors: 0,
            op_errors: 1,
            snapshot_hits: 5,
            snapshot_misses: 2,
            slow_client_evictions: 1,
            materialize_hits: 4,
            materialize_misses: 2,
            requests: vec![(Opcode::Pnew, 3), (Opcode::Deref, 4)],
            storage: crate::protocol::StorageCounters {
                read_txs: 10,
                write_txs: 3,
                group_batch_max: 4,
                write_conflicts: 2,
                write_retries: 1,
                ..Default::default()
            },
        };
        let b = StatsReport {
            active_connections: 2,
            total_connections: 3,
            bytes_in: 100,
            bytes_out: 200,
            protocol_errors: 1,
            op_errors: 0,
            snapshot_hits: 7,
            snapshot_misses: 1,
            slow_client_evictions: 2,
            materialize_hits: 1,
            materialize_misses: 3,
            requests: vec![(Opcode::Deref, 6), (Opcode::Ping, 1)],
            storage: crate::protocol::StorageCounters {
                read_txs: 20,
                write_txs: 5,
                group_batch_max: 2,
                write_conflicts: 3,
                write_retries: 2,
                ..Default::default()
            },
        };
        let merged = merge_stats(vec![a, b]);
        assert_eq!(merged.active_connections, 3);
        assert_eq!(merged.total_connections, 5);
        assert_eq!(merged.bytes_in, 110);
        assert_eq!(merged.bytes_out, 220);
        assert_eq!(merged.protocol_errors, 1);
        assert_eq!(merged.op_errors, 1);
        assert_eq!(merged.snapshot_hits, 12);
        assert_eq!(merged.snapshot_misses, 3);
        assert_eq!(merged.slow_client_evictions, 3);
        assert_eq!(merged.materialize_hits, 5);
        assert_eq!(merged.materialize_misses, 5);
        assert_eq!(merged.storage.read_txs, 30);
        assert_eq!(merged.storage.write_txs, 8);
        assert_eq!(merged.storage.write_conflicts, 5);
        assert_eq!(merged.storage.write_retries, 3);
        // Max across shards, not a sum.
        assert_eq!(merged.storage.group_batch_max, 4);
        assert_eq!(merged.requests_for(Opcode::Deref), 10);
        assert_eq!(merged.requests_for(Opcode::Pnew), 3);
        assert_eq!(merged.requests_for(Opcode::Ping), 1);
        // Wire order (the order a single server reports) is preserved.
        assert_eq!(
            merged.requests,
            vec![(Opcode::Ping, 1), (Opcode::Pnew, 3), (Opcode::Deref, 10)]
        );
    }

    #[test]
    fn extent_scatter_merges_sorted_and_truncates_pages() {
        let parts = vec![
            vec![Oid(4), Oid(8), Oid(12)],
            vec![Oid(1), Oid(5)],
            vec![Oid(2), Oid(6), Oid(10)],
        ];
        assert_eq!(
            merge_objects(parts.clone(), None),
            vec![
                Oid(1),
                Oid(2),
                Oid(4),
                Oid(5),
                Oid(6),
                Oid(8),
                Oid(10),
                Oid(12)
            ]
        );
        assert_eq!(merge_objects(parts, Some(3)), vec![Oid(1), Oid(2), Oid(4)]);
    }

    #[test]
    fn responses_translate_every_embedded_id() {
        let map = ShardMap::new(4);
        let s = 2;
        assert_eq!(
            translate_response(
                Response::Created {
                    oid: Oid(3),
                    vid: Vid(5)
                },
                map,
                s
            ),
            Response::Created {
                oid: Oid(14),
                vid: Vid(22)
            }
        );
        assert_eq!(
            translate_response(Response::Version(Vid(1)), map, s),
            Response::Version(Vid(6))
        );
        assert_eq!(
            translate_response(
                Response::Body {
                    vid: Vid(2),
                    bytes: vec![9]
                },
                map,
                s
            ),
            Response::Body {
                vid: Vid(10),
                bytes: vec![9]
            }
        );
        assert_eq!(
            translate_response(Response::Versions(vec![Vid(1), Vid(2)]), map, s),
            Response::Versions(vec![Vid(6), Vid(10)])
        );
        assert_eq!(
            translate_response(Response::Err(RemoteError::UnknownObject(Oid(3))), map, s),
            Response::Err(RemoteError::UnknownObject(Oid(14)))
        );
        // Shapes without ids pass through untouched.
        assert_eq!(translate_response(Response::Unit, map, s), Response::Unit);
        assert_eq!(
            translate_response(Response::Count(7), map, s),
            Response::Count(7)
        );
        // A diff's endpoint vids are remapped; the delta metrics are
        // shard-agnostic and pass through.
        let d = crate::protocol::DiffSummary {
            from: Vid(1),
            to: Vid(2),
            to_len: 600,
            ops: 3,
            literal_bytes: 12,
            encoded_bytes: 30,
            stored: true,
        };
        assert_eq!(
            translate_response(Response::Diff(d), map, s),
            Response::Diff(crate::protocol::DiffSummary {
                from: Vid(6),
                to: Vid(10),
                ..d
            })
        );
    }

    #[test]
    fn history_and_diff_route_to_the_owning_shard() {
        let map = ShardMap::new(3);
        let rr = AtomicU64::new(0);
        // Oid 7 lives on shard 1; client stamps [4, 22] on shard 1 are
        // {4, 7, 10, 13, 16, 19, 22} = backend stamps 1..=7.
        match route(
            Request::HistoryBetween {
                oid: Oid(7),
                from: 4,
                to: 22,
            },
            map,
            &rr,
        ) {
            Route::Single { shard, backend } => {
                assert_eq!(shard, 1);
                assert_eq!(
                    backend,
                    Request::HistoryBetween {
                        oid: Oid(2),
                        from: 1,
                        to: 7,
                    }
                );
            }
            _ => panic!("history must route to the object's shard"),
        }
        // A range no stamp of shard 2 can fall in answers locally.
        match route(
            Request::HistoryBetween {
                oid: Oid(2),
                from: 0,
                to: 1,
            },
            map,
            &rr,
        ) {
            Route::Local(Response::Versions(v)) => assert!(v.is_empty()),
            _ => panic!("empty range must answer locally"),
        }
        // Same shard: forwarded with both vids translated.
        match route(
            Request::DiffVersions {
                from: Vid(4),
                to: Vid(7),
            },
            map,
            &rr,
        ) {
            Route::Single { shard, backend } => {
                assert_eq!(shard, 1);
                assert_eq!(
                    backend,
                    Request::DiffVersions {
                        from: Vid(1),
                        to: Vid(2),
                    }
                );
            }
            _ => panic!("same-shard diff must forward"),
        }
        // Cross-shard endpoints are refused by the router itself.
        match route(
            Request::DiffVersions {
                from: Vid(4),
                to: Vid(8),
            },
            map,
            &rr,
        ) {
            Route::Local(Response::Err(RemoteError::BadRequest(_))) => {}
            _ => panic!("cross-shard diff must be refused locally"),
        }
    }

    #[test]
    fn merge_routes_like_diff_and_remaps_only_the_version() {
        let map = ShardMap::new(3);
        let rr = AtomicU64::new(0);
        // Same shard: forwarded with both parent vids translated and
        // the policy untouched.
        match route(
            Request::Merge {
                a: Vid(4),
                b: Vid(7),
                policy: ode::MergePolicy::Ours,
            },
            map,
            &rr,
        ) {
            Route::Single { shard, backend } => {
                assert_eq!(shard, 1);
                assert_eq!(
                    backend,
                    Request::Merge {
                        a: Vid(1),
                        b: Vid(2),
                        policy: ode::MergePolicy::Ours,
                    }
                );
            }
            _ => panic!("same-shard merge must forward"),
        }
        // Cross-shard parents are refused by the router itself.
        match route(
            Request::Merge {
                a: Vid(4),
                b: Vid(8),
                policy: ode::MergePolicy::Fail,
            },
            map,
            &rr,
        ) {
            Route::Local(Response::Err(RemoteError::BadRequest(_))) => {}
            _ => panic!("cross-shard merge must be refused locally"),
        }
        // Translation maps the minted vid back to client space and
        // leaves the conflict byte ranges alone.
        let conflicts = vec![ode::MergeConflict {
            base_start: 3,
            base_end: 9,
            ours: vec![1],
            theirs: vec![2],
        }];
        assert_eq!(
            translate_response(
                Response::Merged {
                    vid: Some(Vid(2)),
                    conflicts: conflicts.clone(),
                },
                map,
                1,
            ),
            Response::Merged {
                vid: Some(Vid(7)),
                conflicts,
            }
        );
    }

    #[test]
    fn pnew_places_round_robin_and_keyed_requests_follow_their_id() {
        let map = ShardMap::new(3);
        let rr = AtomicU64::new(0);
        for expect in [0usize, 1, 2, 0, 1] {
            match route(
                Request::Pnew {
                    tag: TypeTag(1),
                    body: vec![],
                },
                map,
                &rr,
            ) {
                Route::Single { shard, .. } => assert_eq!(shard, expect),
                _ => panic!("pnew must route to a single shard"),
            }
        }
        // Oid 7 on 3 shards: shard 1, backend id 2.
        match route(
            Request::Deref {
                oid: Oid(7),
                tag: TypeTag(1),
            },
            map,
            &rr,
        ) {
            Route::Single { shard, backend } => {
                assert_eq!(shard, 1);
                assert_eq!(
                    backend,
                    Request::Deref {
                        oid: Oid(2),
                        tag: TypeTag(1)
                    }
                );
            }
            _ => panic!("deref must route to a single shard"),
        }
    }

    #[test]
    fn a_gather_answers_exactly_once_even_with_failures() {
        let mut g = Gather::new(9, GatherKind::Objects, 3);
        assert!(g
            .complete_part(0, Ok(Response::Objects(vec![Oid(3)])))
            .is_none());
        assert!(g
            .complete_part(1, Err(RemoteError::Unavailable("down".into())))
            .is_none());
        let last = g.complete_part(2, Ok(Response::Objects(vec![Oid(2)])));
        assert_eq!(
            last,
            Some(Response::Err(RemoteError::Unavailable("down".into())))
        );
        // Late or duplicate parts after completion are swallowed.
        assert!(g.complete_part(0, Ok(Response::Objects(vec![]))).is_none());
    }
}
