//! The Ode wire protocol.
//!
//! A connection starts with a 4-byte handshake: the client sends
//! [`MAGIC`] (`"ODE"` plus a protocol-version byte) and the server
//! echoes it back. After that the stream is a sequence of
//! **length-prefixed frames** in each direction: a LEB128 varint byte
//! count followed by that many payload bytes. Requests and responses
//! use the same framing; every request frame is answered by exactly one
//! response frame, **matched by sequence id, not by order**.
//!
//! Protocol version 2 (the `\x02` in [`MAGIC`]) made the connection a
//! *pipeline*: every request payload starts with a client-assigned
//! varint sequence id, echoed back as the first field of its response
//! payload. A client may keep any number of requests in flight, and the
//! server may answer them out of order (it answers `Ping`, `Stats`, and
//! snapshot-cache hits ahead of queued work); the sequence id is the
//! only correlation between the two streams.
//!
//! After the sequence id, a request payload is an opcode byte followed
//! by the operation's fields; a response payload is a response-kind
//! byte followed by the result fields. All integers (ids, tags, counts,
//! lengths) are LEB128 varints via [`ode_codec`]'s writer/reader;
//! object bodies travel as length-prefixed byte strings holding their
//! normal [`ode_codec`] `Persist` encoding — the server never decodes
//! bodies, it stores and serves the client's bytes and only checks the
//! type tag.
//!
//! The full opcode table lives in the README ("Running Ode as a
//! server"); [`Opcode`] is the authoritative enumeration.

use std::io::{self, Read, Write};

use ode::{MergeConflict, MergePolicy, Oid, TypeTag, Vid};
use ode_codec::{varint, Reader, Writer};

use crate::error::{NetError, RemoteError, Result};

/// Connection handshake: `"ODE"` + protocol version byte. Version 2
/// added pipelining (sequence-id-prefixed payloads); a v1 peer fails
/// the handshake rather than misparsing frames.
pub const MAGIC: [u8; 4] = *b"ODE\x02";

/// Upper bound on a single frame's payload, guarding both sides
/// against allocating unbounded memory on a corrupt length prefix.
pub const MAX_FRAME_LEN: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

/// Request opcodes — the first byte of every request payload.
///
/// The numeric values are the wire encoding and also index the server's
/// per-opcode request counters; they are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe.
    Ping = 0,
    /// Server statistics snapshot.
    Stats = 1,
    /// `pnew`: create an object from a tag + encoded body.
    Pnew = 2,
    /// Dereference a generic reference (latest version).
    Deref = 3,
    /// Dereference a specific version.
    DerefVersion = 4,
    /// Replace the latest version's body.
    Update = 5,
    /// Replace a specific version's body.
    UpdateVersion = 6,
    /// Derive a new version from the object's latest.
    NewVersion = 7,
    /// Derive a new version from a specific base version.
    NewVersionFrom = 8,
    /// Delete an object and all its versions.
    Pdelete = 9,
    /// Delete one specific version.
    PdeleteVersion = 10,
    /// Derived-from predecessor.
    Dprevious = 11,
    /// Derived-from successors.
    Dnext = 12,
    /// Temporal predecessor.
    Tprevious = 13,
    /// Temporal successor.
    Tnext = 14,
    /// All versions of an object in temporal order.
    VersionHistory = 15,
    /// Pin the current latest version.
    CurrentVersion = 16,
    /// Extent scan: all live objects of a type.
    Objects = 17,
    /// Extent page: objects of a type from a cursor.
    ObjectsPage = 18,
    /// The object a version belongs to.
    ObjectOf = 19,
    /// Number of live versions of an object.
    VersionCount = 20,
    /// Whether an object exists.
    Exists = 21,
    /// Whether a version exists.
    VersionExists = 22,
    /// The node's applied commit epoch (answered inline, like `Ping`).
    Epoch = 23,
    /// Set this connection's read floor: subsequent reads wait until
    /// the node has applied at least this epoch (replica read gate).
    ReadFloor = 24,
    /// Promote a replica node to primary (driven failover).
    Promote = 25,
    /// All versions of an object created in a global-stamp range
    /// (served from the object's delta chain when it has one).
    HistoryBetween = 26,
    /// Summary of the difference between two versions' states.
    DiffVersions = 27,
    /// Three-way merge of two versions into a new two-parent version.
    Merge = 28,
}

/// Number of opcodes (size of the server's per-opcode counter array).
pub const OPCODE_COUNT: usize = 29;

impl Opcode {
    /// Every opcode, in wire order.
    pub const ALL: [Opcode; OPCODE_COUNT] = [
        Opcode::Ping,
        Opcode::Stats,
        Opcode::Pnew,
        Opcode::Deref,
        Opcode::DerefVersion,
        Opcode::Update,
        Opcode::UpdateVersion,
        Opcode::NewVersion,
        Opcode::NewVersionFrom,
        Opcode::Pdelete,
        Opcode::PdeleteVersion,
        Opcode::Dprevious,
        Opcode::Dnext,
        Opcode::Tprevious,
        Opcode::Tnext,
        Opcode::VersionHistory,
        Opcode::CurrentVersion,
        Opcode::Objects,
        Opcode::ObjectsPage,
        Opcode::ObjectOf,
        Opcode::VersionCount,
        Opcode::Exists,
        Opcode::VersionExists,
        Opcode::Epoch,
        Opcode::ReadFloor,
        Opcode::Promote,
        Opcode::HistoryBetween,
        Opcode::DiffVersions,
        Opcode::Merge,
    ];

    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Opcode::ALL.get(b as usize).copied()
    }

    /// Human-readable name (stats displays, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Stats => "stats",
            Opcode::Pnew => "pnew",
            Opcode::Deref => "deref",
            Opcode::DerefVersion => "deref_version",
            Opcode::Update => "update",
            Opcode::UpdateVersion => "update_version",
            Opcode::NewVersion => "newversion",
            Opcode::NewVersionFrom => "newversion_from",
            Opcode::Pdelete => "pdelete",
            Opcode::PdeleteVersion => "pdelete_version",
            Opcode::Dprevious => "dprevious",
            Opcode::Dnext => "dnext",
            Opcode::Tprevious => "tprevious",
            Opcode::Tnext => "tnext",
            Opcode::VersionHistory => "version_history",
            Opcode::CurrentVersion => "current_version",
            Opcode::Objects => "objects",
            Opcode::ObjectsPage => "objects_page",
            Opcode::ObjectOf => "object_of",
            Opcode::VersionCount => "version_count",
            Opcode::Exists => "exists",
            Opcode::VersionExists => "version_exists",
            Opcode::Epoch => "epoch",
            Opcode::ReadFloor => "read_floor",
            Opcode::Promote => "promote",
            Opcode::HistoryBetween => "history_between",
            Opcode::DiffVersions => "diff_versions",
            Opcode::Merge => "merge",
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One request frame's decoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server statistics snapshot.
    Stats,
    /// Create an object: first version holds `body` (already
    /// `Persist`-encoded by the client).
    Pnew {
        /// Stored type tag of the object's type.
        tag: TypeTag,
        /// Encoded first-version body.
        body: Vec<u8>,
    },
    /// Latest version's body of `oid`, type-checked against `tag`.
    Deref {
        /// Object to dereference.
        oid: Oid,
        /// Expected type tag.
        tag: TypeTag,
    },
    /// A specific version's body, type-checked against `tag`.
    DerefVersion {
        /// Version to dereference.
        vid: Vid,
        /// Expected type tag.
        tag: TypeTag,
    },
    /// Replace the latest version's body.
    Update {
        /// Object whose latest version to overwrite.
        oid: Oid,
        /// Expected type tag.
        tag: TypeTag,
        /// New encoded body.
        body: Vec<u8>,
    },
    /// Replace a specific version's body.
    UpdateVersion {
        /// Version to overwrite.
        vid: Vid,
        /// Expected type tag.
        tag: TypeTag,
        /// New encoded body.
        body: Vec<u8>,
    },
    /// Derive a new version from the object's latest.
    NewVersion {
        /// Object to version.
        oid: Oid,
    },
    /// Derive a new version from a specific base.
    NewVersionFrom {
        /// Base version.
        vid: Vid,
    },
    /// Delete an object and all its versions.
    Pdelete {
        /// Object to delete.
        oid: Oid,
    },
    /// Delete one specific version.
    PdeleteVersion {
        /// Version to delete.
        vid: Vid,
    },
    /// Derived-from predecessor of `vid`.
    Dprevious {
        /// Version to traverse from.
        vid: Vid,
    },
    /// Derived-from successors of `vid`.
    Dnext {
        /// Version to traverse from.
        vid: Vid,
    },
    /// Temporal predecessor of `vid`.
    Tprevious {
        /// Version to traverse from.
        vid: Vid,
    },
    /// Temporal successor of `vid`.
    Tnext {
        /// Version to traverse from.
        vid: Vid,
    },
    /// All versions of `oid` in temporal order.
    VersionHistory {
        /// Object to list.
        oid: Oid,
    },
    /// Pin `oid`'s current latest version.
    CurrentVersion {
        /// Object to pin.
        oid: Oid,
    },
    /// Extent scan: all live objects tagged `tag`.
    Objects {
        /// Type tag of the extent.
        tag: TypeTag,
    },
    /// Extent page: up to `limit` objects tagged `tag` with ids `>=
    /// after`.
    ObjectsPage {
        /// Type tag of the extent.
        tag: TypeTag,
        /// Cursor: smallest id to return.
        after: Oid,
        /// Maximum number of objects.
        limit: u64,
    },
    /// The object `vid` belongs to.
    ObjectOf {
        /// Version to resolve.
        vid: Vid,
    },
    /// Number of live versions of `oid`.
    VersionCount {
        /// Object to count.
        oid: Oid,
    },
    /// Whether `oid` exists.
    Exists {
        /// Object to probe.
        oid: Oid,
    },
    /// Whether `vid` exists.
    VersionExists {
        /// Version to probe.
        vid: Vid,
    },
    /// The node's applied commit epoch (the router's health probe).
    Epoch,
    /// Read-your-writes gate for replica reads: pin this connection's
    /// reads at `epoch` — they wait until the node has applied it.
    ReadFloor {
        /// Minimum applied epoch subsequent reads require (0 clears).
        epoch: u64,
    },
    /// Promote this node from replica to primary (driven failover;
    /// idempotent).
    Promote,
    /// All versions of `oid` whose global stamp lies in `from..=to`,
    /// oldest first — served from the object's delta chain when it has
    /// one, without materializing any bodies.
    HistoryBetween {
        /// Object whose history to slice.
        oid: Oid,
        /// Smallest global stamp to include.
        from: u64,
        /// Largest global stamp to include.
        to: u64,
    },
    /// Summary of the byte difference between two versions' states.
    DiffVersions {
        /// Base version.
        from: Vid,
        /// Target version.
        to: Vid,
    },
    /// Three-way merge `a` and `b` (two versions of one object) against
    /// their common ancestor, checking the result in as a new version
    /// with both parents recorded.
    Merge {
        /// First parent ("ours").
        a: Vid,
        /// Second parent ("theirs").
        b: Vid,
        /// Conflict policy.
        policy: MergePolicy,
    },
}

impl Request {
    /// This request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Stats => Opcode::Stats,
            Request::Pnew { .. } => Opcode::Pnew,
            Request::Deref { .. } => Opcode::Deref,
            Request::DerefVersion { .. } => Opcode::DerefVersion,
            Request::Update { .. } => Opcode::Update,
            Request::UpdateVersion { .. } => Opcode::UpdateVersion,
            Request::NewVersion { .. } => Opcode::NewVersion,
            Request::NewVersionFrom { .. } => Opcode::NewVersionFrom,
            Request::Pdelete { .. } => Opcode::Pdelete,
            Request::PdeleteVersion { .. } => Opcode::PdeleteVersion,
            Request::Dprevious { .. } => Opcode::Dprevious,
            Request::Dnext { .. } => Opcode::Dnext,
            Request::Tprevious { .. } => Opcode::Tprevious,
            Request::Tnext { .. } => Opcode::Tnext,
            Request::VersionHistory { .. } => Opcode::VersionHistory,
            Request::CurrentVersion { .. } => Opcode::CurrentVersion,
            Request::Objects { .. } => Opcode::Objects,
            Request::ObjectsPage { .. } => Opcode::ObjectsPage,
            Request::ObjectOf { .. } => Opcode::ObjectOf,
            Request::VersionCount { .. } => Opcode::VersionCount,
            Request::Exists { .. } => Opcode::Exists,
            Request::VersionExists { .. } => Opcode::VersionExists,
            Request::Epoch => Opcode::Epoch,
            Request::ReadFloor { .. } => Opcode::ReadFloor,
            Request::Promote => Opcode::Promote,
            Request::HistoryBetween { .. } => Opcode::HistoryBetween,
            Request::DiffVersions { .. } => Opcode::DiffVersions,
            Request::Merge { .. } => Opcode::Merge,
        }
    }

    /// Whether this request only reads — readable from a snapshot, and
    /// safe for the client to retry once over a fresh connection.
    pub fn is_read(&self) -> bool {
        !matches!(
            self,
            Request::Pnew { .. }
                | Request::Update { .. }
                | Request::UpdateVersion { .. }
                | Request::NewVersion { .. }
                | Request::NewVersionFrom { .. }
                | Request::Pdelete { .. }
                | Request::PdeleteVersion { .. }
                | Request::Promote
                | Request::Merge { .. }
        )
    }

    /// Encode into a frame payload (no length prefix), stamped with the
    /// client-assigned sequence id the response will echo.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_varint(seq);
        w.put_u8(self.opcode() as u8);
        match self {
            Request::Ping | Request::Stats | Request::Epoch | Request::Promote => {}
            Request::ReadFloor { epoch } => {
                w.put_varint(*epoch);
            }
            Request::Pnew { tag, body } => {
                w.put_varint(tag.0);
                w.put_bytes(body);
            }
            Request::Deref { oid, tag } => {
                w.put_varint(oid.0);
                w.put_varint(tag.0);
            }
            Request::DerefVersion { vid, tag } => {
                w.put_varint(vid.0);
                w.put_varint(tag.0);
            }
            Request::Update { oid, tag, body } => {
                w.put_varint(oid.0);
                w.put_varint(tag.0);
                w.put_bytes(body);
            }
            Request::UpdateVersion { vid, tag, body } => {
                w.put_varint(vid.0);
                w.put_varint(tag.0);
                w.put_bytes(body);
            }
            Request::NewVersion { oid }
            | Request::Pdelete { oid }
            | Request::VersionHistory { oid }
            | Request::CurrentVersion { oid }
            | Request::VersionCount { oid }
            | Request::Exists { oid } => {
                w.put_varint(oid.0);
            }
            Request::NewVersionFrom { vid }
            | Request::PdeleteVersion { vid }
            | Request::Dprevious { vid }
            | Request::Dnext { vid }
            | Request::Tprevious { vid }
            | Request::Tnext { vid }
            | Request::ObjectOf { vid }
            | Request::VersionExists { vid } => {
                w.put_varint(vid.0);
            }
            Request::Objects { tag } => {
                w.put_varint(tag.0);
            }
            Request::ObjectsPage { tag, after, limit } => {
                w.put_varint(tag.0);
                w.put_varint(after.0);
                w.put_varint(*limit);
            }
            Request::HistoryBetween { oid, from, to } => {
                w.put_varint(oid.0);
                w.put_varint(*from);
                w.put_varint(*to);
            }
            Request::DiffVersions { from, to } => {
                w.put_varint(from.0);
                w.put_varint(to.0);
            }
            Request::Merge { a, b, policy } => {
                w.put_varint(a.0);
                w.put_varint(b.0);
                w.put_u8(policy.as_u8());
            }
        }
        w.into_bytes()
    }

    /// Decode just the sequence id from a request payload — the part a
    /// server can still echo in an error frame when the rest of the
    /// payload is garbage.
    pub fn decode_seq(payload: &[u8]) -> Result<u64> {
        Ok(Reader::new(payload).get_varint()?)
    }

    /// Decode a frame payload into its sequence id and request. Strict:
    /// unknown opcodes and trailing bytes are protocol errors.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request)> {
        let mut r = Reader::new(payload);
        let seq = r.get_varint()?;
        let op = r.get_u8()?;
        let op = Opcode::from_u8(op)
            .ok_or_else(|| NetError::Protocol(format!("unknown request opcode {op}")))?;
        let req = match op {
            Opcode::Ping => Request::Ping,
            Opcode::Stats => Request::Stats,
            Opcode::Pnew => Request::Pnew {
                tag: TypeTag(r.get_varint()?),
                body: r.get_bytes()?.to_vec(),
            },
            Opcode::Deref => Request::Deref {
                oid: Oid(r.get_varint()?),
                tag: TypeTag(r.get_varint()?),
            },
            Opcode::DerefVersion => Request::DerefVersion {
                vid: Vid(r.get_varint()?),
                tag: TypeTag(r.get_varint()?),
            },
            Opcode::Update => Request::Update {
                oid: Oid(r.get_varint()?),
                tag: TypeTag(r.get_varint()?),
                body: r.get_bytes()?.to_vec(),
            },
            Opcode::UpdateVersion => Request::UpdateVersion {
                vid: Vid(r.get_varint()?),
                tag: TypeTag(r.get_varint()?),
                body: r.get_bytes()?.to_vec(),
            },
            Opcode::NewVersion => Request::NewVersion {
                oid: Oid(r.get_varint()?),
            },
            Opcode::NewVersionFrom => Request::NewVersionFrom {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Pdelete => Request::Pdelete {
                oid: Oid(r.get_varint()?),
            },
            Opcode::PdeleteVersion => Request::PdeleteVersion {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Dprevious => Request::Dprevious {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Dnext => Request::Dnext {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Tprevious => Request::Tprevious {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Tnext => Request::Tnext {
                vid: Vid(r.get_varint()?),
            },
            Opcode::VersionHistory => Request::VersionHistory {
                oid: Oid(r.get_varint()?),
            },
            Opcode::CurrentVersion => Request::CurrentVersion {
                oid: Oid(r.get_varint()?),
            },
            Opcode::Objects => Request::Objects {
                tag: TypeTag(r.get_varint()?),
            },
            Opcode::ObjectsPage => Request::ObjectsPage {
                tag: TypeTag(r.get_varint()?),
                after: Oid(r.get_varint()?),
                limit: r.get_varint()?,
            },
            Opcode::ObjectOf => Request::ObjectOf {
                vid: Vid(r.get_varint()?),
            },
            Opcode::VersionCount => Request::VersionCount {
                oid: Oid(r.get_varint()?),
            },
            Opcode::Exists => Request::Exists {
                oid: Oid(r.get_varint()?),
            },
            Opcode::VersionExists => Request::VersionExists {
                vid: Vid(r.get_varint()?),
            },
            Opcode::Epoch => Request::Epoch,
            Opcode::ReadFloor => Request::ReadFloor {
                epoch: r.get_varint()?,
            },
            Opcode::Promote => Request::Promote,
            Opcode::HistoryBetween => Request::HistoryBetween {
                oid: Oid(r.get_varint()?),
                from: r.get_varint()?,
                to: r.get_varint()?,
            },
            Opcode::DiffVersions => Request::DiffVersions {
                from: Vid(r.get_varint()?),
                to: Vid(r.get_varint()?),
            },
            Opcode::Merge => Request::Merge {
                a: Vid(r.get_varint()?),
                b: Vid(r.get_varint()?),
                policy: {
                    let p = r.get_u8()?;
                    MergePolicy::from_u8(p).ok_or_else(|| {
                        NetError::Protocol(format!("unknown merge policy byte {p}"))
                    })?
                },
            },
        };
        if r.remaining() != 0 {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after {} request",
                r.remaining(),
                op.name()
            )));
        }
        Ok((seq, req))
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Response-kind byte values (first byte of every response payload
/// after the sequence id varint). `pub(crate)` so the router can
/// recognize re-taggable response shapes without a full decode.
pub(crate) mod kind {
    pub const PONG: u8 = 0;
    pub const STATS: u8 = 1;
    pub const CREATED: u8 = 2;
    pub const VERSION: u8 = 3;
    pub const BODY: u8 = 4;
    pub const UNIT: u8 = 5;
    pub const MAYBE_VERSION: u8 = 6;
    pub const VERSIONS: u8 = 7;
    pub const OBJECTS: u8 = 8;
    pub const OBJECT: u8 = 9;
    pub const COUNT: u8 = 10;
    pub const FLAG: u8 = 11;
    pub const DIFF: u8 = 12;
    pub const MERGED: u8 = 13;
    pub const ERR: u8 = 255;
}

/// A version-to-version difference summary, the reply to
/// `DiffVersions` — the wire view of the core's `VersionDiff`, flat
/// varint fields so the router can remap the vids without decoding the
/// rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffSummary {
    /// Base version.
    pub from: Vid,
    /// Target version.
    pub to: Vid,
    /// Length of the target state in bytes.
    pub to_len: u64,
    /// Number of copy/insert ops in the delta.
    pub ops: u64,
    /// Bytes the delta carries literally (not copied from the base).
    pub literal_bytes: u64,
    /// Encoded size of the delta in bytes.
    pub encoded_bytes: u64,
    /// Whether this delta was served straight from the object's stored
    /// chain (adjacent versions) rather than computed on demand.
    pub stored: bool,
}

/// Storage-engine contention and commit counters, nested inside
/// [`StatsReport`] — the server-side view of
/// `ode_storage::StoreStats`, so operators can watch reader/writer
/// lock waits and group-commit batching over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Read transactions (snapshots) begun.
    pub read_txs: u64,
    /// Write transactions committed with a non-empty write set.
    pub write_txs: u64,
    /// Snapshot acquisitions that blocked at the snapshot gate.
    pub reader_waits: u64,
    /// Total nanoseconds readers spent blocked.
    pub reader_wait_nanos: u64,
    /// Writer acquisitions (write mutex or publish gate) that blocked.
    pub writer_waits: u64,
    /// Total nanoseconds writers spent blocked.
    pub writer_wait_nanos: u64,
    /// WAL fsyncs issued (inline and group-leader).
    pub wal_syncs: u64,
    /// fsyncs performed by a group-commit leader.
    pub group_syncs: u64,
    /// Commits made durable by a group-leader fsync.
    pub group_commit_txns: u64,
    /// Largest commit cohort one group fsync covered.
    pub group_batch_max: u64,
    /// WAL + snapshot bytes shipped to replicas.
    pub bytes_shipped: u64,
    /// Worst replica lag behind the primary, in commit epochs (gauge).
    pub replica_lag_epochs: u64,
    /// Replica-to-primary promotions this node has performed.
    pub failovers: u64,
    /// Optimistic transactions aborted by first-committer-wins
    /// validation (each one re-executed by the retry loop or surfaced
    /// to the client).
    pub write_conflicts: u64,
    /// Re-executions of conflicted transactions.
    pub write_retries: u64,
}

impl StorageCounters {
    fn encode_into(&self, w: &mut Writer) {
        w.put_varint(self.read_txs);
        w.put_varint(self.write_txs);
        w.put_varint(self.reader_waits);
        w.put_varint(self.reader_wait_nanos);
        w.put_varint(self.writer_waits);
        w.put_varint(self.writer_wait_nanos);
        w.put_varint(self.wal_syncs);
        w.put_varint(self.group_syncs);
        w.put_varint(self.group_commit_txns);
        w.put_varint(self.group_batch_max);
        w.put_varint(self.bytes_shipped);
        w.put_varint(self.replica_lag_epochs);
        w.put_varint(self.failovers);
        w.put_varint(self.write_conflicts);
        w.put_varint(self.write_retries);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<StorageCounters> {
        Ok(StorageCounters {
            read_txs: r.get_varint()?,
            write_txs: r.get_varint()?,
            reader_waits: r.get_varint()?,
            reader_wait_nanos: r.get_varint()?,
            writer_waits: r.get_varint()?,
            writer_wait_nanos: r.get_varint()?,
            wal_syncs: r.get_varint()?,
            group_syncs: r.get_varint()?,
            group_commit_txns: r.get_varint()?,
            group_batch_max: r.get_varint()?,
            bytes_shipped: r.get_varint()?,
            replica_lag_epochs: r.get_varint()?,
            failovers: r.get_varint()?,
            write_conflicts: r.get_varint()?,
            write_retries: r.get_varint()?,
        })
    }
}

/// Server statistics, shipped by the `Stats` opcode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Connections currently in a session (post-handshake).
    pub active_connections: u64,
    /// Connections accepted over the server's lifetime.
    pub total_connections: u64,
    /// Frame payload bytes received (length prefixes included).
    pub bytes_in: u64,
    /// Frame payload bytes sent (length prefixes included).
    pub bytes_out: u64,
    /// Frames that violated the protocol (bad opcode, bad payload).
    pub protocol_errors: u64,
    /// Requests that executed and failed (error frames sent).
    pub op_errors: u64,
    /// Read requests answered from the server's snapshot cache without
    /// touching the store.
    pub snapshot_hits: u64,
    /// Read requests that had to open a fresh database snapshot.
    pub snapshot_misses: u64,
    /// Connections evicted because their response backlog exceeded the
    /// server's write-buffer cap (a slow or stalled reader).
    pub slow_client_evictions: u64,
    /// Historical reads answered from the materialization cache
    /// (delta-chain states rebuilt earlier this commit epoch).
    pub materialize_hits: u64,
    /// Historical reads that had to replay the delta chain.
    pub materialize_misses: u64,
    /// Per-opcode request counts; only non-zero entries are listed.
    pub requests: Vec<(Opcode, u64)>,
    /// Storage-engine contention and commit counters.
    pub storage: StorageCounters,
}

impl StatsReport {
    /// The count recorded for one opcode.
    pub fn requests_for(&self, op: Opcode) -> u64 {
        self.requests
            .iter()
            .find(|(o, _)| *o == op)
            .map_or(0, |(_, n)| *n)
    }

    /// Total requests across every opcode.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|(_, n)| *n).sum()
    }

    fn encode_into(&self, w: &mut Writer) {
        w.put_varint(self.active_connections);
        w.put_varint(self.total_connections);
        w.put_varint(self.bytes_in);
        w.put_varint(self.bytes_out);
        w.put_varint(self.protocol_errors);
        w.put_varint(self.op_errors);
        w.put_varint(self.snapshot_hits);
        w.put_varint(self.snapshot_misses);
        w.put_varint(self.slow_client_evictions);
        w.put_varint(self.materialize_hits);
        w.put_varint(self.materialize_misses);
        w.put_varint(self.requests.len() as u64);
        for (op, n) in &self.requests {
            w.put_u8(*op as u8);
            w.put_varint(*n);
        }
        self.storage.encode_into(w);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<StatsReport> {
        let active_connections = r.get_varint()?;
        let total_connections = r.get_varint()?;
        let bytes_in = r.get_varint()?;
        let bytes_out = r.get_varint()?;
        let protocol_errors = r.get_varint()?;
        let op_errors = r.get_varint()?;
        let snapshot_hits = r.get_varint()?;
        let snapshot_misses = r.get_varint()?;
        let slow_client_evictions = r.get_varint()?;
        let materialize_hits = r.get_varint()?;
        let materialize_misses = r.get_varint()?;
        let n = r.get_count()?;
        let mut requests = Vec::with_capacity(n.min(OPCODE_COUNT));
        for _ in 0..n {
            let op = r.get_u8()?;
            let op = Opcode::from_u8(op)
                .ok_or_else(|| NetError::Protocol(format!("unknown stats opcode {op}")))?;
            requests.push((op, r.get_varint()?));
        }
        let storage = StorageCounters::decode_from(r)?;
        Ok(StatsReport {
            active_connections,
            total_connections,
            bytes_in,
            bytes_out,
            protocol_errors,
            op_errors,
            snapshot_hits,
            snapshot_misses,
            slow_client_evictions,
            materialize_hits,
            materialize_misses,
            requests,
            storage,
        })
    }
}

/// One response frame's decoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to `Ping`.
    Pong,
    /// Reply to `Stats`.
    Stats(StatsReport),
    /// Reply to `Pnew`: the new object and its first version.
    Created {
        /// New object id.
        oid: Oid,
        /// Its first version.
        vid: Vid,
    },
    /// A single version id (`NewVersion`, `NewVersionFrom`, `Update`,
    /// `CurrentVersion`).
    Version(Vid),
    /// An encoded body plus the version it came from (`Deref`,
    /// `DerefVersion`).
    Body {
        /// The version the body belongs to (for `Deref`, the resolved
        /// latest).
        vid: Vid,
        /// `Persist`-encoded object state.
        bytes: Vec<u8>,
    },
    /// Success with nothing to return (`UpdateVersion`, `Pdelete`,
    /// `PdeleteVersion`).
    Unit,
    /// An optional version id (the four traversals).
    MaybeVersion(Option<Vid>),
    /// A list of version ids (`Dnext`, `VersionHistory`).
    Versions(Vec<Vid>),
    /// A list of object ids (`Objects`, `ObjectsPage`).
    Objects(Vec<Oid>),
    /// A single object id (`ObjectOf`).
    Object(Oid),
    /// A count (`VersionCount`).
    Count(u64),
    /// A boolean (`Exists`, `VersionExists`).
    Flag(bool),
    /// A version-difference summary (`DiffVersions`).
    Diff(DiffSummary),
    /// The outcome of a `Merge`: the checked-in two-parent version
    /// (`None` when the `Fail` policy met conflicts) and every
    /// conflicting byte range. Conflict offsets are positions in the
    /// merge base's body — shard-agnostic, so a router passes them
    /// through untouched.
    Merged {
        /// The new merge version, when one was checked in.
        vid: Option<Vid>,
        /// Overlapping edits between the two sides.
        conflicts: Vec<MergeConflict>,
    },
    /// The operation failed on the server.
    Err(RemoteError),
}

impl Response {
    /// Short name of this response's shape (protocol-error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Stats(_) => "stats",
            Response::Created { .. } => "created",
            Response::Version(_) => "version",
            Response::Body { .. } => "body",
            Response::Unit => "unit",
            Response::MaybeVersion(_) => "maybe_version",
            Response::Versions(_) => "versions",
            Response::Objects(_) => "objects",
            Response::Object(_) => "object",
            Response::Count(_) => "count",
            Response::Flag(_) => "flag",
            Response::Diff(_) => "diff",
            Response::Merged { .. } => "merged",
            Response::Err(_) => "err",
        }
    }

    /// Decode just the echoed sequence id from a response payload — the
    /// part a client can still correlate when the rest of the payload
    /// is garbage (see [`crate::OdeClient::recv`] on per-request decode
    /// errors).
    pub fn decode_seq(payload: &[u8]) -> Result<u64> {
        Ok(Reader::new(payload).get_varint()?)
    }

    /// Encode into a frame payload (no length prefix), echoing the
    /// sequence id of the request this response answers.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_varint(seq);
        match self {
            Response::Pong => w.put_u8(kind::PONG),
            Response::Stats(report) => {
                w.put_u8(kind::STATS);
                report.encode_into(&mut w);
            }
            Response::Created { oid, vid } => {
                w.put_u8(kind::CREATED);
                w.put_varint(oid.0);
                w.put_varint(vid.0);
            }
            Response::Version(vid) => {
                w.put_u8(kind::VERSION);
                w.put_varint(vid.0);
            }
            Response::Body { vid, bytes } => {
                w.put_u8(kind::BODY);
                w.put_varint(vid.0);
                w.put_bytes(bytes);
            }
            Response::Unit => w.put_u8(kind::UNIT),
            Response::MaybeVersion(vid) => {
                w.put_u8(kind::MAYBE_VERSION);
                match vid {
                    None => w.put_u8(0),
                    Some(vid) => {
                        w.put_u8(1);
                        w.put_varint(vid.0);
                    }
                }
            }
            Response::Versions(vids) => {
                w.put_u8(kind::VERSIONS);
                w.put_varint(vids.len() as u64);
                for vid in vids {
                    w.put_varint(vid.0);
                }
            }
            Response::Objects(oids) => {
                w.put_u8(kind::OBJECTS);
                w.put_varint(oids.len() as u64);
                for oid in oids {
                    w.put_varint(oid.0);
                }
            }
            Response::Object(oid) => {
                w.put_u8(kind::OBJECT);
                w.put_varint(oid.0);
            }
            Response::Count(n) => {
                w.put_u8(kind::COUNT);
                w.put_varint(*n);
            }
            Response::Flag(b) => {
                w.put_u8(kind::FLAG);
                w.put_u8(*b as u8);
            }
            Response::Diff(d) => {
                w.put_u8(kind::DIFF);
                w.put_varint(d.from.0);
                w.put_varint(d.to.0);
                w.put_varint(d.to_len);
                w.put_varint(d.ops);
                w.put_varint(d.literal_bytes);
                w.put_varint(d.encoded_bytes);
                w.put_u8(d.stored as u8);
            }
            Response::Merged { vid, conflicts } => {
                w.put_u8(kind::MERGED);
                match vid {
                    None => w.put_u8(0),
                    Some(vid) => {
                        w.put_u8(1);
                        w.put_varint(vid.0);
                    }
                }
                w.put_varint(conflicts.len() as u64);
                for c in conflicts {
                    w.put_varint(c.base_start);
                    w.put_varint(c.base_end);
                    w.put_bytes(&c.ours);
                    w.put_bytes(&c.theirs);
                }
            }
            Response::Err(e) => {
                w.put_u8(kind::ERR);
                w.put_u8(e.code());
                match e {
                    RemoteError::UnknownObject(oid) => {
                        w.put_varint(oid.0);
                        w.put_varint(0);
                        w.put_bytes(&[]);
                    }
                    RemoteError::UnknownVersion(vid) | RemoteError::LastVersion(vid) => {
                        w.put_varint(vid.0);
                        w.put_varint(0);
                        w.put_bytes(&[]);
                    }
                    RemoteError::TypeMismatch { expected, found } => {
                        w.put_varint(expected.0);
                        w.put_varint(found.0);
                        w.put_bytes(&[]);
                    }
                    RemoteError::Storage(msg)
                    | RemoteError::BadRequest(msg)
                    | RemoteError::Unavailable(msg) => {
                        w.put_varint(0);
                        w.put_varint(0);
                        w.put_bytes(msg.as_bytes());
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload into the echoed sequence id and the
    /// response. Strict: unknown kinds, unknown error codes, and
    /// trailing bytes are protocol errors.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response)> {
        let mut r = Reader::new(payload);
        let seq = r.get_varint()?;
        let k = r.get_u8()?;
        let resp = match k {
            kind::PONG => Response::Pong,
            kind::STATS => Response::Stats(StatsReport::decode_from(&mut r)?),
            kind::CREATED => Response::Created {
                oid: Oid(r.get_varint()?),
                vid: Vid(r.get_varint()?),
            },
            kind::VERSION => Response::Version(Vid(r.get_varint()?)),
            kind::BODY => Response::Body {
                vid: Vid(r.get_varint()?),
                bytes: r.get_bytes()?.to_vec(),
            },
            kind::UNIT => Response::Unit,
            kind::MAYBE_VERSION => match r.get_u8()? {
                0 => Response::MaybeVersion(None),
                1 => Response::MaybeVersion(Some(Vid(r.get_varint()?))),
                b => {
                    return Err(NetError::Protocol(format!(
                        "bad option discriminant {b} in maybe_version response"
                    )))
                }
            },
            kind::VERSIONS => {
                let n = r.get_count()?;
                let mut vids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    vids.push(Vid(r.get_varint()?));
                }
                Response::Versions(vids)
            }
            kind::OBJECTS => {
                let n = r.get_count()?;
                let mut oids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    oids.push(Oid(r.get_varint()?));
                }
                Response::Objects(oids)
            }
            kind::OBJECT => Response::Object(Oid(r.get_varint()?)),
            kind::COUNT => Response::Count(r.get_varint()?),
            kind::FLAG => Response::Flag(r.get_u8()? != 0),
            kind::DIFF => Response::Diff(DiffSummary {
                from: Vid(r.get_varint()?),
                to: Vid(r.get_varint()?),
                to_len: r.get_varint()?,
                ops: r.get_varint()?,
                literal_bytes: r.get_varint()?,
                encoded_bytes: r.get_varint()?,
                stored: r.get_u8()? != 0,
            }),
            kind::MERGED => {
                let vid = match r.get_u8()? {
                    0 => None,
                    1 => Some(Vid(r.get_varint()?)),
                    b => {
                        return Err(NetError::Protocol(format!(
                            "bad option discriminant {b} in merged response"
                        )))
                    }
                };
                let n = r.get_count()?;
                let mut conflicts = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    conflicts.push(MergeConflict {
                        base_start: r.get_varint()?,
                        base_end: r.get_varint()?,
                        ours: r.get_bytes()?.to_vec(),
                        theirs: r.get_bytes()?.to_vec(),
                    });
                }
                Response::Merged { vid, conflicts }
            }
            kind::ERR => {
                let code = r.get_u8()?;
                let a = r.get_varint()?;
                let b = r.get_varint()?;
                let msg = String::from_utf8_lossy(r.get_bytes()?).into_owned();
                let err = match code {
                    1 => RemoteError::UnknownObject(Oid(a)),
                    2 => RemoteError::UnknownVersion(Vid(a)),
                    3 => RemoteError::TypeMismatch {
                        expected: TypeTag(a),
                        found: TypeTag(b),
                    },
                    4 => RemoteError::LastVersion(Vid(a)),
                    5 => RemoteError::Storage(msg),
                    6 => RemoteError::BadRequest(msg),
                    7 => RemoteError::Unavailable(msg),
                    c => return Err(NetError::Protocol(format!("unknown remote error code {c}"))),
                };
                Response::Err(err)
            }
            k => {
                return Err(NetError::Protocol(format!(
                    "unknown response kind byte {k}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after {} response",
                r.remaining(),
                resp.kind_name()
            )));
        }
        Ok((seq, resp))
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame. Returns the total bytes written
/// (prefix + payload). The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    let mut prefix = Vec::with_capacity(varint::MAX_VARINT_LEN);
    varint::write_u64(&mut prefix, payload.len() as u64);
    w.write_all(&prefix)?;
    w.write_all(payload)?;
    Ok((prefix.len() + payload.len()) as u64)
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// *at a frame boundary* (the peer hung up between frames); EOF inside
/// a frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.then_some(payload))
}

/// Like [`read_frame`], but reads the payload into `buf` (cleared
/// first), so a hot receive loop can reuse one allocation across
/// frames. Returns `Ok(false)` on clean EOF before the first length
/// byte.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool> {
    // Varint length prefix, byte by byte off the stream.
    let mut len: u64 = 0;
    let mut shift: u32 = 0;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && first => return Ok(false),
            Err(e) => return Err(NetError::Io(e)),
        }
        first = false;
        if shift >= 63 && byte[0] > 1 {
            return Err(NetError::Protocol("frame length varint overflow".into()));
        }
        len |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(NetError::Protocol("frame length varint overflow".into()));
        }
    }
    if len as usize > MAX_FRAME_LEN {
        return Err(NetError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Incremental frame decoder for nonblocking sockets.
///
/// Bytes arrive in arbitrary splits (a readiness loop reads whatever
/// the kernel has); [`FrameBuffer::extend`] accumulates them and
/// [`FrameBuffer::next_frame`] yields each complete payload without
/// ever blocking. Frame-level corruption — a varint length prefix
/// that overflows or exceeds [`MAX_FRAME_LEN`] — is an error exactly
/// where [`read_frame_into`] would fail, and poisons the buffer (the
/// stream has no recoverable framing past that point).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before `start` belong to already-yielded frames.
    start: usize,
    poisoned: bool,
}

impl FrameBuffer {
    /// An empty accumulator.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only once the dead prefix dominates, so a
        // busy connection isn't memmoving on every frame.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete frame payload, or `Ok(None)` if more bytes
    /// are needed.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>> {
        if self.poisoned {
            return Err(NetError::Protocol("frame stream already corrupt".into()));
        }
        let avail = &self.buf[self.start..];
        // Parse the varint length prefix.
        let mut len: u64 = 0;
        let mut shift: u32 = 0;
        let mut prefix = 0usize;
        loop {
            let Some(&byte) = avail.get(prefix) else {
                return Ok(None);
            };
            prefix += 1;
            if shift >= 63 && byte > 1 {
                self.poisoned = true;
                return Err(NetError::Protocol("frame length varint overflow".into()));
            }
            len |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                self.poisoned = true;
                return Err(NetError::Protocol("frame length varint overflow".into()));
            }
        }
        if len as usize > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(NetError::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
            )));
        }
        let total = prefix + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload_start = self.start + prefix;
        self.start += total;
        Ok(Some(&self.buf[payload_start..payload_start + len as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        for seq in [0, 1, 300, u64::MAX] {
            let bytes = req.encode(seq);
            assert_eq!(Request::decode_seq(&bytes).unwrap(), seq);
            assert_eq!(Request::decode(&bytes).unwrap(), (seq, req.clone()));
        }
    }

    fn round_trip_response(resp: Response) {
        for seq in [0, 1, 300, u64::MAX] {
            let bytes = resp.encode(seq);
            assert_eq!(Response::decode(&bytes).unwrap(), (seq, resp.clone()));
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Pnew {
            tag: TypeTag(0xDEAD_BEEF),
            body: vec![1, 2, 3],
        });
        round_trip_request(Request::Deref {
            oid: Oid(7),
            tag: TypeTag(u64::MAX),
        });
        round_trip_request(Request::DerefVersion {
            vid: Vid(9),
            tag: TypeTag(1),
        });
        round_trip_request(Request::Update {
            oid: Oid(1),
            tag: TypeTag(2),
            body: vec![],
        });
        round_trip_request(Request::UpdateVersion {
            vid: Vid(3),
            tag: TypeTag(4),
            body: vec![255; 300],
        });
        round_trip_request(Request::NewVersion { oid: Oid(1) });
        round_trip_request(Request::NewVersionFrom { vid: Vid(2) });
        round_trip_request(Request::Pdelete { oid: Oid(3) });
        round_trip_request(Request::PdeleteVersion { vid: Vid(4) });
        round_trip_request(Request::Dprevious { vid: Vid(5) });
        round_trip_request(Request::Dnext { vid: Vid(6) });
        round_trip_request(Request::Tprevious { vid: Vid(7) });
        round_trip_request(Request::Tnext { vid: Vid(8) });
        round_trip_request(Request::VersionHistory { oid: Oid(9) });
        round_trip_request(Request::CurrentVersion { oid: Oid(10) });
        round_trip_request(Request::Objects { tag: TypeTag(11) });
        round_trip_request(Request::ObjectsPage {
            tag: TypeTag(12),
            after: Oid(13),
            limit: 14,
        });
        round_trip_request(Request::ObjectOf { vid: Vid(15) });
        round_trip_request(Request::VersionCount { oid: Oid(16) });
        round_trip_request(Request::Exists { oid: Oid(17) });
        round_trip_request(Request::VersionExists { vid: Vid(18) });
        round_trip_request(Request::Epoch);
        round_trip_request(Request::ReadFloor { epoch: 19 });
        round_trip_request(Request::ReadFloor { epoch: 0 });
        round_trip_request(Request::Promote);
        round_trip_request(Request::HistoryBetween {
            oid: Oid(20),
            from: 3,
            to: u64::MAX,
        });
        round_trip_request(Request::DiffVersions {
            from: Vid(21),
            to: Vid(22),
        });
        for policy in [MergePolicy::Fail, MergePolicy::Ours, MergePolicy::Theirs] {
            round_trip_request(Request::Merge {
                a: Vid(23),
                b: Vid(24),
                policy,
            });
        }
    }

    #[test]
    fn merge_is_a_write() {
        assert!(!Request::Merge {
            a: Vid(1),
            b: Vid(2),
            policy: MergePolicy::Fail
        }
        .is_read());
    }

    #[test]
    fn unknown_merge_policy_is_a_protocol_error() {
        let mut bytes = Request::Merge {
            a: Vid(1),
            b: Vid(2),
            policy: MergePolicy::Fail,
        }
        .encode(0);
        *bytes.last_mut().unwrap() = 9;
        assert!(matches!(
            Request::decode(&bytes),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn history_and_diff_are_reads() {
        assert!(Request::HistoryBetween {
            oid: Oid(1),
            from: 0,
            to: 10
        }
        .is_read());
        assert!(Request::DiffVersions {
            from: Vid(1),
            to: Vid(2)
        }
        .is_read());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::Stats(StatsReport {
            active_connections: 1,
            total_connections: 9,
            bytes_in: 1000,
            bytes_out: 2000,
            protocol_errors: 1,
            op_errors: 2,
            snapshot_hits: 41,
            snapshot_misses: 12,
            slow_client_evictions: 3,
            materialize_hits: 17,
            materialize_misses: 5,
            requests: vec![(Opcode::Ping, 3), (Opcode::Pnew, 4)],
            storage: StorageCounters {
                read_txs: 100,
                write_txs: 20,
                reader_waits: 3,
                reader_wait_nanos: 4500,
                writer_waits: 2,
                writer_wait_nanos: 800,
                wal_syncs: 12,
                group_syncs: 5,
                group_commit_txns: 18,
                group_batch_max: 6,
                bytes_shipped: 4096,
                replica_lag_epochs: 2,
                failovers: 1,
                write_conflicts: 7,
                write_retries: 6,
            },
        }));
        round_trip_response(Response::Created {
            oid: Oid(1),
            vid: Vid(2),
        });
        round_trip_response(Response::Version(Vid(3)));
        round_trip_response(Response::Body {
            vid: Vid(4),
            bytes: vec![9; 17],
        });
        round_trip_response(Response::Unit);
        round_trip_response(Response::MaybeVersion(None));
        round_trip_response(Response::MaybeVersion(Some(Vid(5))));
        round_trip_response(Response::Versions(vec![Vid(1), Vid(2), Vid(3)]));
        round_trip_response(Response::Objects(vec![Oid(4), Oid(5)]));
        round_trip_response(Response::Object(Oid(6)));
        round_trip_response(Response::Count(7));
        round_trip_response(Response::Flag(true));
        round_trip_response(Response::Flag(false));
        round_trip_response(Response::Diff(DiffSummary {
            from: Vid(8),
            to: Vid(9),
            to_len: 600,
            ops: 5,
            literal_bytes: 48,
            encoded_bytes: 70,
            stored: true,
        }));
        round_trip_response(Response::Diff(DiffSummary {
            from: Vid(0),
            to: Vid(0),
            to_len: 0,
            ops: 0,
            literal_bytes: 0,
            encoded_bytes: 0,
            stored: false,
        }));
        round_trip_response(Response::Merged {
            vid: Some(Vid(10)),
            conflicts: vec![],
        });
        round_trip_response(Response::Merged {
            vid: None,
            conflicts: vec![
                MergeConflict {
                    base_start: 5,
                    base_end: 9,
                    ours: vec![1, 2, 3],
                    theirs: vec![],
                },
                MergeConflict {
                    base_start: 40,
                    base_end: 40,
                    ours: vec![7],
                    theirs: vec![8; 300],
                },
            ],
        });
        for err in [
            RemoteError::UnknownObject(Oid(1)),
            RemoteError::UnknownVersion(Vid(2)),
            RemoteError::TypeMismatch {
                expected: TypeTag(3),
                found: TypeTag(4),
            },
            RemoteError::LastVersion(Vid(5)),
            RemoteError::Storage("disk on fire".into()),
            RemoteError::BadRequest("garbage".into()),
            RemoteError::Unavailable("shard 2 is reconnecting".into()),
        ] {
            round_trip_response(Response::Err(err));
        }
    }

    #[test]
    fn response_seq_is_recoverable_from_an_undecodable_payload() {
        // Valid seq varint followed by an unknown kind byte: the full
        // decode fails, the seq alone still comes back.
        let mut bytes = Writer::new();
        bytes.put_varint(300);
        bytes.put_u8(200);
        let bytes = bytes.into_bytes();
        assert!(Response::decode(&bytes).is_err());
        assert_eq!(Response::decode_seq(&bytes).unwrap(), 300);
    }

    #[test]
    fn every_opcode_survives_the_byte_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(OPCODE_COUNT as u8), None);
    }

    #[test]
    fn unknown_opcode_is_a_protocol_error() {
        // Seq 0, then an out-of-range opcode byte.
        let err = Request::decode(&[0, 200]).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut bytes = Request::Ping.encode(7);
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(NetError::Protocol(_))
        ));
        let mut bytes = Response::Unit.encode(7);
        bytes.push(0);
        assert!(matches!(
            Response::decode(&bytes),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        let n1 = write_frame(&mut buf, b"hello").unwrap();
        let n2 = write_frame(&mut buf, &[]).unwrap();
        assert_eq!(n1, 6);
        assert_eq!(n2, 1);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), Vec::<u8>::new());
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(3); // length prefix + partial payload
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Io(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, (MAX_FRAME_LEN as u64) + 1);
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn frame_buffer_reassembles_byte_split_frames() {
        let mut wire = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1; 300], b"tail".to_vec()];
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        // Feed one byte at a time: every frame still comes out whole,
        // in order, and never early.
        let mut fb = FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(fb.pending(), 0);
        // And coalesced in one blob: identical result.
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while let Some(frame) = fb.next_frame().unwrap() {
            got.push(frame.to_vec());
        }
        assert_eq!(got, payloads);
    }

    #[test]
    fn frame_buffer_rejects_hostile_length_prefixes() {
        // Over the cap.
        let mut wire = Vec::new();
        varint::write_u64(&mut wire, (MAX_FRAME_LEN as u64) + 1);
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert!(fb.next_frame().is_err());
        // Poisoned: stays an error even after more bytes arrive.
        fb.extend(&[0; 16]);
        assert!(fb.next_frame().is_err());

        // Varint overflow (ten 0xFF continuation bytes).
        let mut fb = FrameBuffer::new();
        fb.extend(&[0xFF; 10]);
        assert!(fb.next_frame().is_err());

        // An incomplete prefix is just "need more bytes".
        let mut fb = FrameBuffer::new();
        fb.extend(&[0x80]);
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(&[0x01]); // length 128, no payload yet
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(&[0xAB; 128]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), &[0xAB; 128][..]);
    }
}
