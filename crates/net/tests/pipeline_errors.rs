//! Regression test: a response frame that decodes its sequence id but
//! not its payload must fail *that one request*, not the pipeline.
//!
//! The old behaviour dropped every queued response when a mid-batch
//! frame would not decode — `Pipeline::run` returned the decode error
//! and the backlogged siblings were lost with the poisoned connection.
//! The fix keeps the stream in sync (frames are length-delimited) and
//! stores the error under the offending sequence id, so
//! [`Pipeline::run_each`] hands back a per-request `Result` and the
//! connection keeps serving.
//!
//! The misbehaving server is a hand-rolled fake: real servers never
//! emit such frames, which is exactly why this needs a fake.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::thread::JoinHandle;

use ode_net::protocol::{read_frame, write_frame, MAGIC};
use ode_net::{ClientConfig, NetError, OdeClient, Request, Response};

/// Varint-encode `v` (LEB128), the wire's integer encoding.
fn varint(v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out
}

/// A frame whose sequence id is valid but whose kind byte (200) is
/// garbage: `Response::decode_seq` succeeds, `Response::decode` fails.
fn garbage_frame(seq: u64) -> Vec<u8> {
    let mut payload = varint(seq);
    payload.push(200);
    payload.extend_from_slice(b"junk");
    payload
}

/// Serve one connection: echo the handshake, read `expect` requests,
/// then answer them all — out of order, with the middle request's
/// response replaced by a garbage-kind frame.
fn start_fake_server(expect: usize, poison_index: usize) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut magic = [0u8; 4];
        stream.read_exact(&mut magic).expect("read magic");
        assert_eq!(magic, MAGIC);
        stream.write_all(&MAGIC).expect("echo magic");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut seqs = Vec::new();
        while seqs.len() < expect {
            let payload = read_frame(&mut reader)
                .expect("read request")
                .expect("client closed early");
            let (seq, _req) = Request::decode(&payload).expect("decode request");
            seqs.push(seq);
        }
        // Answer newest-first so the client must backlog responses —
        // the regression only bites when good frames sit behind the
        // bad one in the same read loop.
        for (i, &seq) in seqs.iter().enumerate().rev() {
            let frame = if i == poison_index {
                garbage_frame(seq)
            } else {
                Response::Count(seq).encode(seq)
            };
            write_frame(&mut stream, &frame).expect("write response");
        }
        stream.flush().expect("flush");
        // Hold the socket open until the client is done reading.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
    });
    (addr, handle)
}

#[test]
fn a_bad_frame_mid_batch_fails_only_its_own_request() {
    let (addr, server) = start_fake_server(5, 2);
    let mut client = OdeClient::connect(addr, ClientConfig::default()).expect("connect");

    let mut pipe = client.pipeline();
    let mut seqs = Vec::new();
    for _ in 0..5 {
        seqs.push(pipe.push(&Request::Ping).expect("push"));
    }
    let results = pipe.run_each();
    assert_eq!(results.len(), 5);
    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            assert!(
                result.is_err(),
                "slot 2 got the garbage frame, must surface its decode error"
            );
        } else {
            match result {
                Ok(Response::Count(n)) => assert_eq!(*n, seqs[i], "slot {i} answered wrongly"),
                other => panic!("slot {i}: expected its count, got {other:?}"),
            }
        }
    }

    drop(client);
    server.join().expect("fake server");
}

#[test]
fn recv_for_skips_over_a_siblings_bad_frame() {
    let (addr, server) = start_fake_server(3, 0);
    let mut client = OdeClient::connect(addr, ClientConfig::default()).expect("connect");

    let poisoned = client.send(&Request::Ping).expect("send 0");
    let a = client.send(&Request::Ping).expect("send 1");
    let b = client.send(&Request::Ping).expect("send 2");

    // Collecting the *good* requests first: the bad frame for `poisoned`
    // arrives interleaved and must be backlogged as that id's error,
    // not returned (or thrown) here.
    match client.recv_for(a).expect("recv a") {
        Response::Count(n) => assert_eq!(n, a),
        other => panic!("expected count, got {other:?}"),
    }
    match client.recv_for(b).expect("recv b") {
        Response::Count(n) => assert_eq!(n, b),
        other => panic!("expected count, got {other:?}"),
    }
    // The poisoned slot's error is waiting for whoever asks for it.
    assert!(client.recv_for(poisoned).is_err());
    // And the connection is not poisoned: asking again reports the id
    // as unknown (a clean protocol error), not a dead socket.
    match client.recv_for(poisoned) {
        Err(NetError::Protocol(_)) => {}
        other => panic!("expected not-in-flight protocol error, got {other:?}"),
    }

    drop(client);
    server.join().expect("fake server");
}
