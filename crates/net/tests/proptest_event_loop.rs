//! Differential battery for the event-loop server's per-connection
//! state machine: the same operation sequence is played against the
//! epoll-based [`OdeServer`] — through a [`FaultRelay`] that re-chunks
//! the byte stream at a proptest-chosen granularity — and against the
//! thread-per-connection [`ThreadedServer`] oracle on its own
//! identically-seeded database. Both servers assign oids/vids from the
//! same deterministic counters, so every response frame must come back
//! **byte-identical** when matched by sequence id, no matter how the
//! frames were split or coalesced on the wire.
//!
//! The second property is robustness: a connection feeding the server
//! arbitrary garbage after the handshake must never take the server
//! down — a fresh connection afterwards always gets its Pong.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ode::{Database, DatabaseOptions, Oid, TypeTag, Vid};
use ode_net::protocol::{read_frame_into, write_frame, Response, MAGIC};
use ode_net::{
    ClientConfig, FaultRelay, OdeClient, OdeServer, RelayPlan, Request, ServerConfig,
    ThreadedServer,
};
use proptest::prelude::*;

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

// ---------------------------------------------------------------------------
// Deterministic operation strategies
// ---------------------------------------------------------------------------

/// The tag every test object carries; nothing in the differential run
/// decodes bodies, so raw bytes under one tag exercise everything.
const TAG: TypeTag = TypeTag(0xD1FF);

/// Requests whose responses are fully determined by the op sequence:
/// no `Stats` (counters differ across implementations by design) and
/// no `Epoch`/`ReadFloor` (commit batching may group epochs
/// differently). Ids are drawn from a tiny space so later ops hit
/// objects earlier ops created — and miss, for the error paths.
fn arb_oid() -> impl Strategy<Value = Oid> {
    (0u64..8).prop_map(Oid)
}

fn arb_vid() -> impl Strategy<Value = Vid> {
    (0u64..12).prop_map(Vid)
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

fn arb_op() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        arb_body().prop_map(|body| Request::Pnew { tag: TAG, body }),
        arb_oid().prop_map(|oid| Request::Deref { oid, tag: TAG }),
        arb_vid().prop_map(|vid| Request::DerefVersion { vid, tag: TAG }),
        (arb_oid(), arb_body()).prop_map(|(oid, body)| Request::Update {
            oid,
            tag: TAG,
            body
        }),
        (arb_vid(), arb_body()).prop_map(|(vid, body)| Request::UpdateVersion {
            vid,
            tag: TAG,
            body
        }),
        arb_oid().prop_map(|oid| Request::NewVersion { oid }),
        arb_vid().prop_map(|vid| Request::NewVersionFrom { vid }),
        arb_oid().prop_map(|oid| Request::Pdelete { oid }),
        arb_vid().prop_map(|vid| Request::PdeleteVersion { vid }),
        arb_vid().prop_map(|vid| Request::Dprevious { vid }),
        arb_vid().prop_map(|vid| Request::Dnext { vid }),
        arb_vid().prop_map(|vid| Request::Tprevious { vid }),
        arb_vid().prop_map(|vid| Request::Tnext { vid }),
        arb_oid().prop_map(|oid| Request::VersionHistory { oid }),
        arb_oid().prop_map(|oid| Request::CurrentVersion { oid }),
        Just(Request::Objects { tag: TAG }),
        (arb_oid(), 0u64..6).prop_map(|(after, limit)| Request::ObjectsPage {
            tag: TAG,
            after,
            limit
        }),
        arb_vid().prop_map(|vid| Request::ObjectOf { vid }),
        arb_oid().prop_map(|oid| Request::VersionCount { oid }),
        arb_oid().prop_map(|oid| Request::Exists { oid }),
        arb_vid().prop_map(|vid| Request::VersionExists { vid }),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Raw pipelined connection
// ---------------------------------------------------------------------------

/// Handshake, fire every request frame in one pipelined burst, then
/// collect exactly one response frame per request, keyed by sequence
/// id (responses may arrive in any order).
fn play(addr: SocketAddr, ops: &[Request]) -> Vec<(u64, Vec<u8>)> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(&MAGIC).expect("send magic");
    let mut reader = BufReader::new(stream);
    let mut echo = [0u8; 4];
    reader.read_exact(&mut echo).expect("handshake echo");
    assert_eq!(echo, MAGIC);

    let mut burst = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let payload = op.encode(i as u64 + 1);
        write_frame(&mut burst, &payload).expect("frame");
    }
    writer.write_all(&burst).expect("send burst");
    writer.flush().expect("flush");

    let mut got: Vec<(u64, Vec<u8>)> = Vec::with_capacity(ops.len());
    let mut payload = Vec::new();
    while got.len() < ops.len() {
        assert!(
            read_frame_into(&mut reader, &mut payload).expect("response frame"),
            "server closed before answering every request"
        );
        let seq = Response::decode_seq(&payload).expect("response seq");
        got.push((seq, payload.clone()));
    }
    got.sort_by_key(|(seq, _)| *seq);
    got
}

fn run_differential(ops: &[Request], chunk: usize) {
    let event_path = TempPath::new();
    let oracle_path = TempPath::new();
    let event_db =
        Arc::new(Database::create(&event_path.0, DatabaseOptions::no_sync()).expect("event db"));
    let oracle_db =
        Arc::new(Database::create(&oracle_path.0, DatabaseOptions::no_sync()).expect("oracle db"));
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let event = OdeServer::bind(event_db, "127.0.0.1:0", config.clone()).expect("event server");
    let oracle = ThreadedServer::bind(oracle_db, "127.0.0.1:0", config).expect("oracle server");

    // The event-loop server reads through the relay's shredder: each
    // hop re-chunks at `chunk` bytes, so frames arrive split and
    // coalesced at arbitrary boundaries. The oracle reads clean.
    let plan = RelayPlan {
        chunk,
        ..RelayPlan::clean()
    };
    let relay = FaultRelay::start(event.local_addr(), vec![plan, plan]).expect("relay");

    let got = play(relay.local_addr(), ops);
    let want = play(oracle.local_addr(), ops);
    relay.shutdown();
    event.shutdown();
    oracle.shutdown();

    assert_eq!(got.len(), want.len());
    for ((gseq, gbytes), (wseq, wbytes)) in got.iter().zip(want.iter()) {
        assert_eq!(gseq, wseq);
        assert_eq!(
            gbytes,
            wbytes,
            "response for seq {gseq} diverged between event-loop and threaded servers \
             (op: {:?})",
            ops[*gseq as usize - 1]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The tentpole property: any pipelined op sequence, shredded at
    /// any byte granularity, answers byte-for-byte like the threaded
    /// oracle.
    #[test]
    fn event_loop_server_matches_threaded_oracle(
        ops in proptest::collection::vec(arb_op(), 1..24),
        chunk in prop_oneof![Just(1usize), 2usize..64, Just(usize::MAX)],
    ) {
        run_differential(&ops, chunk);
    }

    /// Garbage after a valid handshake must never crash or wedge the
    /// server: the offending connection dies (or is ignored), and a
    /// fresh client still gets service.
    #[test]
    fn garbage_bytes_never_panic_the_server(garbage in proptest::collection::vec(any::<u8>(), 1..512)) {
        let path = TempPath::new();
        let db = Arc::new(Database::create(&path.0, DatabaseOptions::no_sync()).expect("db"));
        let server =
            OdeServer::bind(db, "127.0.0.1:0", ServerConfig::default()).expect("server");

        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&MAGIC).expect("magic");
        let mut echo = [0u8; 4];
        stream.read_exact(&mut echo).expect("echo");
        // Hostile payload: whatever proptest dreamed up, then hang up.
        let _ = stream.write_all(&garbage);
        drop(stream);

        let mut c =
            OdeClient::connect(server.local_addr(), ClientConfig::default()).expect("fresh client");
        c.ping().expect("server must still answer after garbage");
        server.shutdown();
    }
}
