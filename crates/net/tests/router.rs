//! Integration tests for the `ode-router` shard tier.
//!
//! Three angles: cross-topology conformance (a 1-shard router must be
//! byte-indistinguishable from a direct server), full typed flows
//! through a 4-shard tier (placement, translation, scatter merges,
//! read-your-writes per oid), and reconnect-with-backoff after a shard
//! restart.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, Oid};
use ode_codec::{impl_persist_struct, impl_type_name, to_bytes};
use ode_net::{
    ClientConfig, ClientObjPtr, Cluster, ClusterConfig, NetError, OdeClient, OdeRouter, OdeServer,
    RemoteError, Request, Response, RouterConfig, ServerConfig,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "router-test/Doc");

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

fn doc(title: &str, revision: u64) -> Doc {
    Doc {
        title: title.into(),
        revision,
    }
}

fn tag() -> ode::TypeTag {
    ClientObjPtr::<Doc>::tag()
}

// ---------------------------------------------------------------------------
// Cross-topology conformance
// ---------------------------------------------------------------------------

/// Run the same request sequence against a direct server and a 1-shard
/// router in lockstep, asserting every response frame is byte-identical
/// (sequence ids included — both clients count from zero). With one
/// shard the id translation is the identity, so the tier must be
/// invisible: same ids, same bodies, same errors, same extent order.
#[test]
fn one_shard_router_is_byte_identical_to_a_direct_server() {
    let direct_path = TempPath::new();
    let direct_db = Arc::new(
        Database::create(&direct_path.0, DatabaseOptions::no_sync()).expect("create direct db"),
    );
    let direct_server = OdeServer::bind(
        Arc::clone(&direct_db),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind direct server");

    let routed_path = TempPath::new();
    let routed_db = Arc::new(
        Database::create(&routed_path.0, DatabaseOptions::no_sync()).expect("create routed db"),
    );
    let routed_server = OdeServer::bind(
        Arc::clone(&routed_db),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind routed server");
    let router = OdeRouter::bind(
        "127.0.0.1:0",
        vec![routed_server.local_addr()],
        RouterConfig::default(),
    )
    .expect("bind 1-shard router");

    let mut direct =
        OdeClient::connect(direct_server.local_addr(), ClientConfig::default()).expect("direct");
    let mut routed =
        OdeClient::connect(router.local_addr(), ClientConfig::default()).expect("routed");

    let mut step = |req: Request| -> Response {
        let ds = direct.send(&req).expect("send direct");
        let rs = routed.send(&req).expect("send routed");
        assert_eq!(ds, rs, "clients must assign identical sequence ids");
        let dr = direct.recv_for(ds).expect("recv direct");
        let rr = routed.recv_for(rs).expect("recv routed");
        assert_eq!(
            dr.encode(ds),
            rr.encode(rs),
            "response bytes diverged on {:?}: direct={dr:?} routed={rr:?}",
            req.opcode()
        );
        dr
    };

    // The read/write/version scenario set from the server tests,
    // replayed at the wire level. (Stats is excluded: its counters
    // describe the serving process, not the data, so a front tier
    // legitimately reports different plumbing.)
    let created = step(Request::Pnew {
        tag: tag(),
        body: to_bytes(&doc("conformance", 1)),
    });
    let (oid, v1) = match created {
        Response::Created { oid, vid } => (oid, vid),
        other => panic!("expected created, got {other:?}"),
    };
    step(Request::Ping);
    step(Request::Deref { oid, tag: tag() });
    step(Request::CurrentVersion { oid });
    let v2 = match step(Request::NewVersion { oid }) {
        Response::Version(vid) => vid,
        other => panic!("expected version, got {other:?}"),
    };
    step(Request::Update {
        oid,
        tag: tag(),
        body: to_bytes(&doc("conformance", 2)),
    });
    step(Request::Deref { oid, tag: tag() });
    step(Request::DerefVersion {
        vid: v1,
        tag: tag(),
    });
    step(Request::VersionHistory { oid });
    step(Request::Dprevious { vid: v2 });
    step(Request::Dnext { vid: v1 });
    step(Request::Tprevious { vid: v2 });
    step(Request::Tnext { vid: v1 });
    step(Request::VersionCount { oid });
    step(Request::Exists { oid });
    step(Request::VersionExists { vid: v1 });
    step(Request::ObjectOf { vid: v2 });

    // A second object so extent scans have something to order.
    step(Request::Pnew {
        tag: tag(),
        body: to_bytes(&doc("second", 1)),
    });
    step(Request::Objects { tag: tag() });
    step(Request::ObjectsPage {
        tag: tag(),
        after: Oid(0),
        limit: 1,
    });
    step(Request::ObjectsPage {
        tag: tag(),
        after: oid,
        limit: 10,
    });

    // Error conformance: unknown ids, wrong tags, refused deletions.
    step(Request::Deref {
        oid: Oid(9999),
        tag: tag(),
    });
    step(Request::Deref {
        oid,
        tag: ode::TypeTag(0xBAD),
    });
    step(Request::PdeleteVersion { vid: v1 });
    step(Request::PdeleteVersion { vid: v2 }); // now the last one: refused
    step(Request::Pdelete { oid });
    step(Request::Exists { oid });

    drop(routed);
    drop(direct);
    router.shutdown();
    routed_server.shutdown();
    direct_server.shutdown();
}

// ---------------------------------------------------------------------------
// Four-shard typed flows
// ---------------------------------------------------------------------------

#[test]
fn full_versioning_flow_through_a_four_shard_tier() {
    let config = ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config);
    let map = cluster.shard_map();
    let mut c =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");

    // Round-robin placement: four creations land on four shards.
    let ptrs: Vec<ClientObjPtr<Doc>> = (0..4)
        .map(|i| c.pnew(&doc(&format!("doc-{i}"), 1)).expect("pnew"))
        .collect();
    let shards: Vec<usize> = ptrs.iter().map(|p| map.shard_of(p.oid())).collect();
    let mut sorted = shards.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3], "round-robin must hit every shard");

    // Per-object versioning semantics survive the tier.
    let p = ptrs[0];
    let v1 = c.current_version(&p).expect("current_version");
    let v2 = c.newversion(&p).expect("newversion");
    assert_ne!(v1, v2);
    let (body, at) = c.deref(&p).expect("deref");
    assert_eq!(at, v2);
    assert_eq!(body.revision, 1);
    let v3 = c.put(&p, &doc("doc-0", 2)).expect("put");
    assert_eq!(v3, v2, "put overwrites the latest version in place");
    let (body, _) = c.deref(&p).expect("deref after put");
    assert_eq!(body.revision, 2);
    assert_eq!(
        c.version_history(&p).expect("history"),
        vec![v1, v2],
        "history is the object's, translated back to client ids"
    );
    assert_eq!(c.dprevious(&v2).expect("dprevious"), Some(v1));
    assert_eq!(c.dnext(&v1).expect("dnext"), vec![v2]);
    assert_eq!(c.tnext(&v1).expect("tnext"), Some(v2));
    assert_eq!(c.tprevious(&v2).expect("tprevious"), Some(v1));
    assert_eq!(c.object_of(&v2).expect("object_of"), p);
    assert_eq!(c.version_count(&p).expect("version_count"), 2);
    assert!(c.exists(&p).expect("exists"));
    assert!(c.version_exists(&v1).expect("version_exists"));

    // Every version id of an object lives on the object's shard.
    assert_eq!(map.shard_of_vid(v1.vid()), shards[0]);
    assert_eq!(map.shard_of_vid(v2.vid()), shards[0]);

    // Scatter: the extent merges all four shards in ascending id order.
    let all = c.objects::<Doc>().expect("objects");
    let mut ids: Vec<u64> = all.iter().map(|p| p.oid().0).collect();
    assert_eq!(all.len(), 4);
    let mut sorted_ids = ids.clone();
    sorted_ids.sort_unstable();
    assert_eq!(ids, sorted_ids, "merged extent must be ascending");
    for ptr in &ptrs {
        assert!(all.contains(ptr), "{ptr:?} missing from merged extent");
    }

    // Paging walks the same merged order, across shard boundaries.
    let mut paged: Vec<u64> = Vec::new();
    let mut after = Oid(0);
    loop {
        let page = c.objects_page::<Doc>(after, 3).expect("objects_page");
        if page.is_empty() {
            break;
        }
        paged.extend(page.iter().map(|p| p.oid().0));
        after = Oid(page.last().expect("non-empty page").oid().0 + 1);
        if page.len() < 3 {
            break;
        }
    }
    ids.sort_unstable();
    assert_eq!(paged, ids, "paging must reproduce the full merged extent");

    // Merged stats count the tier's work: four pnews total, spread out.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.requests_for(ode_net::Opcode::Pnew), 4);

    // Errors translate their ids back: the client sees the id it asked
    // about, not the backend-local one.
    let ghost: ClientObjPtr<Doc> = ClientObjPtr::from_oid(Oid(4242));
    match c.deref(&ghost) {
        Err(NetError::Remote(RemoteError::UnknownObject(oid))) => assert_eq!(oid, Oid(4242)),
        other => panic!("expected unknown-object, got {other:?}"),
    }

    // Deletion through the tier.
    c.pdelete_version(v1).expect("pdelete_version");
    assert_eq!(c.version_count(&p).expect("count after delete"), 1);
    match c.pdelete_version(v2) {
        Err(NetError::Remote(RemoteError::LastVersion(vid))) => assert_eq!(vid, v2.vid()),
        other => panic!("expected last-version refusal, got {other:?}"),
    }
    c.pdelete(p).expect("pdelete");
    assert!(!c.exists(&p).expect("exists after pdelete"));
    assert_eq!(c.objects::<Doc>().expect("objects after delete").len(), 3);
}

#[test]
fn pipelined_requests_fan_out_and_read_your_writes_holds_per_oid() {
    let config = ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config);
    let mut c =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");

    let ptrs: Vec<ClientObjPtr<Doc>> = (0..8)
        .map(|i| c.pnew(&doc(&format!("p{i}"), 0)).expect("pnew"))
        .collect();

    // A write followed by a pipelined read of the same oid must observe
    // the write: same shard, same backend connection, send order.
    let target = ptrs[3];
    let wseq = c
        .send(&Request::Update {
            oid: target.oid(),
            tag: tag(),
            body: to_bytes(&doc("p3", 77)),
        })
        .expect("send update");
    let rseq = c
        .send(&Request::Deref {
            oid: target.oid(),
            tag: tag(),
        })
        .expect("send deref");
    // Collect the read first — the router must still answer both.
    match c.recv_for(rseq).expect("recv deref") {
        Response::Body { bytes, .. } => {
            let read: Doc = ode_codec::from_bytes(&bytes).expect("decode");
            assert_eq!(read.revision, 77, "read-your-writes per oid");
        }
        other => panic!("expected body, got {other:?}"),
    }
    match c.recv_for(wseq).expect("recv update") {
        Response::Version(_) => {}
        other => panic!("expected version, got {other:?}"),
    }

    // A batch spanning all shards: every request answered under its own
    // sequence id, in request order regardless of shard timing.
    let mut pipe = c.pipeline();
    for ptr in &ptrs {
        pipe.push(&Request::Deref {
            oid: ptr.oid(),
            tag: tag(),
        })
        .expect("push");
    }
    let responses = pipe.run().expect("cross-shard pipeline");
    assert_eq!(responses.len(), 8);
    for (i, resp) in responses.iter().enumerate() {
        match resp {
            Response::Body { bytes, .. } => {
                let read: Doc = ode_codec::from_bytes(bytes).expect("decode");
                let want = if i == 3 { 77 } else { 0 };
                assert_eq!(read.revision, want, "slot {i} answered with wrong body");
            }
            other => panic!("slot {i}: expected body, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Reconnect with backoff
// ---------------------------------------------------------------------------

#[test]
fn a_restarted_shard_comes_back_with_its_data() {
    let mut config = ClusterConfig {
        shards: 2,
        ..ClusterConfig::default()
    };
    config.router.reconnect_backoff = Duration::from_millis(10);
    config.router.reconnect_backoff_max = Duration::from_millis(50);
    config.router.connect_timeout = Duration::from_secs(1);
    let server_config = config.server.clone();
    let mut cluster = Cluster::start(config);
    let map = cluster.shard_map();
    let mut c =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");

    let a = c.pnew(&doc("on-shard-a", 1)).expect("pnew a");
    let b = c.pnew(&doc("on-shard-b", 1)).expect("pnew b");
    let (sa, sb) = (map.shard_of(a.oid()), map.shard_of(b.oid()));
    assert_ne!(sa, sb, "round-robin spread the two objects");

    cluster.kill_shard(sa);

    // The killed shard's objects fail cleanly; the response may be the
    // in-flight drain (connection died under the request) or the
    // backoff fast-fail — both are Unavailable, never a hang.
    match c.deref(&a) {
        Err(NetError::Remote(RemoteError::Unavailable(_))) => {}
        Err(NetError::Io(_)) => panic!("shard loss must not kill the client connection"),
        other => panic!("expected unavailable, got {other:?}"),
    }
    // The other shard is untouched, same client connection.
    let (body, _) = c.deref(&b).expect("healthy shard still serves");
    assert_eq!(body.title, "on-shard-b");
    // Still unavailable while down (backoff or dial failure, repeatedly).
    for _ in 0..3 {
        match c.deref(&a) {
            Err(NetError::Remote(RemoteError::Unavailable(_))) => {}
            other => panic!("expected unavailable while down, got {other:?}"),
        }
    }

    // Restart on a fresh port behind the same relay address; the
    // router's next dial after the backoff window finds it, and the
    // WAL-recovered data is all there.
    cluster.restart_shard(sa, server_config);
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        match c.deref(&a) {
            Ok(pair) => break pair,
            Err(NetError::Remote(RemoteError::Unavailable(_))) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    };
    assert_eq!(recovered.0.title, "on-shard-a");
    assert_eq!(recovered.0.revision, 1);
    // And writes flow again.
    c.put(&a, &doc("on-shard-a", 2))
        .expect("write after recovery");
    assert_eq!(c.deref(&a).expect("reread").0.revision, 2);

    let stats = cluster.router_stats();
    assert!(
        stats.shard_failures >= 1,
        "the kill must be counted: {stats:?}"
    );
    assert!(
        stats.backend_connects >= 3,
        "initial dials plus at least one reconnect: {stats:?}"
    );
    assert!(
        stats.unavailable_errors >= 4,
        "each refusal counted: {stats:?}"
    );
}
