//! k-client collaboration through the router: several clients fork one
//! object, edit their forks independently, and merge back through the
//! wire until a single version remains. Disjoint edits must converge
//! byte-identically on every client; overlapping edits must surface
//! `MergeConflict`s through the tier instead of corrupting anything.

use ode::MergePolicy;
use ode_codec::{impl_persist_struct, impl_type_name, to_bytes};
use ode_net::{
    ClientConfig, ClientObjPtr, ClientVersionPtr, Cluster, ClusterConfig, NetError, OdeClient,
    RemoteError,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    text: String,
}
impl_persist_struct!(Doc { text });
impl_type_name!(Doc = "merge-collab/Doc");

fn doc(text: &str) -> Doc {
    Doc { text: text.into() }
}

/// The shared base every client forks from. Four single-word edit
/// targets; each replacement below keeps its word's length, so the
/// encoded body's length prefix is untouched and every merge result
/// still decodes as a `Doc`.
const BASE: &str = "quick brown sober happy merge demo";
const WORDS: [&str; 4] = ["quick", "brown", "sober", "happy"];
const EDITS: [&str; 4] = ["QUICK", "BROWN", "SOBER", "HAPPY"];

#[test]
fn four_clients_converge_byte_identically_through_the_router() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    });
    let mut clients: Vec<OdeClient> = (0..4)
        .map(|_| {
            OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect")
        })
        .collect();

    // Client 0 creates the shared object; the id translation is a pure
    // function of the shard map, so every client sees the same ids.
    let ptr: ClientObjPtr<Doc> = clients[0].pnew(&doc(BASE)).expect("pnew");
    let base = clients[0].current_version(&ptr).expect("current_version");

    // Each client forks from the same base and uppercases its own
    // word — four disjoint edits against one common ancestor.
    let mut forks: Vec<ClientVersionPtr<Doc>> = Vec::new();
    for (i, c) in clients.iter_mut().enumerate() {
        let fork = c.newversion_from(&base).expect("newversion_from");
        c.put_version(&fork, &doc(&BASE.replace(WORDS[i], EDITS[i])))
            .expect("put_version");
        forks.push(fork);
    }

    // Merge tree: (0,1) and (2,3), then the two inner merges. All
    // edits are disjoint, so the strict policy must resolve cleanly.
    let mut merge_clean = |c: usize, a: &ClientVersionPtr<Doc>, b: &ClientVersionPtr<Doc>| {
        let (vid, conflicts) = clients[c].merge(a, b, MergePolicy::Fail).expect("merge");
        assert!(
            conflicts.is_empty(),
            "disjoint edits conflicted: {conflicts:?}"
        );
        vid.expect("clean merge must produce a version")
    };
    let left = merge_clean(1, &forks[0], &forks[1]);
    let right = merge_clean(2, &forks[2], &forks[3]);
    let root = merge_clean(3, &left, &right);

    // Convergence: every client reads the same final version and the
    // same bytes, and those bytes carry all four edits.
    let oracle = to_bytes(&doc("QUICK BROWN SOBER HAPPY merge demo"));
    for c in clients.iter_mut() {
        assert_eq!(c.current_version(&ptr).expect("current"), root);
        let (body, at) = c.deref(&ptr).expect("deref");
        assert_eq!(at, root);
        assert_eq!(to_bytes(&body), oracle, "clients diverged after merge");
    }

    // The merge version remembers both parents through the tier: it
    // derives from `left`, and walking dprev reaches the base.
    let c0 = &mut clients[0];
    assert_eq!(c0.dprevious(&root).expect("dprevious"), Some(left));
}

#[test]
fn overlapping_edits_report_conflicts_through_the_wire() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 2,
        ..ClusterConfig::default()
    });
    let mut ours =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");
    let mut theirs =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");

    let ptr: ClientObjPtr<Doc> = ours.pnew(&doc(BASE)).expect("pnew");
    let base = ours.current_version(&ptr).expect("current_version");

    // Both sides rewrite the same word to different same-length text.
    let a = ours.newversion_from(&base).expect("fork a");
    ours.put_version(&a, &doc(&BASE.replace("merge", "MERGE")))
        .expect("edit a");
    let b = theirs.newversion_from(&base).expect("fork b");
    theirs
        .put_version(&b, &doc(&BASE.replace("merge", "forge")))
        .expect("edit b");

    // Strict policy: no version, conflicts name the contested bytes.
    let (vid, conflicts) = ours.merge(&a, &b, MergePolicy::Fail).expect("merge fail");
    assert!(vid.is_none(), "overlapping edits must not merge under Fail");
    assert!(!conflicts.is_empty(), "the overlap must be reported");
    for c in &conflicts {
        assert!(c.base_end >= c.base_start);
        assert_ne!(c.ours, c.theirs, "a conflict must carry both sides");
    }

    // Theirs-policy: resolves, still reports, and the loser's bytes
    // are gone from the result on every client.
    let (vid, conflicts) = theirs
        .merge(&a, &b, MergePolicy::Theirs)
        .expect("merge theirs");
    let vid = vid.expect("theirs policy must resolve");
    assert!(
        !conflicts.is_empty(),
        "resolution must still report the overlap"
    );
    for c in [&mut ours, &mut theirs] {
        let (body, at) = c.deref(&ptr).expect("deref");
        assert_eq!(at, vid);
        assert!(
            body.text.contains("forge"),
            "winner bytes missing: {body:?}"
        );
        assert!(
            !body.text.contains("MERGE"),
            "loser bytes survived: {body:?}"
        );
    }

    // Cross-object merges are refused with the ids the client sent.
    let other: ClientObjPtr<Doc> = ours.pnew(&doc("elsewhere")).expect("pnew other");
    let ov = ours.current_version(&other).expect("current other");
    match ours.merge(&a, &ov, MergePolicy::Fail) {
        Err(NetError::Remote(RemoteError::BadRequest(_))) => {}
        other => panic!("expected bad-request for cross-object merge, got {other:?}"),
    }
}
