//! Property tests for shard routing determinism.
//!
//! The router's placement function must be a *function*: every oid
//! maps to exactly one shard, the same shard every time, on every
//! router instance over the same backend list — a router restart (or a
//! second router beside the first) may not move any object. The
//! shard-qualified id scheme must additionally be bijective per shard,
//! or ids would collide across shards and responses would lie.

use std::collections::HashSet;

use ode::{Oid, Vid};
use ode_net::ShardMap;
use proptest::prelude::*;

fn arb_shards() -> impl Strategy<Value = usize> {
    1usize..=8
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn every_oid_maps_to_exactly_one_shard(
        shards in arb_shards(),
        oids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let map = ShardMap::new(shards);
        for raw in oids {
            let shard = map.shard_of(Oid(raw));
            prop_assert!(shard < shards);
            // Determinism on the same instance: ask again, same answer.
            prop_assert_eq!(map.shard_of(Oid(raw)), shard);
        }
    }

    #[test]
    fn the_map_is_stable_across_router_restarts(
        shards in arb_shards(),
        oids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        // A "restart" constructs a fresh map from the same backend
        // count — the only input the placement function has. Every
        // object must land where it did before.
        let before = ShardMap::new(shards);
        let after = ShardMap::new(shards);
        for raw in oids {
            prop_assert_eq!(before.shard_of(Oid(raw)), after.shard_of(Oid(raw)));
            prop_assert_eq!(before.backend_oid(Oid(raw)), after.backend_oid(Oid(raw)));
        }
    }

    #[test]
    fn minted_ids_are_bijective_and_route_home(
        shards in arb_shards(),
        backend_ids in proptest::collection::vec(0u64..(1 << 56), 1..64),
    ) {
        let map = ShardMap::new(shards);
        let mut seen = HashSet::new();
        for b in backend_ids {
            for s in 0..shards {
                let client = map.client_oid(Oid(b), s);
                // A minted id routes back to the shard that minted it,
                // and decomposes to the backend id it wrapped.
                prop_assert_eq!(map.shard_of(client), s);
                prop_assert_eq!(map.backend_oid(client), Oid(b));
                // No two (backend id, shard) pairs share a client id.
                prop_assert!(seen.insert(client.0));
                // Versions are qualified identically.
                let vclient = map.client_vid(Vid(b), s);
                prop_assert_eq!(map.shard_of_vid(vclient), s);
                prop_assert_eq!(map.backend_vid(vclient), Vid(b));
            }
        }
    }

    #[test]
    fn any_client_id_decomposes_and_remints_to_itself(
        shards in arb_shards(),
        raw: u64,
    ) {
        // Totality: even ids no router ever minted (a client probing
        // random ids) route deterministically and round-trip.
        let map = ShardMap::new(shards);
        let oid = Oid(raw);
        let (s, b) = (map.shard_of(oid), map.backend_oid(oid));
        prop_assert_eq!(map.client_oid(b, s), oid);
    }

    #[test]
    fn page_cursors_partition_the_client_id_space(
        shards in arb_shards(),
        after in 0u64..10_000,
        backend_ids in proptest::collection::vec(0u64..4_000, 0..32),
    ) {
        // Scattering an ObjectsPage { after } sends each shard its own
        // cursor. Together the per-shard cursors must select exactly
        // the minted ids >= after — no misses, no strays.
        let map = ShardMap::new(shards);
        for s in 0..shards {
            let cursor = map.backend_cursor(Oid(after), s);
            for &b in &backend_ids {
                let client = map.client_oid(Oid(b), s);
                let selected = b >= cursor.0;
                prop_assert_eq!(
                    selected,
                    client.0 >= after,
                    "shard {} cursor {} picked wrong ids for after={}",
                    s, cursor.0, after
                );
            }
        }
    }
}
