//! The replicated tier end to end: replica reads behind the epoch
//! gate, sticky read-your-writes, driven failover after a primary
//! crash, lost-tail semantics, and kill-mid-ship recovery — all
//! through a real router over real sockets, with faults injected by
//! the cluster harness relays.
//!
//! (Fenced ex-primary *rejoin* is covered at the `ode-repl` layer —
//! `crates/repl/tests/replication.rs` — where both lineages' disks are
//! directly observable.)

use std::thread;
use std::time::{Duration, Instant};

use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, Cluster, ClusterConfig, NetError, OdeClient, RelayPlan, RemoteError,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "repl-tier/Doc");

fn doc(title: &str, revision: u64) -> Doc {
    Doc {
        title: title.into(),
        revision,
    }
}

/// A cluster config with a prompt prober, for fast failover tests.
fn repl_config(shards: usize, replicas: usize) -> ClusterConfig {
    let mut config = ClusterConfig {
        shards,
        replicas,
        ..ClusterConfig::default()
    };
    config.router.probe_interval = Duration::from_millis(20);
    config.router.failover_after = 3;
    config.router.reconnect_backoff = Duration::from_millis(10);
    config.router.reconnect_backoff_max = Duration::from_millis(50);
    config.router.connect_timeout = Duration::from_secs(1);
    config
}

/// Poll `check` until it passes or the deadline trips.
fn wait_until(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// Wait until the router's prober has seen every replica of `shard`
/// alive and caught up to the primary's current epoch.
fn wait_router_sees_caught_up(cluster: &Cluster, shard: usize) {
    let target = cluster.primary_epoch(shard);
    wait_until("router sees caught-up replicas", || {
        let (_, primary_epoch, replicas) = cluster.shard_members(shard);
        primary_epoch >= target
            && !replicas.is_empty()
            && replicas.iter().all(|(_, e)| e.is_some_and(|e| e >= target))
    });
}

fn connect(cluster: &Cluster) -> OdeClient {
    OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect")
}

// ---------------------------------------------------------------------------
// Replica reads
// ---------------------------------------------------------------------------

#[test]
fn reads_are_served_from_replicas_and_writes_flip_a_session_to_the_primary() {
    let cluster = Cluster::start(repl_config(2, 1));
    let mut writer = connect(&cluster);

    let ptrs: Vec<ClientObjPtr<Doc>> = (0..6)
        .map(|i| writer.pnew(&doc(&format!("doc-{i}"), i)).expect("pnew"))
        .collect();
    for shard in 0..2 {
        wait_router_sees_caught_up(&cluster, shard);
    }

    // The writer session wrote to both shards: its reads stay on the
    // primaries (sticky read-your-writes), so replica deref counts
    // don't move.
    let replica_derefs_before: u64 = (0..2)
        .map(|s| {
            cluster
                .replica_stats(s, 0)
                .requests_for(ode_net::Opcode::Deref)
        })
        .sum();
    for (i, p) in ptrs.iter().enumerate() {
        let (body, _) = writer.deref(p).expect("writer deref");
        assert_eq!(body.revision, i as u64);
    }
    let replica_derefs_after: u64 = (0..2)
        .map(|s| {
            cluster
                .replica_stats(s, 0)
                .requests_for(ode_net::Opcode::Deref)
        })
        .sum();
    assert_eq!(
        replica_derefs_before, replica_derefs_after,
        "a session that wrote must read from the primary"
    );

    // A fresh session that never wrote reads from the replicas, pinned
    // at the primary epoch the router last probed — same values.
    let mut reader = connect(&cluster);
    for (i, p) in ptrs.iter().enumerate() {
        let (body, _) = reader.deref(p).expect("replica deref");
        assert_eq!(body.revision, i as u64);
        assert_eq!(body.title, format!("doc-{i}"));
    }
    let stats = cluster.router_stats();
    assert!(
        stats.replica_reads >= 6,
        "reads must have hit the replica bank: {stats:?}"
    );
    let replica_derefs_final: u64 = (0..2)
        .map(|s| {
            cluster
                .replica_stats(s, 0)
                .requests_for(ode_net::Opcode::Deref)
        })
        .sum();
    assert!(
        replica_derefs_final >= replica_derefs_after + 6,
        "the replica servers must have answered the reader"
    );

    // Merged tier stats surface the shipping counters from every
    // primary; nothing failed over.
    let merged = reader.stats().expect("stats");
    assert!(merged.storage.bytes_shipped > 0, "{merged:?}");
    assert_eq!(merged.storage.failovers, 0);
}

#[test]
fn a_replica_refuses_writes() {
    let cluster = Cluster::start(repl_config(1, 1));
    let (_, _, replicas) = cluster.shard_members(0);
    let mut direct =
        OdeClient::connect(replicas[0].0, ClientConfig::default()).expect("connect replica");
    match direct.pnew(&doc("nope", 1)) {
        Err(NetError::Remote(RemoteError::Unavailable(msg))) => {
            assert!(msg.contains("read-only"), "unexpected message: {msg}")
        }
        other => panic!("expected unavailable, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The epoch gate
// ---------------------------------------------------------------------------

#[test]
fn a_lagging_replica_never_serves_state_older_than_the_pinned_epoch() {
    let cluster = Cluster::start(repl_config(1, 1));
    let mut writer = connect(&cluster);

    let p = writer.pnew(&doc("gated", 1)).expect("pnew");
    wait_router_sees_caught_up(&cluster, 0);

    // Cut the shipping channel, then advance the primary: the replica
    // is now stale at revision 1 while the primary (and soon the
    // router's probed epoch) is at revision 2.
    cluster.partition_replica(0, 0, true);
    wait_until("hub notices the dead channel", || {
        cluster.hub(0).replica_count() == 0
    });
    writer.put(&p, &doc("gated", 2)).expect("put");
    let advanced = cluster.primary_epoch(0);
    wait_until("router probes the advanced primary", || {
        cluster.shard_members(0).1 >= advanced
    });

    // A fresh reader dials the replica with its floor pinned at the
    // probed primary epoch. The replica hasn't applied it, so the gate
    // must hold the read — never answer revision 1 — until the channel
    // heals and the tail arrives.
    let handle = thread::spawn({
        let addr = cluster.router_addr();
        move || {
            let mut reader = OdeClient::connect(addr, ClientConfig::default()).expect("reader");
            reader.deref(&p).expect("gated deref").0
        }
    });
    thread::sleep(Duration::from_millis(300));
    cluster.partition_replica(0, 0, false);
    let body = handle.join().expect("reader thread");
    assert_eq!(
        body.revision, 2,
        "the gate must never expose pre-floor state"
    );
}

// ---------------------------------------------------------------------------
// Driven failover
// ---------------------------------------------------------------------------

#[test]
fn the_router_promotes_a_replica_when_the_primary_dies() {
    let mut cluster = Cluster::start(repl_config(1, 1));
    let mut c = connect(&cluster);

    // Semi-sync is on: every acknowledged write reached the replica.
    let ptrs: Vec<ClientObjPtr<Doc>> = (0..10)
        .map(|i| c.pnew(&doc(&format!("acked-{i}"), i)).expect("pnew"))
        .collect();
    wait_router_sees_caught_up(&cluster, 0);
    let (old_primary, _, replicas) = cluster.shard_members(0);
    let replica_addr = replicas[0].0;

    cluster.kill_primary(0);

    // Writes fail `Unavailable` (strict no-retry through the promotion
    // window) until the prober declares the primary dead and promotes;
    // then they flow again — to the promoted replica.
    let deadline = Instant::now() + Duration::from_secs(10);
    let after = loop {
        match c.pnew(&doc("after-failover", 777)) {
            Ok(p) => break p,
            Err(NetError::Remote(RemoteError::Unavailable(_))) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eventual success, got {other:?}"),
        }
    };

    let (new_primary, _, new_replicas) = cluster.shard_members(0);
    assert_eq!(new_primary, replica_addr, "the replica must be primary");
    assert_eq!(
        new_replicas[0].0, old_primary,
        "the dead primary is kept as a (unreachable) replica"
    );

    // Every acknowledged write survived onto the promoted node, and
    // the tier keeps serving both old and new data.
    for (i, p) in ptrs.iter().enumerate() {
        let (body, _) = c.deref(p).expect("acked read after failover");
        assert_eq!(body.revision, i as u64, "acked write lost in failover");
    }
    assert_eq!(c.deref(&after).expect("new write").0.revision, 777);

    let stats = cluster.router_stats();
    assert!(stats.failovers >= 1, "failover must be counted: {stats:?}");
    let merged = c.stats().expect("stats");
    assert_eq!(
        merged.storage.failovers, 1,
        "the promoted node reports its promotion: {merged:?}"
    );
}

#[test]
fn a_lost_tail_is_fenced_never_resurrected() {
    let mut cluster = Cluster::start(repl_config(1, 1));
    let mut c = connect(&cluster);

    let shared: Vec<ClientObjPtr<Doc>> = (0..4)
        .map(|i| c.pnew(&doc(&format!("shared-{i}"), i)).expect("pnew"))
        .collect();
    wait_router_sees_caught_up(&cluster, 0);

    // Partition the shipping channel, then write more: these commits
    // are acknowledged (semi-sync degrades after its bounded wait) but
    // never shipped — the lost tail.
    cluster.partition_replica(0, 0, true);
    wait_until("hub notices the dead channel", || {
        cluster.hub(0).replica_count() == 0
    });
    let lost: Vec<ClientObjPtr<Doc>> = (0..2)
        .map(|i| c.pnew(&doc("lost", 900 + i)).expect("pnew lost"))
        .collect();

    // The primary dies; the router promotes the replica, whose state
    // ends at the last shipped commit.
    cluster.partition_replica(0, 0, false);
    cluster.kill_primary(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match c.pnew(&doc("new-lineage", 4242)) {
            Ok(_) => break,
            Err(NetError::Remote(RemoteError::Unavailable(_))) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eventual success, got {other:?}"),
        }
    }

    // The shared prefix survived; the lost tail is unobservable. (Its
    // oids may be re-allocated by the new lineage, so the assertion is
    // "never the lost value", not "necessarily unknown".)
    for (i, p) in shared.iter().enumerate() {
        assert_eq!(c.deref(p).expect("shared read").0.revision, i as u64);
    }
    for p in &lost {
        match c.deref(p) {
            Ok((body, _)) => {
                assert_ne!(body.title, "lost", "lost-tail write resurrected: {body:?}")
            }
            Err(NetError::Remote(RemoteError::UnknownObject(_))) => {}
            other => panic!("unexpected outcome for fenced oid: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Kill-mid-ship
// ---------------------------------------------------------------------------

#[test]
fn shipping_survives_repeated_mid_chunk_cuts() {
    let cluster = Cluster::start(repl_config(1, 1));
    let mut writer = connect(&cluster);

    // The first few shipping connections die mid-chunk (hub→replica is
    // the relay's server→client direction); later ones are clean. The
    // replica must re-bootstrap or resume each time without applying a
    // torn commit.
    cluster.repl_relay(0, 0).set_plans(vec![
        RelayPlan {
            s2c_budget: 1200,
            chunk: 193,
            ..RelayPlan::clean()
        },
        RelayPlan {
            s2c_budget: 2800,
            chunk: 389,
            ..RelayPlan::clean()
        },
    ]);
    cluster.repl_relay(0, 0).cut_all();

    let ptrs: Vec<ClientObjPtr<Doc>> = (0..30)
        .map(|i| {
            writer
                .pnew(&doc(&format!("churn-{i}"), i))
                .expect("pnew under shipping faults")
        })
        .collect();

    wait_until("replica converges through the cuts", || {
        cluster.replica_status(0, 0).epoch >= cluster.primary_epoch(0)
    });
    wait_router_sees_caught_up(&cluster, 0);

    // A fresh reader (replica bank) sees every committed value.
    let mut reader = connect(&cluster);
    for (i, p) in ptrs.iter().enumerate() {
        let (body, _) = reader.deref(p).expect("read after convergence");
        assert_eq!(body.revision, i as u64);
    }
    assert!(cluster.router_stats().replica_reads > 0);
}
