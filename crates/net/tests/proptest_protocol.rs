//! Property tests for the wire protocol: every `Request`/`Response`
//! shape round-trips through encode/decode with any sequence id, and
//! the decoders never panic on corrupted bytes — truncation, flipped
//! bits, garbage payloads, and hostile frame length prefixes all come
//! back as `Err`, never as UB, OOM, or a panic.

use std::io::Cursor;

use ode::{Oid, TypeTag, Vid};
use ode_net::protocol::{
    read_frame, write_frame, Opcode, StatsReport, StorageCounters, MAX_FRAME_LEN,
};
use ode_net::{RemoteError, Request, Response};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_oid() -> impl Strategy<Value = Oid> {
    any::<u64>().prop_map(Oid)
}

fn arb_vid() -> impl Strategy<Value = Vid> {
    any::<u64>().prop_map(Vid)
}

fn arb_tag() -> impl Strategy<Value = TypeTag> {
    any::<u64>().prop_map(TypeTag)
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        (arb_tag(), arb_body()).prop_map(|(tag, body)| Request::Pnew { tag, body }),
        (arb_oid(), arb_tag()).prop_map(|(oid, tag)| Request::Deref { oid, tag }),
        (arb_vid(), arb_tag()).prop_map(|(vid, tag)| Request::DerefVersion { vid, tag }),
        (arb_oid(), arb_tag(), arb_body()).prop_map(|(oid, tag, body)| Request::Update {
            oid,
            tag,
            body
        }),
        (arb_vid(), arb_tag(), arb_body()).prop_map(|(vid, tag, body)| Request::UpdateVersion {
            vid,
            tag,
            body
        }),
        arb_oid().prop_map(|oid| Request::NewVersion { oid }),
        arb_vid().prop_map(|vid| Request::NewVersionFrom { vid }),
        arb_oid().prop_map(|oid| Request::Pdelete { oid }),
        arb_vid().prop_map(|vid| Request::PdeleteVersion { vid }),
        arb_vid().prop_map(|vid| Request::Dprevious { vid }),
        arb_vid().prop_map(|vid| Request::Dnext { vid }),
        arb_vid().prop_map(|vid| Request::Tprevious { vid }),
        arb_vid().prop_map(|vid| Request::Tnext { vid }),
        arb_oid().prop_map(|oid| Request::VersionHistory { oid }),
        arb_oid().prop_map(|oid| Request::CurrentVersion { oid }),
        arb_tag().prop_map(|tag| Request::Objects { tag }),
        (arb_tag(), arb_oid(), any::<u64>()).prop_map(|(tag, after, limit)| Request::ObjectsPage {
            tag,
            after,
            limit
        }),
        arb_vid().prop_map(|vid| Request::ObjectOf { vid }),
        arb_oid().prop_map(|oid| Request::VersionCount { oid }),
        arb_oid().prop_map(|oid| Request::Exists { oid }),
        arb_vid().prop_map(|vid| Request::VersionExists { vid }),
        (arb_oid(), any::<u64>(), any::<u64>())
            .prop_map(|(oid, from, to)| Request::HistoryBetween { oid, from, to }),
        (arb_vid(), arb_vid()).prop_map(|(from, to)| Request::DiffVersions { from, to }),
    ]
    .boxed()
}

fn arb_diff() -> impl Strategy<Value = ode_net::DiffSummary> {
    (
        (arb_vid(), arb_vid(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(|(a, b)| {
            let (from, to, to_len, ops) = a;
            let (literal_bytes, encoded_bytes, stored) = b;
            ode_net::DiffSummary {
                from,
                to,
                to_len,
                ops,
                literal_bytes,
                encoded_bytes,
                stored,
            }
        })
}

fn arb_storage_counters() -> impl Strategy<Value = StorageCounters> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|(a, b, c)| {
            let (read_txs, write_txs, reader_waits, reader_wait_nanos, writer_waits) = a;
            let (writer_wait_nanos, wal_syncs, group_syncs, group_commit_txns, group_batch_max) = b;
            let (bytes_shipped, replica_lag_epochs, failovers, write_conflicts, write_retries) = c;
            StorageCounters {
                read_txs,
                write_txs,
                reader_waits,
                reader_wait_nanos,
                writer_waits,
                writer_wait_nanos,
                wal_syncs,
                group_syncs,
                group_commit_txns,
                group_batch_max,
                bytes_shipped,
                replica_lag_epochs,
                failovers,
                write_conflicts,
                write_retries,
            }
        })
}

fn arb_stats() -> impl Strategy<Value = StatsReport> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        proptest::collection::vec((0u8..Opcode::ALL.len() as u8, any::<u64>()), 0..8),
        arb_storage_counters(),
    )
        .prop_map(|(connections, errors, raw_requests, storage)| {
            let (active_connections, total_connections, bytes_in, bytes_out) = connections;
            let (protocol_errors, op_errors, snapshot_hits, snapshot_misses) = errors;
            // Unique opcodes, wire order — the shape the server emits.
            let mut requests: Vec<(Opcode, u64)> = Vec::new();
            for (op, n) in raw_requests {
                let op = Opcode::from_u8(op).expect("in-range opcode");
                if !requests.iter().any(|(o, _)| *o == op) {
                    requests.push((op, n));
                }
            }
            requests.sort_by_key(|(op, _)| *op as u8);
            StatsReport {
                active_connections,
                total_connections,
                bytes_in,
                bytes_out,
                protocol_errors,
                op_errors,
                snapshot_hits,
                snapshot_misses,
                slow_client_evictions: snapshot_hits ^ snapshot_misses,
                materialize_hits: snapshot_hits.wrapping_add(3),
                materialize_misses: snapshot_misses.wrapping_mul(7),
                requests,
                storage,
            }
        })
}

fn arb_remote_error() -> BoxedStrategy<RemoteError> {
    prop_oneof![
        arb_oid().prop_map(RemoteError::UnknownObject),
        arb_vid().prop_map(RemoteError::UnknownVersion),
        (arb_tag(), arb_tag())
            .prop_map(|(expected, found)| RemoteError::TypeMismatch { expected, found }),
        arb_vid().prop_map(RemoteError::LastVersion),
        ".*".prop_map(|s| RemoteError::Storage(s.to_string())),
        ".*".prop_map(|s| RemoteError::BadRequest(s.to_string())),
        ".*".prop_map(|s| RemoteError::Unavailable(s.to_string())),
    ]
    .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Pong),
        arb_stats().prop_map(Response::Stats),
        (arb_oid(), arb_vid()).prop_map(|(oid, vid)| Response::Created { oid, vid }),
        arb_vid().prop_map(Response::Version),
        (arb_vid(), arb_body()).prop_map(|(vid, bytes)| Response::Body { vid, bytes }),
        Just(Response::Unit),
        Just(Response::MaybeVersion(None)),
        arb_vid().prop_map(|v| Response::MaybeVersion(Some(v))),
        proptest::collection::vec(arb_vid(), 0..32).prop_map(Response::Versions),
        proptest::collection::vec(arb_oid(), 0..32).prop_map(Response::Objects),
        arb_oid().prop_map(Response::Object),
        any::<u64>().prop_map(Response::Count),
        any::<bool>().prop_map(Response::Flag),
        arb_diff().prop_map(Response::Diff),
        arb_remote_error().prop_map(Response::Err),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn request_round_trips_with_any_seq(req in arb_request(), seq: u64) {
        let bytes = req.encode(seq);
        prop_assert_eq!(Request::decode_seq(&bytes).unwrap(), seq);
        let (got_seq, got) = Request::decode(&bytes).unwrap();
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got, req);
    }

    #[test]
    fn response_round_trips_with_any_seq(resp in arb_response(), seq: u64) {
        let bytes = resp.encode(seq);
        let (got_seq, got) = Response::decode(&bytes).unwrap();
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got, resp);
    }

    #[test]
    fn framed_request_survives_the_stream(req in arb_request(), seq: u64) {
        let mut buf = Vec::new();
        let reported = write_frame(&mut buf, &req.encode(seq)).unwrap();
        prop_assert_eq!(reported as usize, buf.len());
        let mut cursor = Cursor::new(buf);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&payload).unwrap(), (seq, req));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    // -- corruption: decode must error, never panic ------------------------

    #[test]
    fn truncated_request_never_panics(req in arb_request(), seq: u64, cut: u64) {
        let bytes = req.encode(seq);
        if bytes.len() > 1 {
            let cut = 1 + (cut as usize % (bytes.len() - 1));
            // Whatever it returns, it must return (shorter payloads can
            // legitimately decode to a smaller request).
            let _ = Request::decode(&bytes[..cut]);
        }
    }

    #[test]
    fn truncated_response_never_panics(resp in arb_response(), seq: u64, cut: u64) {
        let bytes = resp.encode(seq);
        if bytes.len() > 1 {
            let cut = 1 + (cut as usize % (bytes.len() - 1));
            let _ = Response::decode(&bytes[..cut]);
        }
    }

    #[test]
    fn bit_flipped_payloads_never_panic(
        req in arb_request(),
        seq: u64,
        flips in proptest::collection::vec((any::<u64>(), 0u8..8), 1..8),
    ) {
        let mut bytes = req.encode(seq);
        for (pos, bit) in flips {
            let pos = (pos as usize) % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = Request::decode_seq(&bytes);
        // And straight off a stream: arbitrary bytes as [frame, ...].
        let mut cursor = Cursor::new(bytes);
        while let Ok(Some(payload)) = read_frame(&mut cursor) {
            let _ = Request::decode(&payload);
        }
    }

    #[test]
    fn corrupted_length_prefixes_never_allocate_unboundedly(
        len: u64,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        // A frame whose varint length prefix promises up to u64::MAX
        // bytes. Anything over MAX_FRAME_LEN must be rejected before
        // the payload allocation; in-range lengths must hit EOF cleanly.
        let mut buf = Vec::new();
        let mut v = len;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                break;
            }
            buf.push(byte | 0x80);
        }
        buf.extend_from_slice(&tail);
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor) {
            Ok(Some(payload)) => assert!(payload.len() as u64 == len && len <= MAX_FRAME_LEN as u64),
            Ok(None) => panic!("a length prefix was written; EOF-at-boundary is impossible"),
            Err(_) => {} // oversized or truncated: rejected without panic
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let mut buf = Vec::new();
    let huge = (MAX_FRAME_LEN as u64) + 1;
    let mut v = huge;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
    let mut cursor = Cursor::new(buf);
    assert!(read_frame(&mut cursor).is_err());
}

#[test]
fn length_varint_with_too_many_continuation_bytes_is_rejected() {
    // 11 continuation bytes can encode > 64 bits; must error, not wrap.
    let buf = vec![0xFFu8; 16];
    let mut cursor = Cursor::new(buf);
    assert!(read_frame(&mut cursor).is_err());
}

#[test]
fn empty_payload_is_a_clean_decode_error() {
    assert!(Request::decode(&[]).is_err());
    assert!(Response::decode(&[]).is_err());
    assert!(Request::decode_seq(&[]).is_err());
}
