//! Fault injection: a chaos TCP relay sits between client and server,
//! splitting streams at arbitrary byte boundaries, delaying delivery,
//! and cutting connections mid-pipeline. The protocol must shrug off
//! fragmentation, surface connection loss as a clean error, and never
//! silently retry a write.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, NetError, OdeClient, OdeServer, Opcode, Request, Response,
    ServerConfig,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "fault-test/Doc");

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

/// How the proxy mistreats one proxied connection.
#[derive(Clone, Copy)]
struct ConnPlan {
    /// Bytes forwarded client→server before the connection is cut.
    c2s_budget: usize,
    /// Bytes forwarded server→client before the connection is cut.
    s2c_budget: usize,
    /// Forwarding granularity: each read is re-written in chunks of at
    /// most this many bytes.
    chunk: usize,
    /// Delay between forwarded chunks.
    delay: Duration,
}

impl ConnPlan {
    fn clean() -> ConnPlan {
        ConnPlan {
            c2s_budget: usize::MAX,
            s2c_budget: usize::MAX,
            chunk: usize::MAX,
            delay: Duration::ZERO,
        }
    }
}

/// One relay direction: read from `from`, forward to `to` in
/// plan-sized chunks until the byte budget runs out, then cut both
/// directions of both sockets.
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: usize, chunk: usize, delay: Duration) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        for piece in buf[..n].chunks(chunk.max(1)) {
            let take = piece.len().min(budget);
            if to.write_all(&piece[..take]).is_err() {
                budget = 0;
            } else {
                budget -= take;
            }
            if budget == 0 {
                // Budget spent: kill the connection mid-stream.
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            if !delay.is_zero() {
                thread::sleep(delay);
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Start a chaos relay in front of `upstream`. The nth accepted
/// connection follows `plans[n]`; connections beyond the list are
/// forwarded cleanly. Returns the address to point the client at.
fn start_proxy(upstream: SocketAddr, plans: Vec<ConnPlan>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    let next = Arc::new(AtomicUsize::new(0));
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(client_side) = stream else { continue };
            let Ok(server_side) = TcpStream::connect(upstream) else {
                let _ = client_side.shutdown(Shutdown::Both);
                continue;
            };
            let i = next.fetch_add(1, Ordering::Relaxed);
            let plan = plans.get(i).copied().unwrap_or_else(ConnPlan::clean);
            let (c2, s2) = (
                client_side.try_clone().expect("clone"),
                server_side.try_clone().expect("clone"),
            );
            thread::spawn(move || {
                pump(
                    client_side,
                    server_side,
                    plan.c2s_budget,
                    plan.chunk,
                    plan.delay,
                )
            });
            thread::spawn(move || pump(s2, c2, plan.s2c_budget, plan.chunk, plan.delay));
        }
    });
    addr
}

fn start_server(path: &PathBuf) -> (Arc<Database>, OdeServer) {
    let db = Arc::new(Database::create(path, DatabaseOptions::no_sync()).expect("create db"));
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    (db, server)
}

#[test]
fn frames_split_at_every_byte_boundary_still_work() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // One byte at a time with a delay: every frame arrives maximally
    // fragmented in both directions.
    let plan = ConnPlan {
        chunk: 1,
        delay: Duration::from_micros(50),
        ..ConnPlan::clean()
    };
    let proxy = start_proxy(server.local_addr(), vec![plan]);

    let mut c = OdeClient::connect(proxy, ClientConfig::default()).expect("connect via proxy");
    let p = c
        .pnew(&Doc {
            title: "fragmented".into(),
            revision: 1,
        })
        .expect("pnew through 1-byte chunks");
    let v1 = c.current_version(&p).expect("current_version");
    let v2 = c.newversion(&p).expect("newversion");
    let (doc, vid) = c.deref(&p).expect("deref");
    assert_eq!(vid, v2);
    assert_eq!(doc.revision, 1);
    assert_eq!(c.version_history(&p).expect("history"), vec![v1, v2]);

    // A pipelined batch through the same shredded connection.
    let mut pipe = c.pipeline();
    for _ in 0..5 {
        pipe.push(&Request::Deref {
            oid: p.oid(),
            tag: ClientObjPtr::<Doc>::tag(),
        })
        .expect("push");
    }
    let responses = pipe.run().expect("pipelined batch over fragments");
    for r in responses {
        match r {
            Response::Body { vid: got, .. } => assert_eq!(got, v2.vid()),
            other => panic!("expected body, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn connection_cut_mid_pipeline_surfaces_a_clean_error() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // First connection: the handshake echo (4 bytes) plus a handful of
    // response bytes pass, then the stream dies mid-frame. Later
    // connections are clean.
    let plan = ConnPlan {
        s2c_budget: 4 + 9,
        ..ConnPlan::clean()
    };
    let proxy = start_proxy(server.local_addr(), vec![plan]);

    let mut c = OdeClient::connect(proxy, ClientConfig::default()).expect("connect via proxy");
    let tag = ClientObjPtr::<Doc>::tag();

    // Pipeline enough reads that the response stream necessarily blows
    // past the budget.
    let mut pipe = c.pipeline();
    for _ in 0..10 {
        pipe.push(&Request::Exists { oid: ode::Oid(1) })
            .expect("push");
    }
    match pipe.run() {
        Err(NetError::Io(_)) => {} // the clean surface we demand
        Ok(_) => panic!("the cut connection cannot deliver every response"),
        Err(other) => panic!("expected an I/O error, got {other:?}"),
    }

    // The client recovers on a fresh (clean) connection.
    let p = c
        .pnew(&Doc {
            title: "after the cut".into(),
            revision: 0,
        })
        .expect("pnew after reconnect");
    let (_, bytes) = c.deref_raw(p.oid(), tag).expect("deref after reconnect");
    assert!(!bytes.is_empty());
    server.shutdown();
}

#[test]
fn writes_are_never_silently_retried() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // First connection: the 4-byte handshake echo plus ONE more byte
    // reach the client. That extra byte can only be the start of a
    // response frame — proof the server processed the request — and
    // then the stream dies mid-frame, so the response itself is lost.
    // Exactly the ambiguous-outcome window.
    let plan = ConnPlan {
        s2c_budget: 4 + 1,
        ..ConnPlan::clean()
    };
    let proxy = start_proxy(server.local_addr(), vec![plan]);

    let mut c = OdeClient::connect(proxy, ClientConfig::default()).expect("connect via proxy");
    match c.pnew(&Doc {
        title: "ambiguous".into(),
        revision: 0,
    }) {
        Err(NetError::Io(_)) => {} // outcome unknown, surfaced to the caller
        Ok(_) => panic!("no response can have arrived through a 4-byte budget"),
        Err(other) => panic!("expected an I/O error, got {other:?}"),
    }

    // The server executed the write exactly once: one Pnew counted, one
    // object in the extent. A silent retry would show two of each.
    // (Reads, by contrast, reconnect freely — `objects` succeeding on a
    // fresh connection right after the failure is that asymmetry.)
    let objects = c.objects::<Doc>().expect("objects on a fresh connection");
    assert_eq!(objects.len(), 1, "exactly one execution of the lost write");
    assert_eq!(server.stats().requests_for(Opcode::Pnew), 1);
    server.shutdown();
}
