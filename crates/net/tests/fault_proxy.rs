//! Fault injection: a chaos TCP relay ([`FaultRelay`]) sits between
//! client and server, splitting streams at arbitrary byte boundaries,
//! delaying delivery, and cutting connections mid-pipeline. The
//! protocol must shrug off fragmentation, surface connection loss as a
//! clean error, and never silently retry a write.
//!
//! The second half is the cluster battery: the same faults pointed at
//! one shard of a 4-shard tier. Killing a shard mid-pipeline must fail
//! exactly that shard's requests — cleanly, per request — while the
//! rest of the batch completes, and a write whose response is lost in
//! the cut must execute exactly once, never silently retried by any
//! layer.
//!
//! Deterministic by construction: the relay's byte budgets make
//! connection death exact to the byte (no timers to race), and the
//! router's round-robin placement makes shard assignment exact from a
//! fresh cluster. Run under `RUST_TEST_THREADS=1` in CI.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, Cluster, ClusterConfig, FaultRelay, NetError, OdeClient, OdeServer,
    Opcode, RelayPlan, RemoteError, Request, Response, ServerConfig,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "fault-test/Doc");

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

fn start_server(path: &PathBuf) -> (Arc<Database>, OdeServer) {
    let db = Arc::new(Database::create(path, DatabaseOptions::no_sync()).expect("create db"));
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    (db, server)
}

// ---------------------------------------------------------------------------
// Single server behind the relay
// ---------------------------------------------------------------------------

#[test]
fn frames_split_at_every_byte_boundary_still_work() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // One byte at a time with a delay: every frame arrives maximally
    // fragmented in both directions.
    let plan = RelayPlan {
        chunk: 1,
        delay: Duration::from_micros(50),
        ..RelayPlan::clean()
    };
    let relay = FaultRelay::start(server.local_addr(), vec![plan]).expect("start relay");

    let mut c =
        OdeClient::connect(relay.local_addr(), ClientConfig::default()).expect("connect via relay");
    let p = c
        .pnew(&Doc {
            title: "fragmented".into(),
            revision: 1,
        })
        .expect("pnew through 1-byte chunks");
    let v1 = c.current_version(&p).expect("current_version");
    let v2 = c.newversion(&p).expect("newversion");
    let (doc, vid) = c.deref(&p).expect("deref");
    assert_eq!(vid, v2);
    assert_eq!(doc.revision, 1);
    assert_eq!(c.version_history(&p).expect("history"), vec![v1, v2]);

    // A pipelined batch through the same shredded connection.
    let mut pipe = c.pipeline();
    for _ in 0..5 {
        pipe.push(&Request::Deref {
            oid: p.oid(),
            tag: ClientObjPtr::<Doc>::tag(),
        })
        .expect("push");
    }
    let responses = pipe.run().expect("pipelined batch over fragments");
    for r in responses {
        match r {
            Response::Body { vid: got, .. } => assert_eq!(got, v2.vid()),
            other => panic!("expected body, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn connection_cut_mid_pipeline_surfaces_a_clean_error() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // First connection: the handshake echo (4 bytes) plus a handful of
    // response bytes pass, then the stream dies mid-frame. Later
    // connections are clean.
    let plan = RelayPlan {
        s2c_budget: 4 + 9,
        ..RelayPlan::clean()
    };
    let relay = FaultRelay::start(server.local_addr(), vec![plan]).expect("start relay");

    let mut c =
        OdeClient::connect(relay.local_addr(), ClientConfig::default()).expect("connect via relay");
    let tag = ClientObjPtr::<Doc>::tag();

    // Pipeline enough reads that the response stream necessarily blows
    // past the budget.
    let mut pipe = c.pipeline();
    for _ in 0..10 {
        pipe.push(&Request::Exists { oid: ode::Oid(1) })
            .expect("push");
    }
    match pipe.run() {
        Err(NetError::Io(_)) => {} // the clean surface we demand
        Ok(_) => panic!("the cut connection cannot deliver every response"),
        Err(other) => panic!("expected an I/O error, got {other:?}"),
    }

    // The client recovers on a fresh (clean) connection.
    let p = c
        .pnew(&Doc {
            title: "after the cut".into(),
            revision: 0,
        })
        .expect("pnew after reconnect");
    let (_, bytes) = c.deref_raw(p.oid(), tag).expect("deref after reconnect");
    assert!(!bytes.is_empty());
    server.shutdown();
}

#[test]
fn writes_are_never_silently_retried() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0);
    // First connection: the 4-byte handshake echo plus ONE more byte
    // reach the client. That extra byte can only be the start of a
    // response frame — proof the server processed the request — and
    // then the stream dies mid-frame, so the response itself is lost.
    // Exactly the ambiguous-outcome window.
    let plan = RelayPlan {
        s2c_budget: 4 + 1,
        ..RelayPlan::clean()
    };
    let relay = FaultRelay::start(server.local_addr(), vec![plan]).expect("start relay");

    let mut c =
        OdeClient::connect(relay.local_addr(), ClientConfig::default()).expect("connect via relay");
    match c.pnew(&Doc {
        title: "ambiguous".into(),
        revision: 0,
    }) {
        Err(NetError::Io(_)) => {} // outcome unknown, surfaced to the caller
        Ok(_) => panic!("no response can have arrived through a 4-byte budget"),
        Err(other) => panic!("expected an I/O error, got {other:?}"),
    }

    // The server executed the write exactly once: one Pnew counted, one
    // object in the extent. A silent retry would show two of each.
    // (Reads, by contrast, reconnect freely — `objects` succeeding on a
    // fresh connection right after the failure is that asymmetry.)
    let objects = c.objects::<Doc>().expect("objects on a fresh connection");
    assert_eq!(objects.len(), 1, "exactly one execution of the lost write");
    assert_eq!(server.stats().requests_for(Opcode::Pnew), 1);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Cluster battery: the same faults against one shard of a 4-shard tier
// ---------------------------------------------------------------------------

fn doc(title: &str, revision: u64) -> Doc {
    Doc {
        title: title.into(),
        revision,
    }
}

#[test]
fn a_killed_shard_fails_only_its_own_requests_and_never_replays_a_write() {
    let mut cluster = Cluster::start(ClusterConfig::default());
    let map = cluster.shard_map();
    let mut c =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");

    // Two objects per shard, placed by round-robin from a fresh router.
    let ptrs: Vec<ClientObjPtr<Doc>> = (0..8)
        .map(|i| c.pnew(&doc(&format!("m{i}"), i)).expect("pnew"))
        .collect();

    // Baseline: the full batch succeeds.
    let mut pipe = c.pipeline();
    for ptr in &ptrs {
        pipe.push(&Request::Deref {
            oid: ptr.oid(),
            tag: ClientObjPtr::<Doc>::tag(),
        })
        .expect("push");
    }
    for r in pipe.run().expect("baseline batch") {
        assert!(matches!(r, Response::Body { .. }), "baseline slot: {r:?}");
    }

    let victim = map.shard_of(ptrs[1].oid());
    cluster.kill_shard(victim);

    // The same batch again: the dead shard's slots fail with a clean
    // per-request Unavailable error frame; every other slot still gets
    // its body, on the same client connection, in request order.
    let mut pipe = c.pipeline();
    for ptr in &ptrs {
        pipe.push(&Request::Deref {
            oid: ptr.oid(),
            tag: ClientObjPtr::<Doc>::tag(),
        })
        .expect("push");
    }
    for (i, result) in pipe.run_each().into_iter().enumerate() {
        let response = result.expect("the client connection must survive a shard loss");
        if map.shard_of(ptrs[i].oid()) == victim {
            match response {
                Response::Err(RemoteError::Unavailable(_)) => {}
                other => panic!("slot {i} (dead shard): expected unavailable, got {other:?}"),
            }
        } else {
            assert!(
                matches!(response, Response::Body { .. }),
                "slot {i} (live shard) must be untouched: {response:?}"
            );
        }
    }

    // A write aimed at the dead shard is refused, not queued: the
    // Unavailable contract says it was never executed.
    match c.put(&ptrs[1], &doc("m1", 1000)) {
        Err(NetError::Remote(RemoteError::Unavailable(_))) => {}
        other => panic!("expected unavailable write refusal, got {other:?}"),
    }
    // Writes to live shards are unaffected.
    c.put(&ptrs[2], &doc("m2", 2000)).expect("live-shard write");

    // Bring the shard back and prove the refused write never happened —
    // and was never silently replayed by the router or the client. The
    // restarted server's counters start at zero, so any replay would
    // show up as an Update it never received from us.
    cluster.restart_shard(victim, ServerConfig::default());
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        match c.deref(&ptrs[1]) {
            Ok((body, _)) => break body,
            Err(NetError::Remote(RemoteError::Unavailable(_))) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    };
    assert_eq!(recovered.revision, 1, "the refused write must not exist");
    assert_eq!(
        cluster.shard_stats(victim).requests_for(Opcode::Update),
        0,
        "nothing may replay the refused write after restart"
    );
    c.put(&ptrs[1], &doc("m1", 3000))
        .expect("write after recovery");
    assert_eq!(cluster.shard_stats(victim).requests_for(Opcode::Update), 1);
}

#[test]
fn a_write_whose_response_dies_in_the_cut_executes_exactly_once() {
    let mut config = ClusterConfig::default();
    // Fast reconnect so the post-fault verification doesn't dawdle.
    config.router.reconnect_backoff = Duration::from_millis(10);
    config.router.reconnect_backoff_max = Duration::from_millis(50);
    let cluster = Cluster::start(config);
    let map = cluster.shard_map();

    // Seed through one client, then drop it: the next backend
    // connection each shard's relay accepts belongs to the next client.
    let target = {
        let mut seeder =
            OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("seeder");
        let ptrs: Vec<ClientObjPtr<Doc>> = (0..4)
            .map(|i| seeder.pnew(&doc(&format!("s{i}"), 1)).expect("pnew"))
            .collect();
        ptrs[0]
    };
    let victim = map.shard_of(target.oid());

    // The victim relay's next connection forwards the router→shard
    // handshake echo (4 bytes) plus ONE byte of the first response,
    // then dies mid-frame: the shard *has executed* the request, the
    // router can never read the outcome. Budgets make this exact — no
    // timing involved.
    cluster.relay(victim).set_plans(vec![RelayPlan {
        s2c_budget: 4 + 1,
        ..RelayPlan::clean()
    }]);

    let mut c =
        OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect");
    match c.put(&target, &doc("s0", 99)) {
        Err(NetError::Remote(RemoteError::Unavailable(_))) => {}
        other => panic!("expected unavailable (outcome unknown), got {other:?}"),
    }

    // The shard executed it exactly once; nothing retried it.
    assert_eq!(cluster.shard_stats(victim).requests_for(Opcode::Update), 1);

    // After the budgeted connection died, the next dial is clean (the
    // plan list is spent) — the write's effect is there, once.
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        match c.deref(&target) {
            Ok((body, _)) => break body,
            Err(NetError::Remote(RemoteError::Unavailable(_))) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eventual reconnect, got {other:?}"),
        }
    };
    assert_eq!(body.revision, 99, "the executed write must be visible");
    assert_eq!(
        cluster.shard_stats(victim).requests_for(Opcode::Update),
        1,
        "no layer may have silently retried the write"
    );
}
