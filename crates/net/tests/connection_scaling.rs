//! Connection-scaling smoke test: the event-loop server must hold a
//! thousand idle sessions at a **constant thread count** (no
//! thread-per-connection anywhere) while eight active clients pump
//! pipelined work through it — and the idle sessions must stay
//! responsive the whole time.
//!
//! Run alone in its binary: the assertion counts the process's
//! threads, so concurrent sibling tests would pollute it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ode::{Database, DatabaseOptions, TypeTag};
use ode_net::protocol::{read_frame_into, write_frame, Response, MAGIC};
use ode_net::{ClientConfig, OdeClient, OdeServer, Request, ServerConfig};

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

/// This process's live thread count, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// A raw handshaken connection that sends nothing until poked.
struct IdleConn(TcpStream);

impl IdleConn {
    fn open(addr: SocketAddr) -> IdleConn {
        let mut stream = TcpStream::connect(addr).expect("connect idle");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.write_all(&MAGIC).expect("magic");
        let mut echo = [0u8; 4];
        stream.read_exact(&mut echo).expect("echo");
        assert_eq!(echo, MAGIC);
        IdleConn(stream)
    }

    /// One raw Ping round trip, proving the session still gets served.
    fn ping(&mut self, seq: u64) {
        let payload = Request::Ping.encode(seq);
        write_frame(&mut self.0, &payload).expect("ping frame");
        let mut response = Vec::new();
        assert!(
            read_frame_into(&mut self.0, &mut response).expect("pong frame"),
            "idle session was closed by the server"
        );
        let (got_seq, resp) = Response::decode(&response).expect("pong");
        assert_eq!(got_seq, seq);
        assert!(
            matches!(resp, Response::Pong),
            "expected Pong, got {resp:?}"
        );
    }
}

#[test]
fn a_thousand_idle_sessions_cost_no_threads_and_stay_responsive() {
    // CI runners commonly default to 1024 fds; 1000 sessions need
    // 2000 in this process (client + server end of each pair).
    polling::raise_nofile_limit().expect("raise RLIMIT_NOFILE");

    let path = TempPath::new();
    let db = Arc::new(Database::create(&path.0, DatabaseOptions::no_sync()).expect("db"));
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(db, "127.0.0.1:0", config).expect("server");
    let addr = server.local_addr();

    let baseline = thread_count();

    const IDLE: usize = 1000;
    let mut idles: Vec<IdleConn> = (0..IDLE).map(|_| IdleConn::open(addr)).collect();
    assert_eq!(server.stats().active_connections, IDLE as u64);
    assert_eq!(
        thread_count(),
        baseline,
        "idle connections must not cost threads"
    );

    // Eight active clients hammer pipelined batches through the same
    // loop the idle thousand are parked on.
    const ACTIVE: usize = 8;
    const BATCHES: usize = 20;
    const BATCH: usize = 32;
    let tag = TypeTag(0xBEEF);
    let workers: Vec<_> = (0..ACTIVE)
        .map(|who| {
            thread::spawn(move || {
                let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("active");
                let (oid, _) = c
                    .pnew_raw(tag, format!("active-{who}").into_bytes())
                    .expect("pnew");
                for _ in 0..BATCHES {
                    let mut pipe = c.pipeline();
                    for _ in 0..BATCH {
                        pipe.push(&Request::Deref { oid, tag }).expect("push");
                    }
                    for r in pipe.run().expect("batch") {
                        assert!(matches!(r, Response::Body { .. }), "got {r:?}");
                    }
                }
            })
        })
        .collect();

    // While they work, sampled idle sessions still answer promptly.
    for i in (0..IDLE).step_by(100) {
        idles[i].ping(1);
    }
    for w in workers {
        w.join().expect("active client");
    }
    assert_eq!(
        server.stats().requests_for(ode_net::Opcode::Deref),
        (ACTIVE * BATCHES * BATCH) as u64,
        "every pipelined read must have completed"
    );

    // Still flat after the storm, and the idles are all still live.
    assert_eq!(
        thread_count(),
        baseline,
        "the active burst must not leave threads behind"
    );
    for i in (0..IDLE).step_by(250) {
        idles[i].ping(2);
    }
    drop(idles);
    server.shutdown();
}
