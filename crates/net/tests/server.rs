//! End-to-end tests: real TCP on loopback, real database files, real
//! WAL recovery — the network path exercised exactly as a deployment
//! would.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use ode::{Database, DatabaseOptions, ObjPtr, Oid};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, ClientVersionPtr, NetError, OdeClient, OdeServer, Opcode,
    RemoteError, Request, Response, ServerConfig,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "net-test/Doc");

/// A type the server has never stored — for type-mismatch tests.
#[derive(Debug, Clone, PartialEq)]
struct Imposter {
    n: u64,
}
impl_persist_struct!(Imposter { n });
impl_type_name!(Imposter = "net-test/Imposter");

/// Database file at a unique temp path, removed (with WAL) on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

fn start_server(path: &PathBuf, workers: usize) -> (Arc<Database>, OdeServer) {
    let db = Arc::new(Database::create(path, DatabaseOptions::no_sync()).expect("create db"));
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config).expect("bind server");
    (db, server)
}

fn client(addr: SocketAddr) -> OdeClient {
    OdeClient::connect(addr, ClientConfig::default()).expect("connect client")
}

/// The acceptance flow, runnable concurrently from many threads: create
/// an object, derive from latest and from a pinned version, read
/// through both reference kinds, traverse, delete a version, and check
/// latest-version resolution throughout.
fn full_versioning_flow(client: &mut OdeClient, who: &str) {
    let doc = Doc {
        title: who.to_string(),
        revision: 0,
    };
    let p = client.pnew(&doc).expect("pnew");
    let v0 = client.current_version(&p).expect("current_version");

    // Derivation 1: from the latest (v0); becomes latest, then edit it.
    let v1 = client.newversion(&p).expect("newversion");
    let rev1 = Doc {
        title: who.to_string(),
        revision: 1,
    };
    let wrote = client.put(&p, &rev1).expect("put");
    assert_eq!(wrote, v1, "put through a generic ref writes the latest");

    // Derivation 2: from the *pinned* v0 — branches the derived-from
    // tree and becomes the new latest.
    let v2 = client.newversion_from(&v0).expect("newversion_from");

    // Generic reference: late binding resolves to v2 (whose state was
    // copied from v0, untouched by the v1 edit).
    let (latest_doc, latest_vid) = client.deref(&p).expect("deref");
    assert_eq!(latest_vid, v2);
    assert_eq!(latest_doc, doc);

    // Specific references: pinned, regardless of later versions.
    assert_eq!(client.deref_v(&v0).expect("deref_v v0"), doc);
    assert_eq!(client.deref_v(&v1).expect("deref_v v1"), rev1);

    // Derived-from traversals: both children hang off v0.
    assert_eq!(client.dprevious(&v1).expect("dprevious v1"), Some(v0));
    assert_eq!(client.dprevious(&v2).expect("dprevious v2"), Some(v0));
    assert_eq!(client.dprevious(&v0).expect("dprevious v0"), None);
    assert_eq!(client.dnext(&v0).expect("dnext v0"), vec![v1, v2]);

    // Temporal traversals.
    assert_eq!(client.tprevious(&v2).expect("tprevious v2"), Some(v1));
    assert_eq!(client.tnext(&v1).expect("tnext v1"), Some(v2));
    assert_eq!(
        client.version_history(&p).expect("history"),
        vec![v0, v1, v2]
    );

    // Delete the middle version; temporal chain splices around it and
    // the object id still resolves to v2.
    client.pdelete_version(v1).expect("pdelete_version");
    assert!(!client.version_exists(&v1).expect("version_exists"));
    assert_eq!(
        client.tprevious(&v2).expect("tprevious after del"),
        Some(v0)
    );
    assert_eq!(client.version_history(&p).expect("history"), vec![v0, v2]);
    assert_eq!(client.version_count(&p).expect("version_count"), 2);
    let (after_del, after_vid) = client.deref(&p).expect("deref after delete");
    assert_eq!(after_vid, v2);
    assert_eq!(after_del, doc);

    // Round trips that tie both pointer kinds together.
    assert_eq!(client.object_of(&v2).expect("object_of"), p);
    assert!(client.exists(&p).expect("exists"));
}

#[test]
fn end_to_end_acceptance_flow_with_concurrent_clients() {
    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 8);
    let addr = server.local_addr();

    // Once single-threaded (easier failure diagnosis) ...
    full_versioning_flow(&mut client(addr), "solo");

    // ... then the same full flow from 6 concurrent client threads,
    // each over its own TCP connection.
    let handles: Vec<_> = (0..6)
        .map(|i| {
            thread::spawn(move || {
                let mut c = client(addr);
                full_versioning_flow(&mut c, &format!("thread-{i}"));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }

    // Every object the flows created is intact under the embedded API.
    let mut snap = db.snapshot();
    let objects = snap.objects::<Doc>().expect("objects");
    assert_eq!(objects.len(), 7);
    for p in &objects {
        snap.check_object(p).expect("invariants hold");
    }
    drop(snap);

    // Stats: per-opcode counters are non-zero for everything the flow
    // used, and nothing went wrong at the protocol level.
    let mut c = client(addr);
    let stats = c.stats().expect("stats");
    for op in [
        Opcode::Pnew,
        Opcode::Deref,
        Opcode::DerefVersion,
        Opcode::Update,
        Opcode::NewVersion,
        Opcode::NewVersionFrom,
        Opcode::PdeleteVersion,
        Opcode::Dprevious,
        Opcode::Dnext,
        Opcode::Tprevious,
        Opcode::Tnext,
        Opcode::VersionHistory,
        Opcode::CurrentVersion,
        Opcode::ObjectOf,
        Opcode::VersionCount,
        Opcode::Exists,
        Opcode::VersionExists,
        Opcode::Stats,
    ] {
        assert!(
            stats.requests_for(op) > 0,
            "opcode {} should have been counted",
            op.name()
        );
    }
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.op_errors, 0);
    assert!(stats.total_connections >= 8);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

    server.shutdown();
}

/// Tiny deterministic PRNG so the mixed workload needs no external
/// crates and replays identically.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn concurrent_mixed_workload_preserves_version_graph_invariants() {
    const THREADS: u64 = 6;
    const OPS: u64 = 40;

    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 8);
    let addr = server.local_addr();

    // Four shared objects all threads gang up on.
    let mut setup = client(addr);
    let shared: Vec<ClientObjPtr<Doc>> = (0..4)
        .map(|i| {
            setup
                .pnew(&Doc {
                    title: format!("shared-{i}"),
                    revision: 0,
                })
                .expect("pnew shared")
        })
        .collect();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = shared.clone();
            thread::spawn(move || {
                let mut rng = XorShift(0x9E37_79B9 ^ (t + 1));
                let mut c = client(addr);
                for _ in 0..OPS {
                    let p = shared[(rng.next() % shared.len() as u64) as usize];
                    match rng.next() % 6 {
                        0 => {
                            c.newversion(&p).expect("newversion");
                        }
                        1 => {
                            // Branch from a random existing version.
                            let history = c.version_history(&p).expect("history");
                            let base = history[(rng.next() % history.len() as u64) as usize];
                            c.newversion_from(&base).expect("newversion_from");
                        }
                        2 => {
                            c.put(
                                &p,
                                &Doc {
                                    title: format!("t{t}"),
                                    revision: rng.next(),
                                },
                            )
                            .expect("put");
                        }
                        3 => {
                            let (_, vid) = c.deref(&p).expect("deref");
                            assert!(c.version_exists(&vid).expect("version_exists"));
                        }
                        4 => {
                            let v = c.current_version(&p).expect("current_version");
                            assert_eq!(c.object_of(&v).expect("object_of"), p);
                        }
                        _ => {
                            let history = c.version_history(&p).expect("history");
                            assert!(!history.is_empty());
                            // The derivation parent of any version must
                            // itself be a live version of the object.
                            let probe = history[(rng.next() % history.len() as u64) as usize];
                            if let Some(parent) = c.dprevious(&probe).expect("dprevious") {
                                assert!(history.contains(&parent));
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("workload thread must not panic");
    }

    // Full structural validation of every shared object over the wire.
    // (A `Snapshot` pins the store mutex, so the embedded-API pass
    // below must not overlap with network calls into the same process.)
    let mut c = client(addr);
    for p in &shared {
        let history = c.version_history(p).expect("history");
        assert_eq!(c.version_count(p).expect("count"), history.len() as u64);

        // The temporal chain must thread the whole history in order.
        for pair in history.windows(2) {
            assert_eq!(c.tnext(&pair[0]).expect("tnext"), Some(pair[1]));
            assert_eq!(c.tprevious(&pair[1]).expect("tprevious"), Some(pair[0]));
        }
        // The generic reference resolves to the temporal tail.
        let (_, latest) = c.deref(p).expect("deref");
        assert_eq!(Some(&latest), history.last());
    }

    // And once more against the embedded API.
    let mut snap = db.snapshot();
    for p in &shared {
        snap.check_object(&p.as_obj_ptr()).expect("check_object");
    }
    drop(snap);

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0, "no protocol-level failures");
    assert_eq!(stats.op_errors, 0, "no operation should have failed");
    server.shutdown();
}

#[test]
fn server_restart_recovers_all_committed_versions_over_the_network() {
    let path = TempPath::new();

    // Sync on commit: this test is about durability.
    let db = Arc::new(Database::create(&path.0, DatabaseOptions::default()).expect("create db"));
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr();

    let mut c = client(addr);
    let p = c
        .pnew(&Doc {
            title: "durable".into(),
            revision: 0,
        })
        .expect("pnew");
    let v0 = c.current_version(&p).expect("current_version");
    let v1 = c.newversion(&p).expect("newversion");
    c.put(
        &p,
        &Doc {
            title: "durable".into(),
            revision: 1,
        },
    )
    .expect("put");
    let v2 = c.newversion_from(&v0).expect("newversion_from");

    // Kill the server without any orderly database shutdown: the Arc is
    // leaked, so no checkpoint runs and reopening must replay the WAL —
    // exactly what a crashed server process would leave behind.
    server.shutdown();
    std::mem::forget(db);

    // Same address, fresh database handle recovered from the files.
    let db2 = Arc::new(Database::open(&path.0, DatabaseOptions::default()).expect("recover db"));
    let _server2 =
        OdeServer::bind(Arc::clone(&db2), addr, ServerConfig::default()).expect("rebind server");

    // The ORIGINAL client instance: its connection died with the old
    // server, so this read exercises retry-once-on-reconnect.
    let history = c.version_history(&p).expect("history after restart");
    assert_eq!(history, vec![v0, v1, v2]);

    let (latest, vid) = c.deref(&p).expect("deref after restart");
    assert_eq!(vid, v2);
    assert_eq!(latest.revision, 0, "v2 branched from v0's state");
    assert_eq!(c.deref_v(&v1).expect("deref_v v1").revision, 1);
    assert_eq!(c.dprevious(&v2).expect("dprevious"), Some(v0));
}

#[test]
fn operation_failures_come_back_as_error_frames_and_sessions_survive() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    // Unknown object.
    let ghost: ClientObjPtr<Doc> = ClientObjPtr::from_oid(Oid(0xDEAD));
    match c.deref(&ghost) {
        Err(NetError::Remote(RemoteError::UnknownObject(oid))) => assert_eq!(oid, Oid(0xDEAD)),
        other => panic!("expected UnknownObject, got {other:?}"),
    }

    // Type mismatch: read a Doc as an Imposter.
    let p = c
        .pnew(&Doc {
            title: "real".into(),
            revision: 0,
        })
        .expect("pnew");
    let wrong: ClientObjPtr<Imposter> = ClientObjPtr::from_oid(p.oid());
    match c.deref(&wrong) {
        Err(NetError::Remote(RemoteError::TypeMismatch { expected, found })) => {
            assert_eq!(expected, ObjPtr::<Imposter>::tag());
            assert_eq!(found, ObjPtr::<Doc>::tag());
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }

    // Deleting the only version is refused.
    let only = c.current_version(&p).expect("current_version");
    match c.pdelete_version(only) {
        Err(NetError::Remote(RemoteError::LastVersion(vid))) => assert_eq!(vid, only.vid()),
        other => panic!("expected LastVersion, got {other:?}"),
    }

    // After three error frames the same connection still works.
    c.ping().expect("session survives error frames");
    assert_eq!(c.deref(&p).expect("deref").0.title, "real");

    let stats = server.stats();
    assert_eq!(stats.op_errors, 3);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}

#[test]
fn malformed_frames_get_error_replies_without_killing_the_session() {
    use std::io::{Read, Write};

    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);

    // Speak the protocol by hand: handshake, then a garbage opcode.
    let mut s = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(b"ODE\x02").expect("send magic");
    let mut echo = [0u8; 4];
    s.read_exact(&mut echo).expect("read magic");
    assert_eq!(&echo, b"ODE\x02");

    // Frame: length 2, payload = seq 9 + opcode 200 (unknown).
    s.write_all(&[2, 9, 200]).expect("send garbage");
    let mut prefix = [0u8; 1];
    s.read_exact(&mut prefix).expect("read reply length");
    let mut reply = vec![0u8; prefix[0] as usize];
    s.read_exact(&mut reply).expect("read reply");
    assert_eq!(reply[0], 9, "error frame echoes the sequence id");
    assert_eq!(reply[1], 255, "reply must be an error frame");

    // The session is still alive: a well-formed ping round-trips.
    s.write_all(&[2, 10, 0]).expect("send ping");
    s.read_exact(&mut prefix).expect("read pong length");
    assert_eq!(prefix[0], 2);
    let mut pong = [0u8; 2];
    s.read_exact(&mut pong).expect("read pong");
    assert_eq!(pong[0], 10, "pong echoes the sequence id");
    assert_eq!(pong[1], 0, "pong response kind");

    assert!(server.stats().protocol_errors > 0);
    server.shutdown();
}

#[test]
fn extent_scans_and_pagination_over_the_wire() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    let created: Vec<ClientObjPtr<Doc>> = (0..10)
        .map(|i| {
            c.pnew(&Doc {
                title: format!("doc-{i}"),
                revision: i,
            })
            .expect("pnew")
        })
        .collect();

    let all = c.objects::<Doc>().expect("objects");
    assert_eq!(all, created);

    // Cursor pagination: three pages of 4/4/2.
    let mut after = Oid::NULL;
    let mut paged: Vec<ClientObjPtr<Doc>> = Vec::new();
    loop {
        let page = c.objects_page::<Doc>(after, 4).expect("objects_page");
        if page.is_empty() {
            break;
        }
        assert!(page.len() <= 4);
        after = Oid(page.last().unwrap().oid().0 + 1);
        paged.extend(page);
    }
    assert_eq!(paged, created);

    // pdelete removes from the extent.
    c.pdelete(created[3]).expect("pdelete");
    let remaining = c.objects::<Doc>().expect("objects");
    assert_eq!(remaining.len(), 9);
    assert!(!remaining.contains(&created[3]));
    assert!(!c.exists(&created[3]).expect("exists"));

    server.shutdown();
}

#[test]
fn pipelined_responses_can_arrive_out_of_order() {
    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    let p = c
        .pnew(&Doc {
            title: "ooo".into(),
            revision: 0,
        })
        .expect("pnew");

    // An embedded snapshot pins the store lock, so the executor cannot
    // start the write's transaction — but the reader fast path answers
    // pings without touching the store.
    let snap = db.snapshot();
    let w_seq = c
        .send(&Request::NewVersion { oid: p.oid() })
        .expect("send write");
    let p_seq = c.send(&Request::Ping).expect("send ping");
    let (first_seq, first) = c.recv().expect("recv while write is stuck");
    assert_eq!(first_seq, p_seq, "ping overtakes the blocked write");
    assert_eq!(first, Response::Pong);

    // Release the store; the write completes and its response arrives.
    drop(snap);
    match c.recv_for(w_seq).expect("recv write response") {
        Response::Version(_) => {}
        other => panic!("expected a version response, got {other:?}"),
    }
    assert_eq!(c.version_count(&p).expect("count"), 2);
    server.shutdown();
}

#[test]
fn pipeline_batch_returns_responses_in_request_order() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    let docs: Vec<ClientObjPtr<Doc>> = (0..20)
        .map(|i| {
            c.pnew(&Doc {
                title: format!("batch-{i}"),
                revision: i,
            })
            .expect("pnew")
        })
        .collect();

    // Sequential ground truth.
    let expected: Vec<(ode::Vid, Vec<u8>)> = docs
        .iter()
        .map(|p| {
            c.deref_raw(p.oid(), ClientObjPtr::<Doc>::tag())
                .expect("deref")
        })
        .collect();

    // The same reads as one pipelined batch.
    let mut pipe = c.pipeline();
    for p in &docs {
        pipe.push(&Request::Deref {
            oid: p.oid(),
            tag: ClientObjPtr::<Doc>::tag(),
        })
        .expect("push");
    }
    assert_eq!(pipe.len(), docs.len());
    let responses = pipe.run().expect("run");
    assert_eq!(responses.len(), docs.len());
    for (response, (vid, bytes)) in responses.iter().zip(&expected) {
        assert_eq!(
            response,
            &Response::Body {
                vid: *vid,
                bytes: bytes.clone()
            },
            "batch responses come back in request order"
        );
    }
    server.shutdown();
}

#[test]
fn snapshot_cache_serves_repeats_and_invalidates_on_commit() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let addr = server.local_addr();
    let mut a = client(addr);
    let mut b = client(addr);

    let p = a
        .pnew(&Doc {
            title: "cached".into(),
            revision: 1,
        })
        .expect("pnew");

    // First read misses and fills; repeats are served from the cache.
    let first = a.deref(&p).expect("deref 1");
    let hits_before = server.stats().snapshot_hits;
    for _ in 0..5 {
        assert_eq!(a.deref(&p).expect("repeat deref"), first);
    }
    let stats = server.stats();
    assert!(
        stats.snapshot_hits >= hits_before + 5,
        "repeated identical reads must hit the cache ({} -> {})",
        hits_before,
        stats.snapshot_hits
    );
    assert!(stats.snapshot_misses >= 1);

    // A commit on ANOTHER connection invalidates: the next read on the
    // original connection must observe the new latest version.
    let v2 = b
        .put(
            &p,
            &Doc {
                title: "cached".into(),
                revision: 2,
            },
        )
        .expect("put from other connection");
    let (doc, vid) = a.deref(&p).expect("deref after foreign commit");
    assert_eq!(vid, v2);
    assert_eq!(doc.revision, 2, "no stale generic-reference reads");

    // Remote stats carry the cache counters too.
    let remote = a.stats().expect("stats over the wire");
    assert!(remote.snapshot_hits >= 5);
    assert!(remote.snapshot_misses >= 1);
    server.shutdown();
}

#[test]
fn read_pipelined_behind_a_write_observes_that_write() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    let p = c
        .pnew(&Doc {
            title: "ryw".into(),
            revision: 1,
        })
        .expect("pnew");
    let tag = ClientObjPtr::<Doc>::tag();

    // Seed the cache with the pre-write answer, so a stale entry exists
    // for the gate to protect against.
    let (_, stale_bytes) = c.deref_raw(p.oid(), tag).expect("prefill");
    let _ = c.deref_raw(p.oid(), tag).expect("cache hit on old value");

    // One batch: [update, deref]. The deref is pipelined behind the
    // write on the same connection, so it must see revision 2 even
    // though the cache still holds revision 1 when it is decoded.
    for round in 2..10u64 {
        let mut pipe = c.pipeline();
        let body = ode_codec::to_bytes(&Doc {
            title: "ryw".into(),
            revision: round,
        });
        pipe.push(&Request::Update {
            oid: p.oid(),
            tag,
            body: body.clone(),
        })
        .expect("push update");
        pipe.push(&Request::Deref { oid: p.oid(), tag })
            .expect("push deref");
        let responses = pipe.run().expect("run");
        match (&responses[0], &responses[1]) {
            (Response::Version(_), Response::Body { bytes, .. }) => {
                assert_ne!(bytes, &stale_bytes, "round {round}: stale cached read");
                assert_eq!(bytes, &body, "round {round}: read-your-writes");
            }
            other => panic!("unexpected responses {other:?}"),
        }
    }
    server.shutdown();
}

/// Re-exec helper, not a test of its own: when the crash-recovery test
/// spawns the test binary with `ODE_NET_CRASH_CHILD` set, this runs a
/// real server process that the parent SIGKILLs mid-pipeline. Without
/// the env var it is a no-op.
#[test]
fn child_server_process() {
    let Ok(db_path) = std::env::var("ODE_NET_CRASH_CHILD") else {
        return;
    };
    let port_file = std::env::var("ODE_NET_CRASH_PORT_FILE").expect("port file env var");
    // Durable commits: the parent's invariant is "acknowledged implies
    // recovered", which needs fsync-on-commit.
    let db = Arc::new(Database::create(&db_path, DatabaseOptions::default()).expect("create db"));
    let server =
        OdeServer::bind(db, "127.0.0.1:0", ServerConfig::default()).expect("bind child server");
    let tmp = format!("{port_file}.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("write port file");
    std::fs::rename(&tmp, &port_file).expect("publish port file");
    // Serve until the parent kills this process.
    loop {
        thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Kills the child process (SIGKILL — no cleanup, no WAL checkpoint) on
/// drop, so a panicking assertion can't leak a server process.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn sigkill_mid_pipeline_recovers_exactly_the_acknowledged_writes() {
    use std::time::{Duration, Instant};

    let path = TempPath::new();
    let port_file = ode::testutil::fresh_path();

    // Spawn this same test binary as the server process.
    let exe = std::env::current_exe().expect("current_exe");
    let child = std::process::Command::new(exe)
        .args(["child_server_process", "--exact", "--nocapture"])
        .env("ODE_NET_CRASH_CHILD", &path.0)
        .env("ODE_NET_CRASH_PORT_FILE", &port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");
    let mut child = KillOnDrop(child);

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            break s.trim().parse().expect("parse child address");
        }
        assert!(Instant::now() < deadline, "child server never came up");
        thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&port_file);

    // Pipeline a burst of creates. Each body carries a unique marker in
    // `revision`, so the database contents identify exactly which
    // writes survived.
    const SENT: u64 = 50;
    const ACKED_BEFORE_KILL: u64 = 10;
    let mut c = client(addr);
    let mut seqs = Vec::new();
    for i in 0..SENT {
        let body = ode_codec::to_bytes(&Doc {
            title: "crash".into(),
            revision: i,
        });
        let seq = c
            .send(&Request::Pnew {
                tag: ClientObjPtr::<Doc>::tag(),
                body,
            })
            .expect("send pnew");
        seqs.push((i, seq));
    }

    // Collect the first few acknowledgements, then SIGKILL the server
    // with the rest of the pipeline still in flight.
    let mut acked: Vec<u64> = Vec::new();
    for &(marker, seq) in seqs.iter().take(ACKED_BEFORE_KILL as usize) {
        match c.recv_for(seq).expect("ack before kill") {
            Response::Created { .. } => acked.push(marker),
            other => panic!("expected created, got {other:?}"),
        }
    }
    child.0.kill().expect("SIGKILL child");
    child.0.wait().expect("reap child");

    // Drain whatever still arrives; the connection must surface a clean
    // error (not hang, not panic) once the stream dies. The server may
    // have flushed every response before the kill — then the dead
    // stream shows up on the next request instead.
    let mut saw_error = false;
    for &(marker, seq) in seqs.iter().skip(ACKED_BEFORE_KILL as usize) {
        match c.recv_for(seq) {
            Ok(Response::Created { .. }) => acked.push(marker),
            Ok(other) => panic!("expected created, got {other:?}"),
            Err(NetError::Io(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("expected an I/O error, got {other:?}"),
        }
    }
    if !saw_error {
        let outcome = c.send(&Request::Ping).and_then(|seq| c.recv_for(seq));
        match outcome {
            Err(NetError::Io(_)) => saw_error = true,
            other => panic!("expected an I/O error after the kill, got {other:?}"),
        }
    }
    assert!(saw_error, "the killed connection must error out");

    // Recover the database the way a restarted server would and read
    // back the markers that survived.
    let db = Database::open(&path.0, DatabaseOptions::default()).expect("recover db");
    let mut snap = db.snapshot();
    let mut recovered: Vec<u64> = snap
        .objects::<Doc>()
        .expect("objects")
        .iter()
        .map(|p| snap.deref(p).expect("deref recovered").revision)
        .collect();
    recovered.sort_unstable();

    // Exactly the acknowledged writes are guaranteed: every ack is
    // recovered (durability), and nothing outside the sent set appears.
    // Unacknowledged writes may or may not have committed — that's the
    // crash window — but the acknowledged prefix is a hard floor.
    for marker in &acked {
        assert!(
            recovered.contains(marker),
            "acknowledged write {marker} lost by the crash (recovered: {recovered:?})"
        );
    }
    assert!(acked.len() as u64 >= ACKED_BEFORE_KILL);
    for marker in &recovered {
        assert!(*marker < SENT, "recovered a write that was never sent");
    }
}

#[test]
fn versions_travel_between_embedded_and_network_apis() {
    // Objects created through the embedded API are visible over the
    // wire and vice versa — same file, same ids.
    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 4);

    let p_embedded = {
        let mut txn = db.begin();
        let p = txn
            .pnew(&Doc {
                title: "embedded".into(),
                revision: 7,
            })
            .expect("pnew");
        txn.commit().expect("commit");
        p
    };

    let mut c = client(server.local_addr());
    let p_remote: ClientObjPtr<Doc> = p_embedded.into();
    let (doc, _) = c.deref(&p_remote).expect("deref embedded object");
    assert_eq!(doc.title, "embedded");

    let p_net = c
        .pnew(&Doc {
            title: "networked".into(),
            revision: 8,
        })
        .expect("pnew over wire");
    let mut snap = db.snapshot();
    let doc = snap
        .deref(&p_net.as_obj_ptr())
        .expect("deref network object locally");
    assert_eq!(doc.title, "networked");
    drop(snap);

    // A ClientVersionPtr obtained remotely dereferences locally too.
    let v: ClientVersionPtr<Doc> = c.current_version(&p_net).expect("current_version");
    let mut snap = db.snapshot();
    assert_eq!(
        snap.deref_v(&v.as_version_ptr()).expect("deref_v").revision,
        8
    );

    server.shutdown();
}

#[test]
fn history_and_diff_are_served_over_the_wire_from_the_chain() {
    // A chain-enabled database: version bodies are stored as deltas,
    // and the two new read ops answer from the chain.
    let path = TempPath::new();
    let db = Arc::new(
        Database::create(
            &path.0,
            DatabaseOptions::no_sync().with_chain(ode::ChainConfig::default()),
        )
        .expect("create db"),
    );
    let server =
        OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut c = client(server.local_addr());

    let p = c
        .pnew(&Doc {
            title: "chained".repeat(40),
            revision: 0,
        })
        .expect("pnew");
    let mut vids = vec![c.current_version(&p).expect("current_version")];
    for rev in 1..=8u64 {
        let v = c.newversion(&p).expect("newversion");
        c.put_version(
            &v,
            &Doc {
                title: "chained".repeat(40),
                revision: rev,
            },
        )
        .expect("put_version");
        vids.push(v);
    }

    // The full stamp range returns the whole temporal history.
    let all = c.history_between(&p, 0, u64::MAX).expect("history_between");
    assert_eq!(all, vids);
    // A sub-range clips both ends.
    let mid = c
        .history_between(&p, vids[2].vid().0, vids[5].vid().0)
        .expect("history_between");
    assert_eq!(mid, vids[2..=5].to_vec());

    // Adjacent versions diff straight off the stored chain; the edit
    // is tiny next to the body, so the delta is too.
    let d = c.diff_versions(&vids[3], &vids[4]).expect("diff_versions");
    assert_eq!((d.from, d.to), (vids[3].vid(), vids[4].vid()));
    assert!(
        d.stored,
        "adjacent chained versions must use the stored delta"
    );
    assert!(
        d.encoded_bytes < d.to_len / 3,
        "delta ({} bytes) should be far smaller than the body ({} bytes)",
        d.encoded_bytes,
        d.to_len
    );
    // Non-adjacent versions still diff (computed on demand).
    let d = c.diff_versions(&vids[1], &vids[7]).expect("diff_versions");
    assert!(!d.stored);
    assert_eq!(
        d.to_len,
        ode_codec::to_bytes(&Doc {
            title: "chained".repeat(40),
            revision: 7
        })
        .len() as u64
    );

    // Historical reads replay the chain and populate the
    // materialization cache; the counters travel in Stats.
    for _ in 0..3 {
        let doc = c.deref_v(&vids[2]).expect("deref_v historical");
        assert_eq!(doc.revision, 2);
        c.disconnect(); // defeat the server's snapshot cache, not the db's
    }
    let stats = c.stats().expect("stats");
    assert!(
        stats.materialize_misses >= 1,
        "the first historical read must replay the chain"
    );

    server.shutdown();
}
