//! End-to-end tests: real TCP on loopback, real database files, real
//! WAL recovery — the network path exercised exactly as a deployment
//! would.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use ode::{Database, DatabaseOptions, ObjPtr, Oid};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, ClientVersionPtr, NetError, OdeClient, OdeServer, Opcode,
    RemoteError, ServerConfig,
};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    title: String,
    revision: u64,
}
impl_persist_struct!(Doc { title, revision });
impl_type_name!(Doc = "net-test/Doc");

/// A type the server has never stored — for type-mismatch tests.
#[derive(Debug, Clone, PartialEq)]
struct Imposter {
    n: u64,
}
impl_persist_struct!(Imposter { n });
impl_type_name!(Imposter = "net-test/Imposter");

/// Database file at a unique temp path, removed (with WAL) on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

fn start_server(path: &PathBuf, workers: usize) -> (Arc<Database>, OdeServer) {
    let db = Arc::new(Database::create(path, DatabaseOptions::no_sync()).expect("create db"));
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig { workers })
        .expect("bind server");
    (db, server)
}

fn client(addr: SocketAddr) -> OdeClient {
    OdeClient::connect(addr, ClientConfig::default()).expect("connect client")
}

/// The acceptance flow, runnable concurrently from many threads: create
/// an object, derive from latest and from a pinned version, read
/// through both reference kinds, traverse, delete a version, and check
/// latest-version resolution throughout.
fn full_versioning_flow(client: &mut OdeClient, who: &str) {
    let doc = Doc {
        title: who.to_string(),
        revision: 0,
    };
    let p = client.pnew(&doc).expect("pnew");
    let v0 = client.current_version(&p).expect("current_version");

    // Derivation 1: from the latest (v0); becomes latest, then edit it.
    let v1 = client.newversion(&p).expect("newversion");
    let rev1 = Doc {
        title: who.to_string(),
        revision: 1,
    };
    let wrote = client.put(&p, &rev1).expect("put");
    assert_eq!(wrote, v1, "put through a generic ref writes the latest");

    // Derivation 2: from the *pinned* v0 — branches the derived-from
    // tree and becomes the new latest.
    let v2 = client.newversion_from(&v0).expect("newversion_from");

    // Generic reference: late binding resolves to v2 (whose state was
    // copied from v0, untouched by the v1 edit).
    let (latest_doc, latest_vid) = client.deref(&p).expect("deref");
    assert_eq!(latest_vid, v2);
    assert_eq!(latest_doc, doc);

    // Specific references: pinned, regardless of later versions.
    assert_eq!(client.deref_v(&v0).expect("deref_v v0"), doc);
    assert_eq!(client.deref_v(&v1).expect("deref_v v1"), rev1);

    // Derived-from traversals: both children hang off v0.
    assert_eq!(client.dprevious(&v1).expect("dprevious v1"), Some(v0));
    assert_eq!(client.dprevious(&v2).expect("dprevious v2"), Some(v0));
    assert_eq!(client.dprevious(&v0).expect("dprevious v0"), None);
    assert_eq!(client.dnext(&v0).expect("dnext v0"), vec![v1, v2]);

    // Temporal traversals.
    assert_eq!(client.tprevious(&v2).expect("tprevious v2"), Some(v1));
    assert_eq!(client.tnext(&v1).expect("tnext v1"), Some(v2));
    assert_eq!(
        client.version_history(&p).expect("history"),
        vec![v0, v1, v2]
    );

    // Delete the middle version; temporal chain splices around it and
    // the object id still resolves to v2.
    client.pdelete_version(v1).expect("pdelete_version");
    assert!(!client.version_exists(&v1).expect("version_exists"));
    assert_eq!(
        client.tprevious(&v2).expect("tprevious after del"),
        Some(v0)
    );
    assert_eq!(client.version_history(&p).expect("history"), vec![v0, v2]);
    assert_eq!(client.version_count(&p).expect("version_count"), 2);
    let (after_del, after_vid) = client.deref(&p).expect("deref after delete");
    assert_eq!(after_vid, v2);
    assert_eq!(after_del, doc);

    // Round trips that tie both pointer kinds together.
    assert_eq!(client.object_of(&v2).expect("object_of"), p);
    assert!(client.exists(&p).expect("exists"));
}

#[test]
fn end_to_end_acceptance_flow_with_concurrent_clients() {
    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 8);
    let addr = server.local_addr();

    // Once single-threaded (easier failure diagnosis) ...
    full_versioning_flow(&mut client(addr), "solo");

    // ... then the same full flow from 6 concurrent client threads,
    // each over its own TCP connection.
    let handles: Vec<_> = (0..6)
        .map(|i| {
            thread::spawn(move || {
                let mut c = client(addr);
                full_versioning_flow(&mut c, &format!("thread-{i}"));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }

    // Every object the flows created is intact under the embedded API.
    let mut snap = db.snapshot();
    let objects = snap.objects::<Doc>().expect("objects");
    assert_eq!(objects.len(), 7);
    for p in &objects {
        snap.check_object(p).expect("invariants hold");
    }
    drop(snap);

    // Stats: per-opcode counters are non-zero for everything the flow
    // used, and nothing went wrong at the protocol level.
    let mut c = client(addr);
    let stats = c.stats().expect("stats");
    for op in [
        Opcode::Pnew,
        Opcode::Deref,
        Opcode::DerefVersion,
        Opcode::Update,
        Opcode::NewVersion,
        Opcode::NewVersionFrom,
        Opcode::PdeleteVersion,
        Opcode::Dprevious,
        Opcode::Dnext,
        Opcode::Tprevious,
        Opcode::Tnext,
        Opcode::VersionHistory,
        Opcode::CurrentVersion,
        Opcode::ObjectOf,
        Opcode::VersionCount,
        Opcode::Exists,
        Opcode::VersionExists,
        Opcode::Stats,
    ] {
        assert!(
            stats.requests_for(op) > 0,
            "opcode {} should have been counted",
            op.name()
        );
    }
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.op_errors, 0);
    assert!(stats.total_connections >= 8);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

    server.shutdown();
}

/// Tiny deterministic PRNG so the mixed workload needs no external
/// crates and replays identically.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn concurrent_mixed_workload_preserves_version_graph_invariants() {
    const THREADS: u64 = 6;
    const OPS: u64 = 40;

    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 8);
    let addr = server.local_addr();

    // Four shared objects all threads gang up on.
    let mut setup = client(addr);
    let shared: Vec<ClientObjPtr<Doc>> = (0..4)
        .map(|i| {
            setup
                .pnew(&Doc {
                    title: format!("shared-{i}"),
                    revision: 0,
                })
                .expect("pnew shared")
        })
        .collect();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = shared.clone();
            thread::spawn(move || {
                let mut rng = XorShift(0x9E37_79B9 ^ (t + 1));
                let mut c = client(addr);
                for _ in 0..OPS {
                    let p = shared[(rng.next() % shared.len() as u64) as usize];
                    match rng.next() % 6 {
                        0 => {
                            c.newversion(&p).expect("newversion");
                        }
                        1 => {
                            // Branch from a random existing version.
                            let history = c.version_history(&p).expect("history");
                            let base = history[(rng.next() % history.len() as u64) as usize];
                            c.newversion_from(&base).expect("newversion_from");
                        }
                        2 => {
                            c.put(
                                &p,
                                &Doc {
                                    title: format!("t{t}"),
                                    revision: rng.next(),
                                },
                            )
                            .expect("put");
                        }
                        3 => {
                            let (_, vid) = c.deref(&p).expect("deref");
                            assert!(c.version_exists(&vid).expect("version_exists"));
                        }
                        4 => {
                            let v = c.current_version(&p).expect("current_version");
                            assert_eq!(c.object_of(&v).expect("object_of"), p);
                        }
                        _ => {
                            let history = c.version_history(&p).expect("history");
                            assert!(!history.is_empty());
                            // The derivation parent of any version must
                            // itself be a live version of the object.
                            let probe = history[(rng.next() % history.len() as u64) as usize];
                            if let Some(parent) = c.dprevious(&probe).expect("dprevious") {
                                assert!(history.contains(&parent));
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("workload thread must not panic");
    }

    // Full structural validation of every shared object over the wire.
    // (A `Snapshot` pins the store mutex, so the embedded-API pass
    // below must not overlap with network calls into the same process.)
    let mut c = client(addr);
    for p in &shared {
        let history = c.version_history(p).expect("history");
        assert_eq!(c.version_count(p).expect("count"), history.len() as u64);

        // The temporal chain must thread the whole history in order.
        for pair in history.windows(2) {
            assert_eq!(c.tnext(&pair[0]).expect("tnext"), Some(pair[1]));
            assert_eq!(c.tprevious(&pair[1]).expect("tprevious"), Some(pair[0]));
        }
        // The generic reference resolves to the temporal tail.
        let (_, latest) = c.deref(p).expect("deref");
        assert_eq!(Some(&latest), history.last());
    }

    // And once more against the embedded API.
    let mut snap = db.snapshot();
    for p in &shared {
        snap.check_object(&p.as_obj_ptr()).expect("check_object");
    }
    drop(snap);

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0, "no protocol-level failures");
    assert_eq!(stats.op_errors, 0, "no operation should have failed");
    server.shutdown();
}

#[test]
fn server_restart_recovers_all_committed_versions_over_the_network() {
    let path = TempPath::new();

    // Sync on commit: this test is about durability.
    let db = Arc::new(Database::create(&path.0, DatabaseOptions::default()).expect("create db"));
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr();

    let mut c = client(addr);
    let p = c
        .pnew(&Doc {
            title: "durable".into(),
            revision: 0,
        })
        .expect("pnew");
    let v0 = c.current_version(&p).expect("current_version");
    let v1 = c.newversion(&p).expect("newversion");
    c.put(
        &p,
        &Doc {
            title: "durable".into(),
            revision: 1,
        },
    )
    .expect("put");
    let v2 = c.newversion_from(&v0).expect("newversion_from");

    // Kill the server without any orderly database shutdown: the Arc is
    // leaked, so no checkpoint runs and reopening must replay the WAL —
    // exactly what a crashed server process would leave behind.
    server.shutdown();
    std::mem::forget(db);

    // Same address, fresh database handle recovered from the files.
    let db2 = Arc::new(Database::open(&path.0, DatabaseOptions::default()).expect("recover db"));
    let _server2 =
        OdeServer::bind(Arc::clone(&db2), addr, ServerConfig::default()).expect("rebind server");

    // The ORIGINAL client instance: its connection died with the old
    // server, so this read exercises retry-once-on-reconnect.
    let history = c.version_history(&p).expect("history after restart");
    assert_eq!(history, vec![v0, v1, v2]);

    let (latest, vid) = c.deref(&p).expect("deref after restart");
    assert_eq!(vid, v2);
    assert_eq!(latest.revision, 0, "v2 branched from v0's state");
    assert_eq!(c.deref_v(&v1).expect("deref_v v1").revision, 1);
    assert_eq!(c.dprevious(&v2).expect("dprevious"), Some(v0));
}

#[test]
fn operation_failures_come_back_as_error_frames_and_sessions_survive() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    // Unknown object.
    let ghost: ClientObjPtr<Doc> = ClientObjPtr::from_oid(Oid(0xDEAD));
    match c.deref(&ghost) {
        Err(NetError::Remote(RemoteError::UnknownObject(oid))) => assert_eq!(oid, Oid(0xDEAD)),
        other => panic!("expected UnknownObject, got {other:?}"),
    }

    // Type mismatch: read a Doc as an Imposter.
    let p = c
        .pnew(&Doc {
            title: "real".into(),
            revision: 0,
        })
        .expect("pnew");
    let wrong: ClientObjPtr<Imposter> = ClientObjPtr::from_oid(p.oid());
    match c.deref(&wrong) {
        Err(NetError::Remote(RemoteError::TypeMismatch { expected, found })) => {
            assert_eq!(expected, ObjPtr::<Imposter>::tag());
            assert_eq!(found, ObjPtr::<Doc>::tag());
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }

    // Deleting the only version is refused.
    let only = c.current_version(&p).expect("current_version");
    match c.pdelete_version(only) {
        Err(NetError::Remote(RemoteError::LastVersion(vid))) => assert_eq!(vid, only.vid()),
        other => panic!("expected LastVersion, got {other:?}"),
    }

    // After three error frames the same connection still works.
    c.ping().expect("session survives error frames");
    assert_eq!(c.deref(&p).expect("deref").0.title, "real");

    let stats = server.stats();
    assert_eq!(stats.op_errors, 3);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}

#[test]
fn malformed_frames_get_error_replies_without_killing_the_session() {
    use std::io::{Read, Write};

    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);

    // Speak the protocol by hand: handshake, then a garbage opcode.
    let mut s = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(b"ODE\x01").expect("send magic");
    let mut echo = [0u8; 4];
    s.read_exact(&mut echo).expect("read magic");
    assert_eq!(&echo, b"ODE\x01");

    // Frame: length 1, payload = opcode 200 (unknown).
    s.write_all(&[1, 200]).expect("send garbage");
    let mut prefix = [0u8; 1];
    s.read_exact(&mut prefix).expect("read reply length");
    let mut reply = vec![0u8; prefix[0] as usize];
    s.read_exact(&mut reply).expect("read reply");
    assert_eq!(reply[0], 255, "reply must be an error frame");

    // The session is still alive: a well-formed ping round-trips.
    s.write_all(&[1, 0]).expect("send ping");
    s.read_exact(&mut prefix).expect("read pong length");
    assert_eq!(prefix[0], 1);
    let mut pong = [0u8; 1];
    s.read_exact(&mut pong).expect("read pong");
    assert_eq!(pong[0], 0, "pong response kind");

    assert!(server.stats().protocol_errors > 0);
    server.shutdown();
}

#[test]
fn extent_scans_and_pagination_over_the_wire() {
    let path = TempPath::new();
    let (_db, server) = start_server(&path.0, 4);
    let mut c = client(server.local_addr());

    let created: Vec<ClientObjPtr<Doc>> = (0..10)
        .map(|i| {
            c.pnew(&Doc {
                title: format!("doc-{i}"),
                revision: i,
            })
            .expect("pnew")
        })
        .collect();

    let all = c.objects::<Doc>().expect("objects");
    assert_eq!(all, created);

    // Cursor pagination: three pages of 4/4/2.
    let mut after = Oid::NULL;
    let mut paged: Vec<ClientObjPtr<Doc>> = Vec::new();
    loop {
        let page = c.objects_page::<Doc>(after, 4).expect("objects_page");
        if page.is_empty() {
            break;
        }
        assert!(page.len() <= 4);
        after = Oid(page.last().unwrap().oid().0 + 1);
        paged.extend(page);
    }
    assert_eq!(paged, created);

    // pdelete removes from the extent.
    c.pdelete(created[3]).expect("pdelete");
    let remaining = c.objects::<Doc>().expect("objects");
    assert_eq!(remaining.len(), 9);
    assert!(!remaining.contains(&created[3]));
    assert!(!c.exists(&created[3]).expect("exists"));

    server.shutdown();
}

#[test]
fn versions_travel_between_embedded_and_network_apis() {
    // Objects created through the embedded API are visible over the
    // wire and vice versa — same file, same ids.
    let path = TempPath::new();
    let (db, server) = start_server(&path.0, 4);

    let p_embedded = {
        let mut txn = db.begin();
        let p = txn
            .pnew(&Doc {
                title: "embedded".into(),
                revision: 7,
            })
            .expect("pnew");
        txn.commit().expect("commit");
        p
    };

    let mut c = client(server.local_addr());
    let p_remote: ClientObjPtr<Doc> = p_embedded.into();
    let (doc, _) = c.deref(&p_remote).expect("deref embedded object");
    assert_eq!(doc.title, "embedded");

    let p_net = c
        .pnew(&Doc {
            title: "networked".into(),
            revision: 8,
        })
        .expect("pnew over wire");
    let mut snap = db.snapshot();
    let doc = snap
        .deref(&p_net.as_obj_ptr())
        .expect("deref network object locally");
    assert_eq!(doc.title, "networked");
    drop(snap);

    // A ClientVersionPtr obtained remotely dereferences locally too.
    let v: ClientVersionPtr<Doc> = c.current_version(&p_net).expect("current_version");
    let mut snap = db.snapshot();
    assert_eq!(
        snap.deref_v(&v.as_version_ptr()).expect("deref_v").revision,
        8
    );

    server.shutdown();
}
