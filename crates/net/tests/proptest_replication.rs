//! Property test for the replica read gate: over arbitrary
//! interleavings of primary commits, replica WAL applies, and
//! floor-pinned reads, a read pinned at epoch E either waits until the
//! replica has applied E (and answers from ≥ E state) or fails
//! `Unavailable` — it never answers from state older than E.
//!
//! The replication transport is bypassed: the test drives the storage
//! tap directly (`read_wal_span` → `replica_ingest`), so the
//! interleaving is fully deterministic and single-threaded. The
//! epoch gate itself is exercised over the real wire (a replica-mode
//! `OdeServer` and an `OdeClient` pinning `ReadFloor`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, NetError, OdeClient, OdeServer, RemoteError, ServerConfig,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Counter {
    value: u64,
}
impl_persist_struct!(Counter { value });
impl_type_name!(Counter = "repl-gate/Counter");

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

/// One step of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Commit on the primary (the counter increments).
    Commit,
    /// Ship and apply the next available WAL span to the replica.
    Apply,
    /// Pin the floor at the primary's current epoch and read through
    /// the replica server.
    Read,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Step::Commit),
            3 => Just(Step::Apply),
            2 => Just(Step::Read),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn a_pinned_read_never_observes_pre_floor_state(steps in arb_steps()) {
        let ppath = TempPath::new();
        let rpath = TempPath::new();
        let primary = Database::create(&ppath.0, DatabaseOptions::no_sync()).unwrap();
        let replica = Arc::new(Database::create(&rpath.0, DatabaseOptions::no_sync()).unwrap());

        // The counter exists before the bootstrap snapshot, so the
        // replica always knows the object; only its value lags.
        let mut txn = primary.begin();
        let ptr = txn.pnew(&Counter { value: 0 }).unwrap();
        txn.commit().unwrap();
        let mut value = 0u64;

        let snap = primary.repl_snapshot().unwrap();
        replica
            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
            .unwrap();
        let mut pos = snap.base_pos;

        // A short gate timeout keeps lagging reads cheap: the replica
        // can't catch up mid-wait in this single-threaded test, so a
        // too-low floor resolves to `Unavailable` after 30ms.
        let config = ServerConfig {
            replica: true,
            read_floor_timeout: Duration::from_millis(30),
            ..ServerConfig::default()
        };
        let server = OdeServer::bind(Arc::clone(&replica), "127.0.0.1:0", config).unwrap();
        let mut client = OdeClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
        let client_ptr: ClientObjPtr<Counter> = ClientObjPtr::from_oid(ptr.oid());

        for step in steps {
            match step {
                Step::Commit => {
                    value += 1;
                    let mut txn = primary.begin();
                    txn.update(&ptr, |c| c.value = value).unwrap();
                    txn.commit().unwrap();
                }
                Step::Apply => match primary.read_wal_span(pos, 1 << 20).unwrap() {
                    ode_storage::WalSpan::Data(bytes) => {
                        replica.replica_ingest(&bytes).unwrap();
                        pos += bytes.len() as u64;
                    }
                    ode_storage::WalSpan::AtEnd => {}
                    ode_storage::WalSpan::SnapshotNeeded => {
                        let snap = primary.repl_snapshot().unwrap();
                        replica
                            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
                            .unwrap();
                        pos = snap.base_pos;
                    }
                },
                Step::Read => {
                    let floor = primary.snapshot_epoch();
                    let floor_value = value;
                    client.read_floor(floor).unwrap();
                    match client.deref(&client_ptr) {
                        Ok((body, _)) => prop_assert!(
                            body.value >= floor_value,
                            "gate leaked pre-floor state: read {} pinned at {}",
                            body.value,
                            floor_value,
                        ),
                        Err(NetError::Remote(RemoteError::Unavailable(_))) => {
                            // The replica genuinely lags the floor —
                            // refusing is the other legal outcome.
                            prop_assert!(replica.snapshot_epoch() < floor);
                        }
                        Err(other) => panic!("unexpected read outcome: {other:?}"),
                    }
                }
            }
        }

        server.shutdown();
    }
}
