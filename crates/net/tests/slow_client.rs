//! Slow-client backpressure: a client that drains its responses a
//! byte at a time (then not at all) while megabytes are queued for it
//! must not stall anyone else — its responses pile up in its own
//! per-connection write buffer until the buffer crosses
//! [`ServerConfig::write_buffer_cap`], at which point the server
//! evicts exactly that connection (counted in
//! `StatsReport::slow_client_evictions`) and everyone else never
//! notices.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, TypeTag};
use ode_net::protocol::{write_frame, Response, MAGIC};
use ode_net::{ClientConfig, OdeClient, OdeServer, Request, ServerConfig};

struct TempPath(PathBuf);

impl TempPath {
    fn new() -> TempPath {
        TempPath(ode::testutil::fresh_path())
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

#[test]
fn a_slow_reader_is_evicted_at_the_write_buffer_cap_without_stalling_others() {
    let path = TempPath::new();
    let db = Arc::new(Database::create(&path.0, DatabaseOptions::no_sync()).expect("db"));
    let config = ServerConfig {
        workers: 2,
        // Small enough that the pipelined responses below must blow
        // through it even after the kernel's socket buffers fill.
        write_buffer_cap: 1 << 20,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(db, "127.0.0.1:0", config).expect("server");
    let addr = server.local_addr();

    // Seed one fat object (256 KiB) and one small one.
    let fat_tag = TypeTag(0xFA7);
    let small_tag = TypeTag(0x51);
    let mut seeder = OdeClient::connect(addr, ClientConfig::default()).expect("seeder");
    let (fat_oid, _) = seeder
        .pnew_raw(fat_tag, vec![0xAB; 256 << 10])
        .expect("fat");
    let (small_oid, _) = seeder
        .pnew_raw(small_tag, b"small".to_vec())
        .expect("small");

    // The slow client: pipeline 64 fat derefs (~16 MiB of responses),
    // then sip one byte every 10 ms before giving up reading entirely.
    let mut slow = TcpStream::connect(addr).expect("slow connect");
    slow.set_read_timeout(Some(Duration::from_secs(30))).ok();
    slow.write_all(&MAGIC).expect("magic");
    let mut echo = [0u8; 4];
    slow.read_exact(&mut echo).expect("echo");
    let mut burst = Vec::new();
    for seq in 0..64u64 {
        let payload = Request::Deref {
            oid: fat_oid,
            tag: fat_tag,
        }
        .encode(seq);
        write_frame(&mut burst, &payload).expect("frame");
    }
    slow.write_all(&burst).expect("send burst");
    let mut byte = [0u8; 1];
    for _ in 0..30 {
        slow.read_exact(&mut byte).expect("a slow sip");
        thread::sleep(Duration::from_millis(10));
    }
    // ...and now it stops reading altogether.

    // Meanwhile a fast client on the same server must sail through.
    let fast = thread::spawn(move || {
        let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("fast");
        let started = Instant::now();
        for _ in 0..50 {
            let mut pipe = c.pipeline();
            for _ in 0..8 {
                pipe.push(&Request::Deref {
                    oid: small_oid,
                    tag: small_tag,
                })
                .expect("push");
            }
            for r in pipe.run().expect("fast batch") {
                assert!(matches!(r, Response::Body { .. }), "got {r:?}");
            }
        }
        started.elapsed()
    });
    let fast_elapsed = fast.join().expect("fast client");
    assert!(
        fast_elapsed < Duration::from_secs(10),
        "fast client stalled behind the slow one: {fast_elapsed:?}"
    );

    // The slow connection crosses the cap and is evicted — exactly
    // once, and visible in the stats.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let evictions = server.stats().slow_client_evictions;
        if evictions == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never evicted the slow client (evictions: {evictions})"
        );
        thread::sleep(Duration::from_millis(20));
    }

    // The evicted connection is closed cleanly from the server side:
    // draining it ends in EOF, not a hang.
    let mut sink = [0u8; 64 << 10];
    loop {
        match slow.read(&mut sink) {
            Ok(0) => break, // EOF — the eviction's clean shutdown
            Ok(_) => {}
            Err(e) => panic!("expected EOF after eviction, got {e}"),
        }
    }

    // Nobody else was touched.
    let stats = seeder.stats().expect("stats");
    assert_eq!(stats.slow_client_evictions, 1);
    server.shutdown();
}
