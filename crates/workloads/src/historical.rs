//! Historical-database update streams.
//!
//! §2 motivates temporal ordering with "historical databases, such as
//! those used in accounting, legal, and financial applications, that
//! must access the past states of the database."  This generator models
//! that regime: every update versions the object first (so history is
//! never lost), access is Zipf-skewed, and reads split between current
//! state and as-of historical lookups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::Zipf;

/// One operation in a historical trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoricalOp {
    /// Version-then-write the object: the prior state stays reachable.
    VersionedUpdate {
        /// Trace-local object index.
        obj: usize,
        /// New state.
        payload: Vec<u8>,
    },
    /// Read the current state.
    ReadCurrent {
        /// Trace-local object index.
        obj: usize,
    },
    /// Read the state as of `versions_back` versions ago (clamped by
    /// the driver to the object's history length).
    ReadAsOf {
        /// Trace-local object index.
        obj: usize,
        /// How far back in the temporal chain to walk.
        versions_back: usize,
    },
}

/// Parameters of a historical trace.
#[derive(Debug, Clone)]
pub struct HistoricalTraceConfig {
    /// Number of tracked objects.
    pub objects: usize,
    /// Operations in the stream.
    pub operations: usize,
    /// Fraction of operations that are updates (rest are reads).
    pub update_ratio: f64,
    /// Fraction of reads that are historical (as-of) rather than
    /// current.
    pub historical_read_ratio: f64,
    /// Zipf skew over objects (0 = uniform).
    pub theta: f64,
    /// Payload size per record.
    pub payload_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HistoricalTraceConfig {
    fn default() -> Self {
        HistoricalTraceConfig {
            objects: 100,
            operations: 1000,
            update_ratio: 0.3,
            historical_read_ratio: 0.3,
            theta: 0.9,
            payload_bytes: 128,
            seed: 0x41157,
        }
    }
}

/// A fully materialized historical trace.
#[derive(Debug, Clone)]
pub struct HistoricalTrace {
    /// The operation stream.
    pub ops: Vec<HistoricalOp>,
}

impl HistoricalTrace {
    /// Generate a trace from `config`.
    pub fn generate(config: &HistoricalTraceConfig) -> HistoricalTrace {
        assert!(config.objects > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut zipf = Zipf::new(config.objects, config.theta, config.seed ^ 0x5EED);
        let mut ops = Vec::with_capacity(config.operations);
        for step in 0..config.operations {
            let obj = zipf.sample();
            let r: f64 = rng.random();
            if r < config.update_ratio {
                let payload = (0..config.payload_bytes)
                    .map(|i| ((step + i) % 251) as u8)
                    .collect();
                ops.push(HistoricalOp::VersionedUpdate { obj, payload });
            } else if rng.random_bool(config.historical_read_ratio) {
                ops.push(HistoricalOp::ReadAsOf {
                    obj,
                    versions_back: rng.random_range(1..16),
                });
            } else {
                ops.push(HistoricalOp::ReadCurrent { obj });
            }
        }
        HistoricalTrace { ops }
    }

    /// Number of update operations.
    pub fn updates(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, HistoricalOp::VersionedUpdate { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_roughly_hold() {
        let config = HistoricalTraceConfig {
            operations: 10_000,
            update_ratio: 0.4,
            ..HistoricalTraceConfig::default()
        };
        let trace = HistoricalTrace::generate(&config);
        let updates = trace.updates();
        assert!((3500..4500).contains(&updates), "updates: {updates}");
    }

    #[test]
    fn deterministic_in_seed() {
        let config = HistoricalTraceConfig::default();
        assert_eq!(
            HistoricalTrace::generate(&config).ops,
            HistoricalTrace::generate(&config).ops
        );
    }

    #[test]
    fn zipf_skew_concentrates_access() {
        let trace = HistoricalTrace::generate(&HistoricalTraceConfig {
            operations: 20_000,
            theta: 0.99,
            ..HistoricalTraceConfig::default()
        });
        let mut counts = vec![0usize; 100];
        for op in &trace.ops {
            let obj = match op {
                HistoricalOp::VersionedUpdate { obj, .. }
                | HistoricalOp::ReadCurrent { obj }
                | HistoricalOp::ReadAsOf { obj, .. } => *obj,
            };
            counts[obj] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        let median = {
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            sorted[50]
        };
        assert!(
            hottest > 5 * median.max(1),
            "hottest {hottest} median {median}"
        );
    }
}
