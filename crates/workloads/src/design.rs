//! Design-evolution traces.
//!
//! Models a design team iterating on a population of objects: most
//! derivations are *revisions* of an object's tip; a configurable
//! fraction are *alternatives* branched from an earlier version (the
//! paper's variants).  Between derivations the tip state is edited.
//! Operation handles are indices into the trace's own numbering, so the
//! same trace can drive any `VersionModel`-style backend.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::SizeClass;

/// One operation in a design trace.
///
/// Objects and versions are identified by *trace-local* dense indices:
/// object `k` is the `k`-th [`DesignOp::Create`], and version `j` of an
/// object is the `j`-th version the trace created for it (0 = initial).
/// The driver maps these to backend handles as it replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignOp {
    /// Create object (the next dense object index) with this initial
    /// payload.
    Create {
        /// Initial state.
        payload: Vec<u8>,
    },
    /// Derive a revision from the tip of object `obj`.
    Revise {
        /// Trace-local object index.
        obj: usize,
    },
    /// Derive an alternative from version `version` of object `obj`.
    Branch {
        /// Trace-local object index.
        obj: usize,
        /// Trace-local version index within the object.
        version: usize,
    },
    /// Overwrite the tip state of object `obj`.
    Edit {
        /// Trace-local object index.
        obj: usize,
        /// New state.
        payload: Vec<u8>,
    },
    /// Read the current state of object `obj` (generic reference).
    ReadCurrent {
        /// Trace-local object index.
        obj: usize,
    },
    /// Read a specific version (specific reference).
    ReadVersion {
        /// Trace-local object index.
        obj: usize,
        /// Trace-local version index within the object.
        version: usize,
    },
}

/// Parameters of a design-evolution trace.
#[derive(Debug, Clone)]
pub struct DesignTraceConfig {
    /// Number of objects created up front.
    pub objects: usize,
    /// Number of operations after the creation phase.
    pub operations: usize,
    /// Fraction of derivations that branch from a non-tip version
    /// (0.0 = purely linear, the regime where linear models do fine).
    pub alternative_ratio: f64,
    /// Fraction of operations that derive (vs. edit/read).
    pub derive_ratio: f64,
    /// Fraction of operations that read (vs. edit) among non-derives.
    pub read_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DesignTraceConfig {
    fn default() -> Self {
        DesignTraceConfig {
            objects: 100,
            operations: 1000,
            alternative_ratio: 0.2,
            derive_ratio: 0.3,
            read_ratio: 0.5,
            seed: 0x00DE_516E,
        }
    }
}

/// A fully materialized design trace.
#[derive(Debug, Clone)]
pub struct DesignTrace {
    /// The operation stream (creations first).
    pub ops: Vec<DesignOp>,
    /// Versions each object accumulates over the trace (bookkeeping the
    /// generator used; drivers may recompute it during replay).
    pub versions_per_object: Vec<usize>,
}

impl DesignTrace {
    /// Generate a trace from `config`.
    pub fn generate(config: &DesignTraceConfig) -> DesignTrace {
        assert!(config.objects > 0, "trace needs at least one object");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ops = Vec::with_capacity(config.objects + config.operations);
        let mut versions = vec![1usize; config.objects];

        for i in 0..config.objects {
            let class = SizeClass::sample(&mut rng);
            ops.push(DesignOp::Create {
                payload: class.payload(i as u64),
            });
        }

        for step in 0..config.operations {
            let obj = rng.random_range(0..config.objects);
            let r: f64 = rng.random();
            if r < config.derive_ratio {
                let branch: f64 = rng.random();
                if branch < config.alternative_ratio && versions[obj] > 1 {
                    let version = rng.random_range(0..versions[obj] - 1);
                    ops.push(DesignOp::Branch { obj, version });
                } else {
                    ops.push(DesignOp::Revise { obj });
                }
                versions[obj] += 1;
            } else if r < config.derive_ratio + (1.0 - config.derive_ratio) * config.read_ratio {
                if rng.random_bool(0.5) && versions[obj] > 1 {
                    let version = rng.random_range(0..versions[obj]);
                    ops.push(DesignOp::ReadVersion { obj, version });
                } else {
                    ops.push(DesignOp::ReadCurrent { obj });
                }
            } else {
                let class = SizeClass::sample(&mut rng);
                ops.push(DesignOp::Edit {
                    obj,
                    payload: class.payload(step as u64),
                });
            }
        }

        DesignTrace {
            ops,
            versions_per_object: versions,
        }
    }

    /// Count of derivation operations (revisions + branches).
    pub fn derivations(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DesignOp::Revise { .. } | DesignOp::Branch { .. }))
            .count()
    }

    /// Count of branch (alternative) operations.
    pub fn branches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DesignOp::Branch { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_expected_shape() {
        let config = DesignTraceConfig {
            objects: 50,
            operations: 500,
            ..DesignTraceConfig::default()
        };
        let trace = DesignTrace::generate(&config);
        assert_eq!(trace.ops.len(), 550);
        let creates = trace
            .ops
            .iter()
            .filter(|op| matches!(op, DesignOp::Create { .. }))
            .count();
        assert_eq!(creates, 50);
        // Creations come first.
        assert!(trace.ops[..50]
            .iter()
            .all(|op| matches!(op, DesignOp::Create { .. })));
    }

    #[test]
    fn deterministic_in_seed() {
        let config = DesignTraceConfig::default();
        let a = DesignTrace::generate(&config);
        let b = DesignTrace::generate(&config);
        assert_eq!(a.ops, b.ops);
        let different = DesignTrace::generate(&DesignTraceConfig {
            seed: 999,
            ..config
        });
        assert_ne!(a.ops, different.ops);
    }

    #[test]
    fn alternative_ratio_controls_branching() {
        let linear = DesignTrace::generate(&DesignTraceConfig {
            alternative_ratio: 0.0,
            operations: 2000,
            ..DesignTraceConfig::default()
        });
        assert_eq!(linear.branches(), 0);

        let branchy = DesignTrace::generate(&DesignTraceConfig {
            alternative_ratio: 0.5,
            operations: 2000,
            ..DesignTraceConfig::default()
        });
        let ratio = branchy.branches() as f64 / branchy.derivations() as f64;
        assert!((0.3..0.7).contains(&ratio), "branch ratio {ratio}");
    }

    #[test]
    fn version_indices_are_always_valid() {
        let trace = DesignTrace::generate(&DesignTraceConfig {
            objects: 20,
            operations: 2000,
            alternative_ratio: 0.4,
            ..DesignTraceConfig::default()
        });
        // Replay with a simple counter model; every referenced version
        // index must already exist at that point.
        let mut versions = vec![0usize; 20];
        let mut next_obj = 0;
        for op in &trace.ops {
            match op {
                DesignOp::Create { .. } => {
                    versions[next_obj] = 1;
                    next_obj += 1;
                }
                DesignOp::Revise { obj } => versions[*obj] += 1,
                DesignOp::Branch { obj, version } => {
                    assert!(*version < versions[*obj], "branch target exists");
                    versions[*obj] += 1;
                }
                DesignOp::ReadVersion { obj, version } => {
                    assert!(*version < versions[*obj], "read target exists");
                }
                DesignOp::Edit { obj, .. } | DesignOp::ReadCurrent { obj } => {
                    assert!(versions[*obj] >= 1);
                }
            }
        }
        assert_eq!(versions, trace.versions_per_object);
    }
}
