//! Supporting distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Object-size classes seen in design databases: lots of small leaf
/// cells, some medium modules, a few large boards/netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// ~64 B payloads (leaf cells, attributes).
    Small,
    /// ~1 KiB payloads (modules).
    Medium,
    /// ~16 KiB payloads (netlists; exercises overflow pages).
    Large,
}

impl SizeClass {
    /// The nominal payload size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            SizeClass::Small => 64,
            SizeClass::Medium => 1024,
            SizeClass::Large => 16 * 1024,
        }
    }

    /// Sample a class with the 70/25/5 mix typical of part libraries.
    pub fn sample(rng: &mut StdRng) -> SizeClass {
        match rng.random_range(0..100u32) {
            0..70 => SizeClass::Small,
            70..95 => SizeClass::Medium,
            _ => SizeClass::Large,
        }
    }

    /// A deterministic payload of this class's size, parameterized so
    /// different objects get different (but reproducible) bytes.
    pub fn payload(self, salt: u64) -> Vec<u8> {
        let n = self.bytes();
        (0..n)
            .map(|i| (salt.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8)
            .collect()
    }
}

/// A Zipf(θ) sampler over `0..n` using the rejection-inversion-free
/// cumulative method (table-based; fine for the `n` ≤ 1e6 the benches
/// use).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// Build a sampler over `0..n` with skew `theta` (0 = uniform,
    /// ~0.99 = classic YCSB skew). Panics if `n == 0`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sample an index in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.random();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_have_expected_sizes() {
        assert_eq!(SizeClass::Small.bytes(), 64);
        assert_eq!(SizeClass::Medium.bytes(), 1024);
        assert_eq!(SizeClass::Large.bytes(), 16 * 1024);
        assert_eq!(SizeClass::Small.payload(1).len(), 64);
        // Payloads are deterministic in the salt.
        assert_eq!(SizeClass::Small.payload(7), SizeClass::Small.payload(7));
        assert_ne!(SizeClass::Small.payload(7), SizeClass::Small.payload(8));
    }

    #[test]
    fn size_mix_is_roughly_70_25_5() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            match SizeClass::sample(&mut rng) {
                SizeClass::Small => counts[0] += 1,
                SizeClass::Medium => counts[1] += 1,
                SizeClass::Large => counts[2] += 1,
            }
        }
        assert!((6500..7500).contains(&counts[0]), "{counts:?}");
        assert!((2000..3000).contains(&counts[1]), "{counts:?}");
        assert!((300..800).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut z = Zipf::new(1000, 0.99, 1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            let i = z.sample();
            assert!(i < 1000);
            counts[i] += 1;
        }
        // Head much hotter than tail.
        assert!(counts[0] > 20 * counts[500].max(1), "{}", counts[0]);
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let mut z = Zipf::new(10, 0.0, 2);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_deterministic_in_seed() {
        let a: Vec<usize> = {
            let mut z = Zipf::new(100, 0.9, 7);
            (0..50).map(|_| z.sample()).collect()
        };
        let b: Vec<usize> = {
            let mut z = Zipf::new(100, 0.9, 7);
            (0..50).map(|_| z.sample()).collect()
        };
        assert_eq!(a, b);
    }
}
