//! # ode-workloads — deterministic workload generators for the benches
//!
//! The paper's motivating domain is CAD design databases (and, for the
//! temporal features, historical databases).  This crate synthesizes
//! both workload families with seeded RNGs so every benchmark run sees
//! identical operation streams:
//!
//! * [`design`] — design-evolution traces: a population of objects
//!   receiving `newversion` operations that are *revisions* (derive from
//!   the tip) or *alternatives* (derive from a random earlier version)
//!   in a configurable ratio, with state edits in between;
//! * [`historical`] — address-book-style update streams where every
//!   change versions the object, and reads are split between "current"
//!   (generic) and "as-of" (specific) lookups;
//! * [`dist`] — supporting distributions: object-size classes and a
//!   Zipf sampler for skewed access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod dist;
pub mod historical;

pub use design::{DesignOp, DesignTrace, DesignTraceConfig};
pub use dist::{SizeClass, Zipf};
pub use historical::{HistoricalOp, HistoricalTrace, HistoricalTraceConfig};
