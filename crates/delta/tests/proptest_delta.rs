//! Property tests for the delta layer: `apply(base, diff(base, t)) == t`
//! for arbitrary inputs and block sizes, and chains reconstruct every
//! version of arbitrary evolutions.

use ode_delta::DeltaOp;
use ode_delta::{apply, diff, ForwardChain, ReverseChain};
use proptest::prelude::*;

/// The adversarial corner classes the byte merge leans on, stated
/// explicitly instead of left to random chance: empty base (pure
/// insertion), empty target (pure deletion), a target shorter than one
/// diff block (the block hasher never fires), base == target (pure
/// copy), and a near-identical pair (single flipped byte).
fn adversarial_pairs() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..600).prop_map(|t| (Vec::new(), t)),
        proptest::collection::vec(any::<u8>(), 0..600).prop_map(|b| (b, Vec::new())),
        (
            proptest::collection::vec(any::<u8>(), 0..2048),
            proptest::collection::vec(any::<u8>(), 0..ode_delta::DEFAULT_BLOCK),
        ),
        proptest::collection::vec(any::<u8>(), 0..1024).prop_map(|b| (b.clone(), b)),
        (
            proptest::collection::vec(any::<u8>(), 1..1024),
            any::<u16>()
        )
            .prop_map(|(b, pos)| {
                let mut t = b.clone();
                let i = pos as usize % t.len();
                t[i] ^= 0x5A;
                (b, t)
            }),
    ]
}

proptest! {
    #[test]
    fn adversarial_inputs_round_trip((base, target) in adversarial_pairs()) {
        // At the default block size and at the small one the merge
        // layer's refinement pass uses.
        let d = diff(&base, &target);
        prop_assert_eq!(apply(&base, &d).unwrap(), target.clone());
        let d4 = ode_delta::diff_with_block(&base, &target, 4);
        prop_assert_eq!(apply(&base, &d4).unwrap(), target);
    }

    /// `base == target` must cost nothing: one whole-buffer copy when
    /// there is at least a block to index, a single short literal below
    /// that.
    #[test]
    fn identical_inputs_are_pure_copy(b in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let d = diff(&b, &b);
        let expected_literals = if b.len() >= ode_delta::DEFAULT_BLOCK { 0 } else { b.len() };
        prop_assert_eq!(d.literal_bytes(), expected_literals);
        prop_assert_eq!(apply(&b, &d).unwrap(), b);
    }

    #[test]
    fn diff_apply_round_trip(base: Vec<u8>, target: Vec<u8>) {
        let d = diff(&base, &target);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    #[test]
    fn diff_apply_with_any_block(
        base in proptest::collection::vec(any::<u8>(), 0..2000),
        target in proptest::collection::vec(any::<u8>(), 0..2000),
        block in 4usize..512,
    ) {
        let d = ode_delta::diff_with_block(&base, &target, block);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    /// Related inputs (target derived from base by edits) must produce
    /// deltas whose literal bytes are bounded by the edit size plus
    /// block-boundary slop.
    #[test]
    fn related_inputs_dedupe(
        base in proptest::collection::vec(any::<u8>(), 500..3000),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut target = base.clone();
        for (pos, val) in &edits {
            let idx = *pos as usize % target.len();
            target[idx] = *val;
        }
        let d = diff(&base, &target);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
        // Each point edit can cost at most ~2 blocks of literals.
        prop_assert!(d.literal_bytes() <= edits.len() * 2 * ode_delta::DEFAULT_BLOCK + 64);
    }

    #[test]
    fn chains_reconstruct_arbitrary_evolutions(
        states in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600),
            1..10,
        )
    ) {
        let mut fwd = ForwardChain::new(states[0].clone());
        let mut rev = ReverseChain::new(states[0].clone());
        for s in &states[1..] {
            fwd.push(s).unwrap();
            rev.push(s);
        }
        for (i, s) in states.iter().enumerate() {
            prop_assert_eq!(&fwd.materialize(i).unwrap(), s);
            prop_assert_eq!(&rev.materialize(i).unwrap(), s);
        }
    }

    /// The applier must never panic on arbitrary (possibly corrupt)
    /// delta structures.
    #[test]
    fn apply_never_panics(
        base: Vec<u8>,
        target_len in 0u64..10_000,
        raw_ops in proptest::collection::vec(
            prop_oneof![
                (any::<u64>(), 0u64..10_000).prop_map(|(o, l)| (0u8, o, l, vec![])),
                proptest::collection::vec(any::<u8>(), 0..100).prop_map(|b| (1u8, 0, 0, b)),
            ],
            0..10,
        ),
    ) {
        let ops: Vec<DeltaOp> = raw_ops
            .into_iter()
            .map(|(kind, offset, len, bytes)| if kind == 0 {
                DeltaOp::Copy { offset, len }
            } else {
                DeltaOp::Insert(bytes)
            })
            .collect();
        let delta = ode_delta::Delta { target_len, ops };
        let _ = apply(&base, &delta); // may error, must not panic
    }
}
