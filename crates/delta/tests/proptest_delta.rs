//! Property tests for the delta layer: `apply(base, diff(base, t)) == t`
//! for arbitrary inputs and block sizes, and chains reconstruct every
//! version of arbitrary evolutions.

use ode_delta::DeltaOp;
use ode_delta::{apply, diff, ForwardChain, ReverseChain};
use proptest::prelude::*;

proptest! {
    #[test]
    fn diff_apply_round_trip(base: Vec<u8>, target: Vec<u8>) {
        let d = diff(&base, &target);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    #[test]
    fn diff_apply_with_any_block(
        base in proptest::collection::vec(any::<u8>(), 0..2000),
        target in proptest::collection::vec(any::<u8>(), 0..2000),
        block in 4usize..512,
    ) {
        let d = ode_delta::diff_with_block(&base, &target, block);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    /// Related inputs (target derived from base by edits) must produce
    /// deltas whose literal bytes are bounded by the edit size plus
    /// block-boundary slop.
    #[test]
    fn related_inputs_dedupe(
        base in proptest::collection::vec(any::<u8>(), 500..3000),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut target = base.clone();
        for (pos, val) in &edits {
            let idx = *pos as usize % target.len();
            target[idx] = *val;
        }
        let d = diff(&base, &target);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
        // Each point edit can cost at most ~2 blocks of literals.
        prop_assert!(d.literal_bytes() <= edits.len() * 2 * ode_delta::DEFAULT_BLOCK + 64);
    }

    #[test]
    fn chains_reconstruct_arbitrary_evolutions(
        states in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600),
            1..10,
        )
    ) {
        let mut fwd = ForwardChain::new(states[0].clone());
        let mut rev = ReverseChain::new(states[0].clone());
        for s in &states[1..] {
            fwd.push(s).unwrap();
            rev.push(s);
        }
        for (i, s) in states.iter().enumerate() {
            prop_assert_eq!(&fwd.materialize(i).unwrap(), s);
            prop_assert_eq!(&rev.materialize(i).unwrap(), s);
        }
    }

    /// The applier must never panic on arbitrary (possibly corrupt)
    /// delta structures.
    #[test]
    fn apply_never_panics(
        base: Vec<u8>,
        target_len in 0u64..10_000,
        raw_ops in proptest::collection::vec(
            prop_oneof![
                (any::<u64>(), 0u64..10_000).prop_map(|(o, l)| (0u8, o, l, vec![])),
                proptest::collection::vec(any::<u8>(), 0..100).prop_map(|b| (1u8, 0, 0, b)),
            ],
            0..10,
        ),
    ) {
        let ops: Vec<DeltaOp> = raw_ops
            .into_iter()
            .map(|(kind, offset, len, bytes)| if kind == 0 {
                DeltaOp::Copy { offset, len }
            } else {
                DeltaOp::Insert(bytes)
            })
            .collect();
        let delta = ode_delta::Delta { target_len, ops };
        let _ = apply(&base, &delta); // may error, must not panic
    }
}
