//! Anchored delta chains: bounded materialization cost.
//!
//! Pure forward/reverse chains make one end of the history expensive
//! proportionally to its length.  An [`AnchoredChain`] stores a full
//! snapshot (an *anchor*) every `interval` versions and forward deltas
//! in between, so materializing **any** version costs at most
//! `interval - 1` delta applications — the classic RCS-trick
//! generalized, and the knob the E7/ablation benches sweep.

use ode_codec::{impl_persist_struct, DecodeError, Persist, Reader, Writer};

use crate::diff::{apply, diff_with_block, ApplyError, Delta, DEFAULT_BLOCK};

/// One segment: an anchor snapshot plus forward deltas from it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    anchor: Vec<u8>,
    deltas: Vec<Delta>,
}
impl_persist_struct!(Segment { anchor, deltas });

/// A delta chain with periodic full snapshots.
#[derive(Debug, Clone)]
pub struct AnchoredChain {
    segments: Vec<Segment>,
    /// Versions per segment (anchor + interval-1 deltas).
    interval: u64,
    block: u64,
    /// Number of versions stored.
    len: u64,
    /// Runtime cache of the newest version's state so appends cost one
    /// diff instead of an intra-segment replay.  Not persisted; `None`
    /// after decode until the first append needs it.
    tail: Option<Vec<u8>>,
}

// Hand-written (not `impl_persist_struct!`): the `tail` cache must not
// hit the wire, and old encodings (segments, interval, block, len)
// must still decode byte-identically.
impl Persist for AnchoredChain {
    fn encode(&self, w: &mut Writer) {
        self.segments.encode(w);
        self.interval.encode(w);
        self.block.encode(w);
        self.len.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AnchoredChain {
            segments: Persist::decode(r)?,
            interval: Persist::decode(r)?,
            block: Persist::decode(r)?,
            len: Persist::decode(r)?,
            tail: None,
        })
    }
}

/// Equality is over the persisted content only — the `tail` cache is
/// derived state.
impl PartialEq for AnchoredChain {
    fn eq(&self, other: &AnchoredChain) -> bool {
        self.segments == other.segments
            && self.interval == other.interval
            && self.block == other.block
            && self.len == other.len
    }
}
impl Eq for AnchoredChain {}

impl AnchoredChain {
    /// Start a chain at `initial`, re-anchoring every `interval`
    /// versions (minimum 1 = every version is a snapshot).
    pub fn new(initial: Vec<u8>, interval: usize) -> AnchoredChain {
        let interval = interval.max(1);
        AnchoredChain {
            tail: Some(initial.clone()),
            segments: vec![Segment {
                anchor: initial,
                deltas: Vec::new(),
            }],
            interval: interval as u64,
            block: DEFAULT_BLOCK as u64,
            len: 1,
        }
    }

    /// Number of versions stored.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: a chain holds at least its first anchor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The re-anchoring interval.
    pub fn interval(&self) -> usize {
        self.interval as usize
    }

    /// Append a new version state.  One diff per call when the tail
    /// cache is warm (always, except for the first append after a
    /// decode, which replays at most `interval - 1` deltas).
    pub fn push(&mut self, state: &[u8]) -> Result<(), ApplyError> {
        let last = self.segments.last().expect("at least one segment");
        if last.deltas.len() + 1 >= self.interval as usize {
            // Start a new segment with a full snapshot.
            self.segments.push(Segment {
                anchor: state.to_vec(),
                deltas: Vec::new(),
            });
        } else {
            let prev = match self.tail.take() {
                Some(tail) => tail,
                None => self.materialize(self.len() - 1)?,
            };
            let delta = diff_with_block(&prev, state, self.block as usize);
            self.segments
                .last_mut()
                .expect("at least one segment")
                .deltas
                .push(delta);
        }
        self.tail = Some(state.to_vec());
        self.len += 1;
        Ok(())
    }

    /// Reconstruct version `index` (0 = oldest). Costs at most
    /// `interval - 1` delta applications.
    pub fn materialize(&self, index: usize) -> Result<Vec<u8>, ApplyError> {
        assert!(index < self.len(), "version index out of range");
        let seg_idx = index / self.interval as usize;
        let offset = index % self.interval as usize;
        let segment = &self.segments[seg_idx];
        let mut state = segment.anchor.clone();
        for d in &segment.deltas[..offset] {
            state = apply(&state, d)?;
        }
        Ok(state)
    }

    /// Reconstruct the newest version. Free when the tail cache is
    /// warm.
    pub fn latest(&self) -> Result<Vec<u8>, ApplyError> {
        match &self.tail {
            Some(tail) => Ok(tail.clone()),
            None => self.materialize(self.len() - 1),
        }
    }

    /// Total encoded bytes.
    pub fn encoded_size(&self) -> usize {
        ode_codec::to_bytes(self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evolution(n: usize, size: usize) -> Vec<Vec<u8>> {
        let mut state: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut out = vec![state.clone()];
        for step in 1..n {
            let idx = (step * 131) % size;
            state[idx] = state[idx].wrapping_add(1);
            out.push(state.clone());
        }
        out
    }

    #[test]
    fn materializes_every_version_at_every_interval() {
        let versions = evolution(23, 1500);
        for interval in [1usize, 2, 4, 7, 100] {
            let mut chain = AnchoredChain::new(versions[0].clone(), interval);
            for v in &versions[1..] {
                chain.push(v).unwrap();
            }
            assert_eq!(chain.len(), versions.len());
            for (i, v) in versions.iter().enumerate() {
                assert_eq!(
                    &chain.materialize(i).unwrap(),
                    v,
                    "interval {interval} version {i}"
                );
            }
        }
    }

    #[test]
    fn interval_one_is_all_snapshots() {
        let versions = evolution(5, 300);
        let mut chain = AnchoredChain::new(versions[0].clone(), 1);
        for v in &versions[1..] {
            chain.push(v).unwrap();
        }
        // Five segments, no deltas anywhere.
        assert_eq!(chain.segments.len(), 5);
        assert!(chain.segments.iter().all(|s| s.deltas.is_empty()));
    }

    #[test]
    fn push_after_decode_rebuilds_tail() {
        let versions = evolution(11, 600);
        let mut chain = AnchoredChain::new(versions[0].clone(), 4);
        for v in &versions[1..6] {
            chain.push(v).unwrap();
        }
        let mut back: AnchoredChain = ode_codec::from_bytes(&ode_codec::to_bytes(&chain)).unwrap();
        for v in &versions[6..] {
            back.push(v).unwrap();
        }
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&back.materialize(i).unwrap(), v, "version {i}");
        }
        assert_eq!(back.latest().unwrap(), versions[10]);
    }

    #[test]
    fn space_sits_between_full_and_pure_delta() {
        let versions = evolution(32, 4000);
        let mut pure = crate::ForwardChain::new(versions[0].clone());
        let mut anchored = AnchoredChain::new(versions[0].clone(), 8);
        for v in &versions[1..] {
            pure.push(v).unwrap();
            anchored.push(v).unwrap();
        }
        let full = crate::full_copy_size(&versions);
        assert!(anchored.encoded_size() > pure.encoded_size());
        assert!(anchored.encoded_size() < full);
    }

    #[test]
    fn round_trips_codec() {
        let versions = evolution(10, 400);
        let mut chain = AnchoredChain::new(versions[0].clone(), 4);
        for v in &versions[1..] {
            chain.push(v).unwrap();
        }
        let back: AnchoredChain = ode_codec::from_bytes(&ode_codec::to_bytes(&chain)).unwrap();
        assert_eq!(back, chain);
        assert_eq!(back.latest().unwrap(), versions[9]);
    }
}
