//! Binary diff: block-hash matching with greedy extension.
//!
//! The base is indexed in fixed-size blocks by hash; the target is
//! scanned left to right, and whenever the next block of target bytes
//! matches a base block the match is extended greedily in both
//! directions.  Unmatched bytes become inserts.  This is the same
//! family of algorithm as rsync's delta encoding — O(n) in practice,
//! and effective on the "small change to a large object" workloads the
//! paper's CAD setting implies.

use std::collections::HashMap;
use std::fmt;

use ode_codec::{impl_persist_enum, impl_persist_struct};

/// Default block size for base indexing.
pub const DEFAULT_BLOCK: usize = 32;

/// One instruction of a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from `offset` in the base.
    Copy {
        /// Byte offset into the base.
        offset: u64,
        /// Number of bytes to copy.
        len: u64,
    },
    /// Emit literal bytes.
    Insert(Vec<u8>),
}

impl_persist_enum!(DeltaOp {
    Copy { offset, len },
    Insert(bytes),
});

/// A delta transforming one byte string into another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Length of the target the delta reconstructs (integrity check).
    pub target_len: u64,
    /// The instruction stream.
    pub ops: Vec<DeltaOp>,
}

impl_persist_struct!(Delta { target_len, ops });

impl Delta {
    /// Approximate stored size in bytes (codec-encoded length).
    pub fn encoded_size(&self) -> usize {
        ode_codec::to_bytes(self).len()
    }

    /// Total bytes of literal (insert) data — the part that does not
    /// dedupe against the base.
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert(b) => b.len(),
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }
}

/// Error applying a delta to a base it was not produced from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A copy op referenced past the end of the base.
    CopyOutOfRange {
        /// Offset requested.
        offset: u64,
        /// Length requested.
        len: u64,
        /// Base length available.
        base_len: usize,
    },
    /// The reconstructed length disagreed with `target_len`.
    LengthMismatch {
        /// Declared target length.
        expected: u64,
        /// Actually produced length.
        produced: usize,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::CopyOutOfRange {
                offset,
                len,
                base_len,
            } => write!(
                f,
                "copy [{offset}, +{len}) out of range for base of {base_len} bytes"
            ),
            ApplyError::LengthMismatch { expected, produced } => {
                write!(f, "delta produced {produced} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

fn block_hash(block: &[u8]) -> u64 {
    // FNV-1a over the block.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in block {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Compute a delta that rewrites `base` into `target`, using `block`-byte
/// granularity for match discovery (see [`DEFAULT_BLOCK`]).
pub fn diff_with_block(base: &[u8], target: &[u8], block: usize) -> Delta {
    let block = block.max(4);
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut pending: Vec<u8> = Vec::new();

    // Index base blocks by hash (last occurrence wins; collisions are
    // verified byte-wise below).
    let mut index: HashMap<u64, usize> = HashMap::new();
    if base.len() >= block {
        for start in (0..=base.len() - block).step_by(block) {
            index.insert(block_hash(&base[start..start + block]), start);
        }
    }

    let flush = |pending: &mut Vec<u8>, ops: &mut Vec<DeltaOp>| {
        if !pending.is_empty() {
            ops.push(DeltaOp::Insert(std::mem::take(pending)));
        }
    };

    let mut pos = 0usize;
    while pos < target.len() {
        if pos + block <= target.len() {
            let h = block_hash(&target[pos..pos + block]);
            if let Some(&base_start) = index.get(&h) {
                if base[base_start..base_start + block] == target[pos..pos + block] {
                    // Extend the match forward.
                    let mut len = block;
                    while base_start + len < base.len()
                        && pos + len < target.len()
                        && base[base_start + len] == target[pos + len]
                    {
                        len += 1;
                    }
                    // Extend backward into pending literals.
                    let mut back = 0usize;
                    while back < pending.len()
                        && back < base_start
                        && base[base_start - back - 1] == pending[pending.len() - back - 1]
                    {
                        back += 1;
                    }
                    pending.truncate(pending.len() - back);
                    flush(&mut pending, &mut ops);
                    let offset = (base_start - back) as u64;
                    let total = (len + back) as u64;
                    // Merge with a preceding contiguous copy.
                    if let Some(DeltaOp::Copy {
                        offset: po,
                        len: pl,
                    }) = ops.last_mut()
                    {
                        if *po + *pl == offset {
                            *pl += total;
                            pos += len;
                            continue;
                        }
                    }
                    ops.push(DeltaOp::Copy { offset, len: total });
                    pos += len;
                    continue;
                }
            }
        }
        pending.push(target[pos]);
        pos += 1;
    }
    flush(&mut pending, &mut ops);

    Delta {
        target_len: target.len() as u64,
        ops,
    }
}

/// Compute a delta with the default block size.
pub fn diff(base: &[u8], target: &[u8]) -> Delta {
    diff_with_block(base, target, DEFAULT_BLOCK)
}

/// Apply a delta to its base, reconstructing the target.
pub fn apply(base: &[u8], delta: &Delta) -> Result<Vec<u8>, ApplyError> {
    let mut out = Vec::with_capacity(delta.target_len as usize);
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                let end = offset.checked_add(*len);
                match end {
                    Some(end) if end <= base.len() as u64 => {
                        out.extend_from_slice(&base[*offset as usize..end as usize]);
                    }
                    _ => {
                        return Err(ApplyError::CopyOutOfRange {
                            offset: *offset,
                            len: *len,
                            base_len: base.len(),
                        })
                    }
                }
            }
            DeltaOp::Insert(bytes) => out.extend_from_slice(bytes),
        }
    }
    if out.len() as u64 != delta.target_len {
        return Err(ApplyError::LengthMismatch {
            expected: delta.target_len,
            produced: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(base: &[u8], target: &[u8]) -> Delta {
        let d = diff(base, target);
        assert_eq!(apply(base, &d).unwrap(), target, "round trip");
        d
    }

    #[test]
    fn identical_inputs_are_one_copy() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let d = rt(&data, &data);
        assert_eq!(d.ops.len(), 1);
        assert!(matches!(
            d.ops[0],
            DeltaOp::Copy {
                offset: 0,
                len: 1000
            }
        ));
        assert_eq!(d.literal_bytes(), 0);
    }

    #[test]
    fn small_edit_in_large_object_is_small_delta() {
        let base: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let mut target = base.clone();
        target[5000] ^= 0xFF; // one byte changed
        let d = rt(&base, &target);
        assert!(
            d.encoded_size() < base.len() / 10,
            "delta {} vs base {}",
            d.encoded_size(),
            base.len()
        );
        assert!(d.literal_bytes() <= 2 * DEFAULT_BLOCK);
    }

    #[test]
    fn insertion_and_deletion() {
        let base =
            b"the quick brown fox jumps over the lazy dog, repeatedly and verbosely".to_vec();
        let mut target = base.clone();
        target.splice(10..10, b"extremely ".iter().copied());
        rt(&base, &target);
        let mut target2 = base.clone();
        target2.drain(4..15);
        rt(&base, &target2);
    }

    #[test]
    fn disjoint_inputs_are_pure_insert() {
        let base = vec![0u8; 500];
        let target: Vec<u8> = (0..500).map(|i| (i % 250 + 1) as u8).collect();
        let d = rt(&base, &target);
        assert_eq!(d.literal_bytes(), 500);
    }

    #[test]
    fn empty_edge_cases() {
        rt(b"", b"");
        rt(b"", b"nonempty");
        rt(b"nonempty", b"");
        rt(b"short", b"sh");
    }

    #[test]
    fn reordered_blocks_still_copy() {
        let a: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..500).map(|i| ((i * 7) % 251) as u8).collect();
        let mut base = a.clone();
        base.extend_from_slice(&b);
        let mut target = b;
        target.extend_from_slice(&a);
        let d = rt(&base, &target);
        // Both halves should be found as copies.
        assert!(d.literal_bytes() < 100, "literals: {}", d.literal_bytes());
    }

    #[test]
    fn corrupt_delta_rejected() {
        let d = Delta {
            target_len: 4,
            ops: vec![DeltaOp::Copy { offset: 10, len: 4 }],
        };
        assert!(matches!(
            apply(b"short", &d),
            Err(ApplyError::CopyOutOfRange { .. })
        ));
        let d2 = Delta {
            target_len: 99,
            ops: vec![DeltaOp::Insert(vec![1, 2, 3])],
        };
        assert!(matches!(
            apply(b"", &d2),
            Err(ApplyError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn copy_overflow_guarded() {
        let d = Delta {
            target_len: 1,
            ops: vec![DeltaOp::Copy {
                offset: u64::MAX,
                len: 2,
            }],
        };
        assert!(matches!(
            apply(b"xy", &d),
            Err(ApplyError::CopyOutOfRange { .. })
        ));
    }

    #[test]
    fn delta_round_trips_codec() {
        let base: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let mut target = base.clone();
        target.extend_from_slice(&base);
        target[7] = 99;
        let d = diff(&base, &target);
        let bytes = ode_codec::to_bytes(&d);
        let back: Delta = ode_codec::from_bytes(&bytes).unwrap();
        assert_eq!(d, back);
        assert_eq!(apply(&base, &back).unwrap(), target);
    }

    #[test]
    fn block_size_trade_off() {
        let base: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let mut target = base.clone();
        target[100] ^= 1;
        target[3000] ^= 1;
        let fine = diff_with_block(&base, &target, 8);
        let coarse = diff_with_block(&base, &target, 256);
        assert_eq!(apply(&base, &fine).unwrap(), target);
        assert_eq!(apply(&base, &coarse).unwrap(), target);
        // Finer blocks find tighter matches around point edits.
        assert!(fine.literal_bytes() <= coarse.literal_bytes());
    }
}
