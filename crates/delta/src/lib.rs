//! # ode-delta — delta storage for version chains
//!
//! The paper (§2) observes that "the derived-from relationship can be
//! used to store versions by storing their 'differences' (called deltas)"
//! citing SCCS and RCS.  Ode itself stores full copies; this crate
//! implements the delta alternative so the trade-off can be measured
//! (experiment E7 in DESIGN.md):
//!
//! * [`diff`]/[`apply`] — a block-hash binary diff over encoded object
//!   bodies (content-defined copy/insert operations);
//! * [`chain::ForwardChain`] — SCCS-style: the oldest version is stored
//!   whole and each newer version is a delta from its predecessor, so
//!   *old* versions are cheap and the latest costs a whole-chain replay;
//! * [`chain::ReverseChain`] — RCS-style: the *latest* version is stored
//!   whole and deltas run backwards, matching Ode's access pattern where
//!   the object id resolves to the latest version.
//!
//! Everything here is deterministic and storage-agnostic: chains are
//! `Persist` values that the version layer can put in any heap record.
//!
//! ```
//! use ode_delta::{diff, apply, ReverseChain};
//!
//! // Point diff/apply:
//! let base   = b"the quick brown fox jumps over the lazy dog".repeat(40);
//! let mut edited = base.clone();
//! edited[10] = b'Q';
//! let d = diff(&base, &edited);
//! assert_eq!(apply(&base, &d).unwrap(), edited);
//! assert!(d.encoded_size() < base.len() / 4);
//!
//! // RCS-style chain: latest is whole (Ode's hot path), older versions
//! // reconstruct through reverse deltas.
//! let mut chain = ReverseChain::new(base.clone());
//! chain.push(&edited);
//! assert_eq!(chain.latest(), &edited[..]);
//! assert_eq!(chain.materialize(0).unwrap(), base);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchored;
pub mod chain;
mod diff;

pub use anchored::AnchoredChain;
pub use chain::full_copy_size;
pub use chain::{ForwardChain, ReverseChain};
pub use diff::{apply, diff, diff_with_block, ApplyError, Delta, DeltaOp, DEFAULT_BLOCK};
