//! Delta chains: SCCS-style forward and RCS-style reverse storage of a
//! linear version sequence.
//!
//! Both store a linear sequence of version states `s₀, s₁, …, sₙ`.  The
//! difference is which end is whole:
//!
//! * [`ForwardChain`] stores `s₀` whole plus deltas `s₀→s₁, s₁→s₂, …`;
//!   reading `sᵢ` replays `i` deltas — reading the **latest** is the
//!   most expensive.
//! * [`ReverseChain`] stores `sₙ` whole plus deltas `sₙ→sₙ₋₁, …`;
//!   reading the **latest** is free, which matches Ode's object-id
//!   semantics (generic references resolve to the latest version).

use ode_codec::{DecodeError, Persist, Reader, Writer};

use crate::diff::{apply, diff_with_block, ApplyError, Delta, DEFAULT_BLOCK};

/// SCCS-style chain: oldest version whole, deltas run forward.
#[derive(Debug, Clone)]
pub struct ForwardChain {
    /// The first version's full state.
    base: Vec<u8>,
    /// `deltas[i]` transforms version `i` into version `i + 1`.
    deltas: Vec<Delta>,
    /// Block size used for diffing.
    block: u64,
    /// Runtime cache of the newest version's state, so N appends cost
    /// N diffs instead of replaying the whole chain per append.  Not
    /// persisted; `None` after decode until the first append needs it.
    tail: Option<Vec<u8>>,
}

// Hand-written (not `impl_persist_struct!`): the `tail` cache must not
// hit the wire, and old encodings (base, deltas, block) must still
// decode byte-identically.
impl Persist for ForwardChain {
    fn encode(&self, w: &mut Writer) {
        self.base.encode(w);
        self.deltas.encode(w);
        self.block.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ForwardChain {
            base: Persist::decode(r)?,
            deltas: Persist::decode(r)?,
            block: Persist::decode(r)?,
            tail: None,
        })
    }
}

/// Equality is over the persisted content only — the `tail` cache is
/// derived state.
impl PartialEq for ForwardChain {
    fn eq(&self, other: &ForwardChain) -> bool {
        self.base == other.base && self.deltas == other.deltas && self.block == other.block
    }
}
impl Eq for ForwardChain {}

impl ForwardChain {
    /// Start a chain at `initial` state.
    pub fn new(initial: Vec<u8>) -> ForwardChain {
        ForwardChain {
            tail: Some(initial.clone()),
            base: initial,
            deltas: Vec::new(),
            block: DEFAULT_BLOCK as u64,
        }
    }

    /// Start a chain with a custom diff block size.
    pub fn with_block(initial: Vec<u8>, block: usize) -> ForwardChain {
        ForwardChain {
            tail: Some(initial.clone()),
            base: initial,
            deltas: Vec::new(),
            block: block as u64,
        }
    }

    /// Number of versions stored.
    pub fn len(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Always false: a chain holds at least its base version.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Append a new version state.  Amortized one diff per call: the
    /// tail state is cached across appends (a freshly-decoded chain
    /// pays one full replay on its first append, then stays O(1)).
    pub fn push(&mut self, state: &[u8]) -> Result<(), ApplyError> {
        let prev = match self.tail.take() {
            Some(tail) => tail,
            None => self.materialize(self.len() - 1)?,
        };
        self.deltas
            .push(diff_with_block(&prev, state, self.block as usize));
        self.tail = Some(state.to_vec());
        Ok(())
    }

    /// Reconstruct version `index` (0 = oldest). Costs `index` delta
    /// applications.
    pub fn materialize(&self, index: usize) -> Result<Vec<u8>, ApplyError> {
        assert!(index < self.len(), "version index out of range");
        let mut state = self.base.clone();
        for d in &self.deltas[..index] {
            state = apply(&state, d)?;
        }
        Ok(state)
    }

    /// Reconstruct the newest version. Free when the tail cache is
    /// warm; a full-chain replay otherwise.
    pub fn latest(&self) -> Result<Vec<u8>, ApplyError> {
        match &self.tail {
            Some(tail) => Ok(tail.clone()),
            None => self.materialize(self.len() - 1),
        }
    }

    /// Total encoded bytes (space accounting for experiment E7).
    pub fn encoded_size(&self) -> usize {
        ode_codec::to_bytes(self).len()
    }
}

/// RCS-style chain: newest version whole, deltas run backward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseChain {
    /// The newest version's full state.
    head: Vec<u8>,
    /// `deltas[i]` transforms version `i + 1` into version `i`: the
    /// delta for the newest step sits at the **end**, so an append is a
    /// plain push instead of an O(n) front insert.
    deltas: Vec<Delta>,
    /// Block size used for diffing.
    block: u64,
}

// Hand-written for field privacy only; layout matches
// `impl_persist_struct!(ReverseChain { head, deltas, block })`.
impl Persist for ReverseChain {
    fn encode(&self, w: &mut Writer) {
        self.head.encode(w);
        self.deltas.encode(w);
        self.block.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ReverseChain {
            head: Persist::decode(r)?,
            deltas: Persist::decode(r)?,
            block: Persist::decode(r)?,
        })
    }
}

impl ReverseChain {
    /// Start a chain at `initial` state.
    pub fn new(initial: Vec<u8>) -> ReverseChain {
        ReverseChain {
            head: initial,
            deltas: Vec::new(),
            block: DEFAULT_BLOCK as u64,
        }
    }

    /// Start a chain with a custom diff block size.
    pub fn with_block(initial: Vec<u8>, block: usize) -> ReverseChain {
        ReverseChain {
            head: initial,
            deltas: Vec::new(),
            block: block as u64,
        }
    }

    /// Number of versions stored.
    pub fn len(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Always false: a chain holds at least its head version.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Append a new version state: the new state becomes the whole head
    /// and a *reverse* delta (new → old) is appended — O(1) amortized,
    /// no element shifting.
    pub fn push(&mut self, state: &[u8]) {
        let reverse = diff_with_block(state, &self.head, self.block as usize);
        self.deltas.push(reverse);
        self.head = state.to_vec();
    }

    /// Reconstruct version `index` (0 = oldest, `len() - 1` = newest).
    /// Costs `len() - 1 - index` delta applications.
    pub fn materialize(&self, index: usize) -> Result<Vec<u8>, ApplyError> {
        assert!(index < self.len(), "version index out of range");
        let mut state = self.head.clone();
        for d in self.deltas[index..].iter().rev() {
            state = apply(&state, d)?;
        }
        Ok(state)
    }

    /// The newest version — free (it is stored whole).
    pub fn latest(&self) -> &[u8] {
        &self.head
    }

    /// Replace the newest version's state **in place** (no new version).
    ///
    /// The last reverse delta reconstructs the previous version *from
    /// the head*, so it must be recomputed against the new head — a
    /// subtlety unique to reverse-delta storage (forward chains never
    /// re-anchor on update).
    pub fn set_head(&mut self, state: &[u8]) -> Result<(), ApplyError> {
        if !self.deltas.is_empty() {
            let prev = self.materialize(self.len() - 2)?;
            let last = self.deltas.len() - 1;
            self.deltas[last] = diff_with_block(state, &prev, self.block as usize);
        }
        self.head = state.to_vec();
        Ok(())
    }

    /// Total encoded bytes.
    pub fn encoded_size(&self) -> usize {
        ode_codec::to_bytes(self).len()
    }
}

/// Space used by storing every version whole (the full-copy baseline the
/// chains are compared against).
pub fn full_copy_size(versions: &[Vec<u8>]) -> usize {
    versions.iter().map(|v| ode_codec::to_bytes(v).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic evolution: each version perturbs a few bytes of a
    /// sizeable object, like successive CAD edits.
    fn evolution(n: usize, size: usize) -> Vec<Vec<u8>> {
        let mut versions = Vec::with_capacity(n);
        let mut state: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        versions.push(state.clone());
        for step in 1..n {
            let idx = (step * 97) % size;
            state[idx] = state[idx].wrapping_add(step as u8);
            // Occasionally grow.
            if step % 4 == 0 {
                state.extend_from_slice(&[step as u8; 16]);
            }
            versions.push(state.clone());
        }
        versions
    }

    #[test]
    fn forward_chain_materializes_every_version() {
        let versions = evolution(12, 2000);
        let mut chain = ForwardChain::new(versions[0].clone());
        for v in &versions[1..] {
            chain.push(v).unwrap();
        }
        assert_eq!(chain.len(), 12);
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&chain.materialize(i).unwrap(), v, "version {i}");
        }
        assert_eq!(chain.latest().unwrap(), versions[11]);
    }

    #[test]
    fn forward_chain_push_after_decode_rebuilds_tail() {
        let versions = evolution(6, 800);
        let mut chain = ForwardChain::new(versions[0].clone());
        for v in &versions[1..4] {
            chain.push(v).unwrap();
        }
        // Decode drops the tail cache; the next push must still diff
        // against the true previous state.
        let mut back: ForwardChain = ode_codec::from_bytes(&ode_codec::to_bytes(&chain)).unwrap();
        for v in &versions[4..] {
            back.push(v).unwrap();
        }
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&back.materialize(i).unwrap(), v, "version {i}");
        }
        assert_eq!(back.latest().unwrap(), versions[5]);
    }

    #[test]
    fn reverse_chain_materializes_every_version() {
        let versions = evolution(12, 2000);
        let mut chain = ReverseChain::new(versions[0].clone());
        for v in &versions[1..] {
            chain.push(v);
        }
        assert_eq!(chain.len(), 12);
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&chain.materialize(i).unwrap(), v, "version {i}");
        }
        assert_eq!(chain.latest(), &versions[11][..]);
    }

    #[test]
    fn chains_beat_full_copies_on_space() {
        let versions = evolution(20, 4000);
        let mut fwd = ForwardChain::new(versions[0].clone());
        let mut rev = ReverseChain::new(versions[0].clone());
        for v in &versions[1..] {
            fwd.push(v).unwrap();
            rev.push(v);
        }
        let full = full_copy_size(&versions);
        assert!(
            fwd.encoded_size() < full / 4,
            "forward {} vs full {}",
            fwd.encoded_size(),
            full
        );
        assert!(
            rev.encoded_size() < full / 4,
            "reverse {} vs full {}",
            rev.encoded_size(),
            full
        );
    }

    #[test]
    fn set_head_preserves_older_versions() {
        let versions = evolution(6, 1000);
        let mut chain = ReverseChain::new(versions[0].clone());
        for v in &versions[1..] {
            chain.push(v);
        }
        // Overwrite the newest state in place.
        let mut edited = versions[5].clone();
        edited[10] ^= 0xFF;
        edited.extend_from_slice(b"suffix");
        chain.set_head(&edited).unwrap();
        assert_eq!(chain.latest(), &edited[..]);
        // Every older version still reconstructs exactly.
        for (i, v) in versions.iter().enumerate().take(5) {
            assert_eq!(&chain.materialize(i).unwrap(), v, "version {i}");
        }
        // In-place update on a single-version chain works too.
        let mut solo = ReverseChain::new(b"one".to_vec());
        solo.set_head(b"two").unwrap();
        assert_eq!(solo.latest(), b"two");
    }

    #[test]
    fn single_version_chains() {
        let chain = ForwardChain::new(b"solo".to_vec());
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.latest().unwrap(), b"solo");
        let chain = ReverseChain::new(b"solo".to_vec());
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.materialize(0).unwrap(), b"solo");
    }

    #[test]
    fn chains_round_trip_codec() {
        let versions = evolution(5, 500);
        let mut fwd = ForwardChain::new(versions[0].clone());
        let mut rev = ReverseChain::new(versions[0].clone());
        for v in &versions[1..] {
            fwd.push(v).unwrap();
            rev.push(v);
        }
        let back: ForwardChain = ode_codec::from_bytes(&ode_codec::to_bytes(&fwd)).unwrap();
        assert_eq!(back, fwd);
        assert_eq!(back.latest().unwrap(), versions[4]);
        let back: ReverseChain = ode_codec::from_bytes(&ode_codec::to_bytes(&rev)).unwrap();
        assert_eq!(back, rev);
        assert_eq!(back.materialize(0).unwrap(), versions[0]);
    }
}
