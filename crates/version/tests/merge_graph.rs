//! Two-parent (merge) versions: DAG edges in the derived-from
//! structure, ancestor walks, LCA, and delete-splices around them.

use ode_codec::TypeTag;
use ode_storage::{Store, StoreOptions};
use ode_version::{ChainConfig, VersionError, VersionStore, VersionStoreLayout, Vid};

const TAG: TypeTag = TypeTag::from_name("test/Doc");

fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-vmerge-{name}-{}", std::process::id()));
    cleanup(&p);
    let store = Store::create(&p, StoreOptions::default()).unwrap();
    (p, store)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn plain() -> VersionStore {
    VersionStore::new(VersionStoreLayout::default())
}

fn chained(interval: u64) -> VersionStore {
    VersionStore::with_chain(
        VersionStoreLayout::default(),
        ChainConfig::with_interval(interval),
    )
}

/// base → fork a, fork b (both derived from base), then merge(a, b).
fn fork_and_merge(
    vs: &VersionStore,
    tx: &mut ode_storage::Tx<'_>,
) -> (ode_version::Oid, Vid, Vid, Vid, Vid) {
    let (oid, base) = vs.create_object(tx, TAG, b"base".to_vec()).unwrap();
    let a = vs.new_version_from(tx, base).unwrap();
    vs.write_body(tx, a, TAG, b"side-a".to_vec()).unwrap();
    let b = vs.new_version_from(tx, base).unwrap();
    vs.write_body(tx, b, TAG, b"side-b".to_vec()).unwrap();
    let m = vs.new_merge_version(tx, a, b, b"merged".to_vec()).unwrap();
    (oid, base, a, b, m)
}

#[test]
fn merge_version_records_both_parents() {
    for vs in [plain(), chained(4)] {
        let (path, store) = temp_store("both-parents");
        let mut tx = store.begin();
        let (oid, base, a, b, m) = fork_and_merge(&vs, &mut tx);

        let meta = vs.version_meta(&mut tx, m).unwrap();
        assert!(meta.is_merge());
        assert_eq!(meta.dprev, a);
        assert_eq!(meta.dprev2, b);
        assert_eq!(meta.parents().collect::<Vec<_>>(), vec![a, b]);
        // Both parents list the merge child.
        assert!(vs.dnext(&mut tx, a).unwrap().contains(&m));
        assert!(vs.dnext(&mut tx, b).unwrap().contains(&m));
        // The merge is the new latest and reads back whole.
        assert_eq!(vs.latest(&mut tx, oid).unwrap(), m);
        assert_eq!(vs.read_body(&mut tx, m, TAG).unwrap(), b"merged");
        // Historical states still materialize byte-identically.
        assert_eq!(vs.read_body(&mut tx, base, TAG).unwrap(), b"base");
        assert_eq!(vs.read_body(&mut tx, a, TAG).unwrap(), b"side-a");
        assert_eq!(vs.read_body(&mut tx, b, TAG).unwrap(), b"side-b");
        vs.check_object(&mut tx, oid).unwrap();
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}

#[test]
fn merge_rejects_mismatched_inputs() {
    let (path, store) = temp_store("mismatch");
    let vs = plain();
    let mut tx = store.begin();
    let (_, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    let (_, w0) = vs.create_object(&mut tx, TAG, b"y".to_vec()).unwrap();
    assert!(matches!(
        vs.new_merge_version(&mut tx, v0, v0, vec![]),
        Err(VersionError::MergeMismatch { .. })
    ));
    assert!(matches!(
        vs.new_merge_version(&mut tx, v0, w0, vec![]),
        Err(VersionError::MergeMismatch { .. })
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn ancestors_follow_both_parents_in_descending_order() {
    let (path, store) = temp_store("ancestors");
    let vs = plain();
    let mut tx = store.begin();
    let (_, base, a, b, m) = fork_and_merge(&vs, &mut tx);

    // Linear ancestry of a fork tip.
    assert_eq!(vs.ancestors(&mut tx, a).unwrap(), vec![a, base]);
    // The merge reaches both sides; order is strictly descending vid.
    let anc = vs.ancestors(&mut tx, m).unwrap();
    assert_eq!(anc, vec![m, b, a, base]);
    assert!(anc.windows(2).all(|w| w[0] > w[1]));
    // Unknown vid errors rather than returning an empty walk.
    assert!(matches!(
        vs.ancestors(&mut tx, Vid(9999)),
        Err(VersionError::UnknownVersion(_))
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn common_ancestor_finds_the_fork_point() {
    let (path, store) = temp_store("lca");
    let vs = plain();
    let mut tx = store.begin();
    let (_, base, a, b, m) = fork_and_merge(&vs, &mut tx);

    assert_eq!(vs.common_ancestor(&mut tx, a, b).unwrap(), Some(base));
    assert_eq!(vs.common_ancestor(&mut tx, b, a).unwrap(), Some(base));
    // An ancestor of the other input is itself the LCA.
    assert_eq!(vs.common_ancestor(&mut tx, base, a).unwrap(), Some(base));
    assert_eq!(vs.common_ancestor(&mut tx, a, a).unwrap(), Some(a));
    // The merge contains both sides, so LCA(m, side) is the side.
    assert_eq!(vs.common_ancestor(&mut tx, m, a).unwrap(), Some(a));
    assert_eq!(vs.common_ancestor(&mut tx, m, b).unwrap(), Some(b));

    // After forking off the merge, two new tips meet at the merge.
    let c = vs.new_version_from(&mut tx, m).unwrap();
    let d = vs.new_version_from(&mut tx, m).unwrap();
    assert_eq!(vs.common_ancestor(&mut tx, c, d).unwrap(), Some(m));

    // Versions of different objects share nothing.
    let (_, w0) = vs.create_object(&mut tx, TAG, b"w".to_vec()).unwrap();
    assert_eq!(vs.common_ancestor(&mut tx, a, w0).unwrap(), None);
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn deleting_a_merge_parent_repoints_the_surviving_slot() {
    for vs in [plain(), chained(4)] {
        let (path, store) = temp_store("del-parent");
        let mut tx = store.begin();
        let (oid, base, a, b, m) = fork_and_merge(&vs, &mut tx);

        // Delete side a: the merge's primary slot re-points to a's own
        // parent (the fork base), which b's slot does not duplicate.
        vs.delete_version(&mut tx, a).unwrap();
        let meta = vs.version_meta(&mut tx, m).unwrap();
        assert_eq!(meta.dprev, base);
        assert_eq!(meta.dprev2, b);
        assert!(vs.dnext(&mut tx, base).unwrap().contains(&m));
        vs.check_object(&mut tx, oid).unwrap();

        // Delete side b too: now both slots would point at base — the
        // duplicate collapses and the merge degrades to a single-parent
        // version.
        vs.delete_version(&mut tx, b).unwrap();
        let meta = vs.version_meta(&mut tx, m).unwrap();
        assert_eq!(meta.dprev, base);
        assert!(meta.dprev2.is_null());
        assert!(!meta.is_merge());
        // base lists m exactly once.
        let children = vs.dnext(&mut tx, base).unwrap();
        assert_eq!(children.iter().filter(|&&v| v == m).count(), 1);
        vs.check_object(&mut tx, oid).unwrap();
        assert_eq!(vs.read_body(&mut tx, m, TAG).unwrap(), b"merged");
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}

#[test]
fn deleting_the_merge_version_detaches_both_parents() {
    for vs in [plain(), chained(4)] {
        let (path, store) = temp_store("del-merge");
        let mut tx = store.begin();
        let (oid, _base, a, b, m) = fork_and_merge(&vs, &mut tx);
        // Give the merge a child so the splice has work to do.
        let c = vs.new_version_from(&mut tx, m).unwrap();

        vs.delete_version(&mut tx, m).unwrap();
        // The child was adopted by the merge's primary parent only.
        let cm = vs.version_meta(&mut tx, c).unwrap();
        assert_eq!(cm.dprev, a);
        assert!(cm.dprev2.is_null());
        assert!(vs.dnext(&mut tx, a).unwrap().contains(&c));
        // The second parent simply lost the edge.
        assert!(!vs.dnext(&mut tx, b).unwrap().contains(&m));
        assert!(!vs.dnext(&mut tx, b).unwrap().contains(&c));
        vs.check_object(&mut tx, oid).unwrap();
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}

#[test]
fn ancestors_survive_deleted_version_splices() {
    let (path, store) = temp_store("del-splice-anc");
    let vs = plain();
    let mut tx = store.begin();
    let (oid, base, a, b, m) = fork_and_merge(&vs, &mut tx);
    let tip = vs.new_version_from(&mut tx, m).unwrap();

    // Splice the merge out of the middle of the history: the tip is
    // re-parented onto side a, so its ancestry re-roots through a.
    vs.delete_version(&mut tx, m).unwrap();
    assert_eq!(vs.ancestors(&mut tx, tip).unwrap(), vec![tip, a, base]);
    assert_eq!(vs.common_ancestor(&mut tx, tip, b).unwrap(), Some(base));

    // Splice out the fork base as well; both sides become roots and
    // the LCA of the two branches disappears.
    vs.delete_version(&mut tx, base).unwrap();
    assert_eq!(vs.ancestors(&mut tx, tip).unwrap(), vec![tip, a]);
    assert_eq!(vs.ancestors(&mut tx, b).unwrap(), vec![b]);
    assert_eq!(vs.common_ancestor(&mut tx, tip, b).unwrap(), None);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}
