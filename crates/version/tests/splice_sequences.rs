//! Adversarial splice sequences: repeated deletions inside branched
//! graphs, checking every intermediate state with the invariant checker
//! and explicit expectations.

use ode_codec::TypeTag;
use ode_storage::{Store, StoreOptions};
use ode_version::{VersionStore, VersionStoreLayout, Vid};

const TAG: TypeTag = TypeTag::from_name("splice/Doc");

fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-splice-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let mut wal = p.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    let store = Store::create(&p, StoreOptions::default()).unwrap();
    (p, store)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn vs() -> VersionStore {
    VersionStore::new(VersionStoreLayout::default())
}

/// Delete every version of a bushy tree one by one (always a legal
/// target), checking invariants after each removal.
#[test]
fn incremental_teardown_of_bushy_tree() {
    let (path, store) = temp_store("teardown");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, vec![0]).unwrap();
    // Three alternatives off v0, each extended twice.
    let mut all = vec![v0];
    for _ in 0..3 {
        let mut tip = vs.new_version_from(&mut tx, v0).unwrap();
        all.push(tip);
        for _ in 0..2 {
            tip = vs.new_version_from(&mut tx, tip).unwrap();
            all.push(tip);
        }
    }
    assert_eq!(vs.version_count(&mut tx, oid).unwrap(), 10);

    // Remove versions middle-out until one remains.
    while vs.version_count(&mut tx, oid).unwrap() > 1 {
        let history = vs.version_history(&mut tx, oid).unwrap();
        let target = history[history.len() / 2];
        vs.delete_version(&mut tx, target).unwrap();
        vs.check_object(&mut tx, oid).unwrap();
        // Remaining versions still read.
        for vid in vs.version_history(&mut tx, oid).unwrap() {
            vs.read_body(&mut tx, vid, TAG).unwrap();
        }
    }
    assert_eq!(vs.version_count(&mut tx, oid).unwrap(), 1);
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

/// Deleting a chain of branch points re-parents grandchildren onto the
/// surviving ancestor, preserving relative derivation order.
#[test]
fn cascading_reparent_preserves_order() {
    let (path, store) = temp_store("cascade");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, vec![0]).unwrap();
    let a = vs.new_version_from(&mut tx, v0).unwrap();
    let b = vs.new_version_from(&mut tx, a).unwrap();
    let c1 = vs.new_version_from(&mut tx, b).unwrap();
    let c2 = vs.new_version_from(&mut tx, b).unwrap();
    let d = vs.new_version_from(&mut tx, a).unwrap();

    // Delete b: c1, c2 re-parent onto a, taking b's position before d.
    vs.delete_version(&mut tx, b).unwrap();
    assert_eq!(vs.dnext(&mut tx, a).unwrap(), vec![c1, c2, d]);
    // Delete a: all three land on v0.
    vs.delete_version(&mut tx, a).unwrap();
    assert_eq!(vs.dnext(&mut tx, v0).unwrap(), vec![c1, c2, d]);
    for v in [c1, c2, d] {
        assert_eq!(vs.dprevious(&mut tx, v).unwrap(), Some(v0));
    }
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

/// Deleting the root of a forest (after a previous root deletion) keeps
/// the forest coherent.
#[test]
fn repeated_root_deletion_yields_forest() {
    let (path, store) = temp_store("forest");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, vec![0]).unwrap();
    let l = vs.new_version_from(&mut tx, v0).unwrap();
    let r = vs.new_version_from(&mut tx, v0).unwrap();
    let rl = vs.new_version_from(&mut tx, r).unwrap();

    vs.delete_version(&mut tx, v0).unwrap(); // l, r become roots
    assert_eq!(vs.dprevious(&mut tx, l).unwrap(), None);
    assert_eq!(vs.dprevious(&mut tx, r).unwrap(), None);
    vs.check_object(&mut tx, oid).unwrap();

    vs.delete_version(&mut tx, r).unwrap(); // rl becomes a root too
    assert_eq!(vs.dprevious(&mut tx, rl).unwrap(), None);
    assert_eq!(vs.version_history(&mut tx, oid).unwrap(), vec![l, rl]);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

/// Temporal chain stays exact under alternating head/tail deletions.
#[test]
fn alternating_head_tail_deletions() {
    let (path, store) = temp_store("headtail");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, vec![0]).unwrap();
    let mut expected: Vec<Vid> = vec![v0];
    for _ in 0..9 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        expected.push(v);
    }
    let mut from_head = true;
    while expected.len() > 1 {
        let victim = if from_head {
            expected.remove(0)
        } else {
            expected.pop().unwrap()
        };
        from_head = !from_head;
        vs.delete_version(&mut tx, victim).unwrap();
        assert_eq!(vs.version_history(&mut tx, oid).unwrap(), expected);
        assert_eq!(vs.latest(&mut tx, oid).unwrap(), *expected.last().unwrap());
        vs.check_object(&mut tx, oid).unwrap();
    }
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}
