//! Property test: random operation sequences against an in-memory model.
//!
//! The model tracks, per object, the temporal order (a `Vec<Vid>`), each
//! version's body and derivation parent.  After every operation the
//! store must agree with the model *and* pass the structural invariant
//! checker.

use std::collections::HashMap;

use ode_codec::TypeTag;
use ode_storage::{Store, StoreOptions};
use ode_version::{Oid, VersionStore, VersionStoreLayout, Vid};
use proptest::prelude::*;

const TAG: TypeTag = TypeTag::from_name("prop/Obj");

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    /// Derive from the version at (object pick, version pick).
    NewVersion(u8, u8),
    Update(u8, u8, u8),
    DeleteVersion(u8, u8),
    DeleteObject(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<u8>().prop_map(Op::Create),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(o, v)| Op::NewVersion(o, v)),
        3 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, v, b)| Op::Update(o, v, b)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(o, v)| Op::DeleteVersion(o, v)),
        1 => any::<u8>().prop_map(Op::DeleteObject),
    ]
}

#[derive(Debug, Default, Clone)]
struct ModelObject {
    /// Temporal order, oldest first.
    history: Vec<Vid>,
    body: HashMap<Vid, Vec<u8>>,
    parent: HashMap<Vid, Option<Vid>>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_model(ops in proptest::collection::vec(arb_op(), 1..120), seed: u64) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "ode-vprop-{seed}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let wal = std::path::PathBuf::from(wal);
        let _ = std::fs::remove_file(&wal);

        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let vs = VersionStore::new(VersionStoreLayout::default());
        let mut tx = store.begin();
        let mut model: HashMap<Oid, ModelObject> = HashMap::new();
        let mut oids: Vec<Oid> = Vec::new();

        for op in ops {
            match op {
                Op::Create(b) => {
                    let (oid, vid) = vs.create_object(&mut tx, TAG, vec![b]).unwrap();
                    let mut m = ModelObject::default();
                    m.history.push(vid);
                    m.body.insert(vid, vec![b]);
                    m.parent.insert(vid, None);
                    model.insert(oid, m);
                    oids.push(oid);
                }
                Op::NewVersion(o, v) => {
                    if oids.is_empty() { continue; }
                    let oid = oids[o as usize % oids.len()];
                    let m = model.get_mut(&oid).unwrap();
                    let base = m.history[v as usize % m.history.len()];
                    let vid = vs.new_version_from(&mut tx, base).unwrap();
                    m.history.push(vid);
                    let body = m.body[&base].clone();
                    m.body.insert(vid, body);
                    m.parent.insert(vid, Some(base));
                }
                Op::Update(o, v, b) => {
                    if oids.is_empty() { continue; }
                    let oid = oids[o as usize % oids.len()];
                    let m = model.get_mut(&oid).unwrap();
                    let vid = m.history[v as usize % m.history.len()];
                    vs.write_body(&mut tx, vid, TAG, vec![b, b]).unwrap();
                    m.body.insert(vid, vec![b, b]);
                }
                Op::DeleteVersion(o, v) => {
                    if oids.is_empty() { continue; }
                    let oid = oids[o as usize % oids.len()];
                    let m = model.get_mut(&oid).unwrap();
                    if m.history.len() <= 1 { continue; }
                    let vid = m.history[v as usize % m.history.len()];
                    vs.delete_version(&mut tx, vid).unwrap();
                    m.history.retain(|&x| x != vid);
                    m.body.remove(&vid);
                    let parent = m.parent.remove(&vid).unwrap();
                    for p in m.parent.values_mut() {
                        if *p == Some(vid) {
                            *p = parent;
                        }
                    }
                }
                Op::DeleteObject(o) => {
                    if oids.is_empty() { continue; }
                    let idx = o as usize % oids.len();
                    let oid = oids.remove(idx);
                    vs.delete_object(&mut tx, oid).unwrap();
                    model.remove(&oid);
                }
            }

            // Full agreement check after every operation.
            for (&oid, m) in &model {
                prop_assert_eq!(vs.version_history(&mut tx, oid).unwrap(), m.history.clone());
                prop_assert_eq!(
                    vs.latest(&mut tx, oid).unwrap(),
                    *m.history.last().unwrap()
                );
                for &vid in &m.history {
                    prop_assert_eq!(
                        &vs.read_body(&mut tx, vid, TAG).unwrap(),
                        &m.body[&vid]
                    );
                    prop_assert_eq!(
                        vs.dprevious(&mut tx, vid).unwrap(),
                        m.parent[&vid]
                    );
                }
                vs.check_object(&mut tx, oid).unwrap();
            }
        }
        tx.commit().unwrap();
        drop(store);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
    }
}
