//! Behavioural tests of the version graph: the §4 operation semantics.

use ode_codec::TypeTag;
use ode_storage::{Store, StoreOptions};
use ode_version::{Oid, VersionError, VersionStore, VersionStoreLayout, Vid};

const TAG: TypeTag = TypeTag::from_name("test/Doc");

fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-vgraph-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let mut wal = p.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    let store = Store::create(&p, StoreOptions::default()).unwrap();
    (p, store)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn vs() -> VersionStore {
    VersionStore::new(VersionStoreLayout::default())
}

#[test]
fn create_makes_single_version_object() {
    let (path, store) = temp_store("create");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"state0".to_vec()).unwrap();
    assert_eq!(vs.latest(&mut tx, oid).unwrap(), v0);
    assert_eq!(vs.version_count(&mut tx, oid).unwrap(), 1);
    assert_eq!(vs.version_history(&mut tx, oid).unwrap(), vec![v0]);
    assert_eq!(vs.read_body(&mut tx, v0, TAG).unwrap(), b"state0");
    assert_eq!(vs.dprevious(&mut tx, v0).unwrap(), None);
    assert_eq!(vs.tprevious(&mut tx, v0).unwrap(), None);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn newversion_is_revision_with_copied_state() {
    let (path, store) = temp_store("revision");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"base".to_vec()).unwrap();
    let v1 = vs.new_version_of(&mut tx, oid).unwrap();
    // v1 is a copy of v0's state, derived from v0, and the new latest.
    assert_eq!(vs.read_body(&mut tx, v1, TAG).unwrap(), b"base");
    assert_eq!(vs.dprevious(&mut tx, v1).unwrap(), Some(v0));
    assert_eq!(vs.tprevious(&mut tx, v1).unwrap(), Some(v0));
    assert_eq!(vs.tnext(&mut tx, v0).unwrap(), Some(v1));
    assert_eq!(vs.latest(&mut tx, oid).unwrap(), v1);
    // Mutating v1 leaves v0 untouched (the paper's central property).
    vs.write_body(&mut tx, v1, TAG, b"changed".to_vec())
        .unwrap();
    assert_eq!(vs.read_body(&mut tx, v0, TAG).unwrap(), b"base");
    assert_eq!(vs.read_body(&mut tx, v1, TAG).unwrap(), b"changed");
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn alternatives_branch_from_common_ancestor() {
    let (path, store) = temp_store("alts");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"v0".to_vec()).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    let v2 = vs.new_version_from(&mut tx, v0).unwrap();
    // v1 and v2 are variants/alternatives of v0 (paper §4.2).
    assert_eq!(vs.dnext(&mut tx, v0).unwrap(), vec![v1, v2]);
    assert_eq!(vs.dprevious(&mut tx, v2).unwrap(), Some(v0));
    // Temporal chain is creation order regardless of derivation shape.
    assert_eq!(vs.version_history(&mut tx, oid).unwrap(), vec![v0, v1, v2]);
    // v2 (created last) is the latest, even though derived from v0.
    assert_eq!(vs.latest(&mut tx, oid).unwrap(), v2);
    // Both tips are leaves of the derivation tree.
    assert_eq!(vs.derivation_leaves(&mut tx, oid).unwrap(), vec![v1, v2]);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn version_history_follows_derivation_path() {
    let (path, store) = temp_store("history");
    let vs = vs();
    let mut tx = store.begin();
    // Paper §4: v3 derived from v1 derived from v0 — "v3, v1, v0
    // constitute a version history".
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"v0".to_vec()).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    let _v2 = vs.new_version_from(&mut tx, v0).unwrap();
    let v3 = vs.new_version_from(&mut tx, v1).unwrap();
    assert_eq!(vs.derivation_path(&mut tx, v3).unwrap(), vec![v3, v1, v0]);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn delete_object_removes_all_versions() {
    let (path, store) = temp_store("delobj");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    let v1 = vs.new_version_of(&mut tx, oid).unwrap();
    let v2 = vs.new_version_of(&mut tx, oid).unwrap();
    vs.delete_object(&mut tx, oid).unwrap();
    assert!(!vs.object_exists(&mut tx, oid).unwrap());
    for v in [v0, v1, v2] {
        assert!(!vs.version_exists(&mut tx, v).unwrap());
    }
    assert!(vs.objects_of_type(&mut tx, TAG).unwrap().is_empty());
    assert!(matches!(
        vs.latest(&mut tx, oid),
        Err(VersionError::UnknownObject(_))
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn delete_middle_version_splices_chains() {
    let (path, store) = temp_store("delmid");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    let v2 = vs.new_version_from(&mut tx, v1).unwrap();
    vs.delete_version(&mut tx, v1).unwrap();
    // Temporal: v0 <-> v2.
    assert_eq!(vs.tnext(&mut tx, v0).unwrap(), Some(v2));
    assert_eq!(vs.tprevious(&mut tx, v2).unwrap(), Some(v0));
    assert_eq!(vs.version_history(&mut tx, oid).unwrap(), vec![v0, v2]);
    // Derivation: v2 re-parented onto v0.
    assert_eq!(vs.dprevious(&mut tx, v2).unwrap(), Some(v0));
    assert_eq!(vs.dnext(&mut tx, v0).unwrap(), vec![v2]);
    assert_eq!(vs.version_count(&mut tx, oid).unwrap(), 2);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn delete_latest_version_moves_latest_back() {
    let (path, store) = temp_store("dellatest");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    vs.delete_version(&mut tx, v1).unwrap();
    assert_eq!(vs.latest(&mut tx, oid).unwrap(), v0);
    assert_eq!(vs.tnext(&mut tx, v0).unwrap(), None);
    assert_eq!(vs.dnext(&mut tx, v0).unwrap(), Vec::<Vid>::new());
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn delete_root_promotes_children() {
    let (path, store) = temp_store("delroot");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    let v2 = vs.new_version_from(&mut tx, v0).unwrap();
    vs.delete_version(&mut tx, v0).unwrap();
    // Both children become roots of the forest.
    assert_eq!(vs.dprevious(&mut tx, v1).unwrap(), None);
    assert_eq!(vs.dprevious(&mut tx, v2).unwrap(), None);
    assert_eq!(vs.version_history(&mut tx, oid).unwrap(), vec![v1, v2]);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn last_version_delete_refused() {
    let (path, store) = temp_store("lastver");
    let vs = vs();
    let mut tx = store.begin();
    let (_oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    assert!(matches!(
        vs.delete_version(&mut tx, v0),
        Err(VersionError::LastVersion(_))
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn type_mismatch_rejected() {
    let (path, store) = temp_store("typecheck");
    let vs = vs();
    let other = TypeTag::from_name("test/Other");
    let mut tx = store.begin();
    let (_oid, v0) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    assert!(matches!(
        vs.read_body(&mut tx, v0, other),
        Err(VersionError::TypeMismatch { .. })
    ));
    assert!(matches!(
        vs.write_body(&mut tx, v0, other, vec![]),
        Err(VersionError::TypeMismatch { .. })
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn extents_track_live_objects() {
    let (path, store) = temp_store("extents");
    let vs = vs();
    let other = TypeTag::from_name("test/Other");
    let mut tx = store.begin();
    let (o1, _) = vs.create_object(&mut tx, TAG, b"1".to_vec()).unwrap();
    let (o2, _) = vs.create_object(&mut tx, TAG, b"2".to_vec()).unwrap();
    let (o3, _) = vs.create_object(&mut tx, other, b"3".to_vec()).unwrap();
    assert_eq!(vs.objects_of_type(&mut tx, TAG).unwrap(), vec![o1, o2]);
    assert_eq!(vs.objects_of_type(&mut tx, other).unwrap(), vec![o3]);
    vs.delete_object(&mut tx, o1).unwrap();
    assert_eq!(vs.objects_of_type(&mut tx, TAG).unwrap(), vec![o2]);
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn graph_survives_reopen() {
    let (path, store) = temp_store("reopen");
    let vs = vs();
    let (oid, v0, v1, v2) = {
        let mut tx = store.begin();
        let (oid, v0) = vs.create_object(&mut tx, TAG, b"v0".to_vec()).unwrap();
        let v1 = vs.new_version_from(&mut tx, v0).unwrap();
        let v2 = vs.new_version_from(&mut tx, v0).unwrap();
        vs.write_body(&mut tx, v1, TAG, b"v1".to_vec()).unwrap();
        tx.commit().unwrap();
        (oid, v0, v1, v2)
    };
    drop(store);
    let store = Store::open(&path, StoreOptions::default()).unwrap();
    let mut r = store.read();
    assert_eq!(vs.latest(&mut r, oid).unwrap(), v2);
    assert_eq!(vs.version_history(&mut r, oid).unwrap(), vec![v0, v1, v2]);
    assert_eq!(vs.read_body(&mut r, v1, TAG).unwrap(), b"v1");
    assert_eq!(vs.dnext(&mut r, v0).unwrap(), vec![v1, v2]);
    vs.check_object(&mut r, oid).unwrap();
    drop(r);
    drop(store);
    cleanup(&path);
}

#[test]
fn deep_history_traversal() {
    let (path, store) = temp_store("deep");
    let vs = vs();
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, vec![0u8; 64]).unwrap();
    let mut tip = v0;
    for _ in 0..500 {
        tip = vs.new_version_from(&mut tx, tip).unwrap();
    }
    assert_eq!(vs.version_count(&mut tx, oid).unwrap(), 501);
    assert_eq!(vs.derivation_path(&mut tx, tip).unwrap().len(), 501);
    assert_eq!(vs.version_history(&mut tx, oid).unwrap().len(), 501);
    assert_eq!(vs.derivation_leaves(&mut tx, oid).unwrap(), vec![tip]);
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn unknown_ids_error_cleanly() {
    let (path, store) = temp_store("unknown");
    let vs = vs();
    let mut tx = store.begin();
    assert!(matches!(
        vs.latest(&mut tx, Oid(999)),
        Err(VersionError::UnknownObject(Oid(999)))
    ));
    assert!(matches!(
        vs.version_meta(&mut tx, Vid(999)),
        Err(VersionError::UnknownVersion(Vid(999)))
    ));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}
