//! Delta-chain storage behaviour: byte-identical reads vs the
//! whole-body engine, chain-served history queries, migration, and a
//! differential proptest battery driving a chained store and a
//! whole-body oracle through identical histories.

use ode_codec::TypeTag;
use ode_storage::{Store, StoreOptions};
use ode_version::{ChainConfig, ChainLink, VersionStore, VersionStoreLayout, Vid};

const TAG: TypeTag = TypeTag::from_name("test/Doc");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-vchain-{name}-{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn chained(interval: u64) -> VersionStore {
    VersionStore::with_chain(
        VersionStoreLayout::default(),
        ChainConfig::with_interval(interval),
    )
}

fn body(i: usize) -> Vec<u8> {
    // Evolving document: shared prefix, small point edits, some growth.
    let mut b: Vec<u8> = (0..600).map(|j| ((j * 7) % 251) as u8).collect();
    b[i % 600] = 0xEE;
    b.extend_from_slice(format!("-rev{i}").as_bytes());
    b
}

#[test]
fn chained_reads_are_byte_identical_at_every_version() {
    for interval in [1, 2, 4, 16] {
        let path = temp_path(&format!("reads{interval}"));
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let vs = chained(interval);
        let mut tx = store.begin();
        let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
        let mut vids = vec![v0];
        for i in 1..24 {
            let v = vs.new_version_of(&mut tx, oid).unwrap();
            vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
            vids.push(v);
        }
        for (i, &v) in vids.iter().enumerate() {
            assert_eq!(
                vs.read_body(&mut tx, v, TAG).unwrap(),
                body(i),
                "interval {interval} version {i}"
            );
        }
        vs.check_object(&mut tx, oid).unwrap();
        // The chain actually stores deltas (not 24 whole copies).
        let stats = vs.chain_stats(&mut tx, oid).unwrap().unwrap();
        assert_eq!(stats.versions, 24);
        if interval > 1 {
            assert!(stats.deltas > 0);
            assert!(stats.encoded_bytes < stats.materialized_bytes);
        }
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}

#[test]
fn single_version_objects_have_no_chain() {
    // Version orthogonality: an object with one version costs nothing
    // extra even with chain storage on.
    let path = temp_path("ortho");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(4);
    let mut tx = store.begin();
    let (oid, _) = vs.create_object(&mut tx, TAG, b"only".to_vec()).unwrap();
    assert!(vs.load_chain(&mut tx, oid).unwrap().is_none());
    assert!(vs.chain_stats(&mut tx, oid).unwrap().is_none());
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn whole_body_database_migrates_in_place() {
    let path = temp_path("migrate");
    // Phase 1: plain whole-body store.
    let (oid, old_vids) = {
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let vs = VersionStore::new(VersionStoreLayout::default());
        let mut tx = store.begin();
        let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
        let mut vids = vec![v0];
        for i in 1..4 {
            let v = vs.new_version_of(&mut tx, oid).unwrap();
            vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
            vids.push(v);
        }
        tx.commit().unwrap();
        (oid, vids)
    };
    // Phase 2: reopen with chain storage and keep writing.
    let store = Store::open(&path, StoreOptions::default()).unwrap();
    let vs = chained(4);
    let mut tx = store.begin();
    let mut vids = old_vids.clone();
    for i in 4..12 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
        vids.push(v);
    }
    // Every version — pre-chain whole bodies and chained ones — reads
    // back byte-identically.
    for (i, &v) in vids.iter().enumerate() {
        assert_eq!(vs.read_body(&mut tx, v, TAG).unwrap(), body(i), "v{i}");
    }
    vs.check_object(&mut tx, oid).unwrap();
    // The chain is a strict suffix: pre-chain versions are not members.
    let chain = vs.load_chain(&mut tx, oid).unwrap().unwrap();
    assert!(!chain.contains(old_vids[0]));
    assert!(chain.contains(*vids.last().unwrap()));
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn chain_survives_reopen() {
    let path = temp_path("reopen");
    let (oid, vids) = {
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let vs = chained(4);
        let mut tx = store.begin();
        let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
        let mut vids = vec![v0];
        for i in 1..10 {
            let v = vs.new_version_of(&mut tx, oid).unwrap();
            vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
            vids.push(v);
        }
        tx.commit().unwrap();
        (oid, vids)
    };
    // Reopen withOUT chain config: stored chains are still honored.
    let store = Store::open(&path, StoreOptions::default()).unwrap();
    let vs = VersionStore::new(VersionStoreLayout::default());
    let mut tx = store.begin();
    for (i, &v) in vids.iter().enumerate() {
        assert_eq!(vs.read_body(&mut tx, v, TAG).unwrap(), body(i), "v{i}");
    }
    // And maintained: a new version still appends to the chain.
    let v = vs.new_version_of(&mut tx, oid).unwrap();
    vs.write_body(&mut tx, v, TAG, body(10)).unwrap();
    assert_eq!(vs.read_body(&mut tx, v, TAG).unwrap(), body(10));
    assert_eq!(vs.read_body(&mut tx, vids[9], TAG).unwrap(), body(9));
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn history_between_matches_walk() {
    let path = temp_path("between");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(4);
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
    let mut vids = vec![v0];
    for i in 1..15 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
        vids.push(v);
    }
    // Another object interleaves stamps so ranges are not contiguous.
    let (oid2, _) = vs.create_object(&mut tx, TAG, b"x".to_vec()).unwrap();
    vs.new_version_of(&mut tx, oid2).unwrap();

    let history = vs.version_history(&mut tx, oid).unwrap();
    let stamps: Vec<u64> = history.iter().map(|v| v.0).collect();
    let lo = *stamps.first().unwrap();
    let hi = *stamps.last().unwrap();
    for from in [0, lo, lo + 3, hi] {
        for to in [lo, lo + 5, hi, hi + 10] {
            let got = vs.history_between(&mut tx, oid, from, to).unwrap();
            let want: Vec<Vid> = history
                .iter()
                .copied()
                .filter(|v| v.0 >= from && v.0 <= to)
                .collect();
            assert_eq!(got, want, "range [{from}, {to}]");
        }
    }
    assert!(vs.history_between(&mut tx, oid, hi, lo).unwrap().is_empty());
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn diff_versions_adjacent_is_served_from_the_chain() {
    let path = temp_path("diff");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(8);
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
    let mut vids = vec![v0];
    for i in 1..10 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
        vids.push(v);
    }
    let chain = vs.load_chain(&mut tx, oid).unwrap().unwrap();
    // Adjacent delta-linked pair: summarized straight off the chain.
    let (a, b) = (chain.entries[1].vid, chain.entries[2].vid);
    assert!(matches!(chain.entries[2].link, ChainLink::Delta(_)));
    let d = vs.diff_versions(&mut tx, a, b).unwrap();
    assert!(d.stored);
    assert_eq!(d.from, a);
    assert_eq!(d.to, b);
    let b_idx = vids.iter().position(|&v| v == b).unwrap();
    assert_eq!(d.to_len as usize, body(b_idx).len());
    // Distant pair: computed, and consistent with the actual bodies.
    let d2 = vs.diff_versions(&mut tx, vids[0], vids[9]).unwrap();
    assert!(!d2.stored);
    assert_eq!(d2.to_len as usize, body(9).len());
    assert!(d2.literal_bytes < body(9).len() as u64, "mostly copies");
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn deletes_repair_the_chain_everywhere() {
    // Delete latest / an anchor / a middle delta / down to one version,
    // checking every surviving body and the invariants each time.
    let path = temp_path("deletes");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(3);
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
    let mut live: Vec<(Vid, Vec<u8>)> = vec![(v0, body(0))];
    for i in 1..12 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
        live.push((v, body(i)));
    }
    // Deletion order exercises: latest, first chain entry, middles.
    while live.len() > 1 {
        let pick = if live.len().is_multiple_of(3) {
            live.len() - 1 // latest
        } else if live.len() % 3 == 1 {
            0 // oldest
        } else {
            live.len() / 2 // middle
        };
        let (vid, _) = live.remove(pick);
        vs.delete_version(&mut tx, vid).unwrap();
        for (v, b) in &live {
            assert_eq!(&vs.read_body(&mut tx, *v, TAG).unwrap(), b);
        }
        vs.check_object(&mut tx, oid).unwrap();
    }
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn historical_write_body_rewrites_the_chain_entry() {
    let path = temp_path("histwrite");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(4);
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
    let mut vids = vec![v0];
    for i in 1..9 {
        let v = vs.new_version_of(&mut tx, oid).unwrap();
        vs.write_body(&mut tx, v, TAG, body(i)).unwrap();
        vids.push(v);
    }
    // Edit every historical version in turn; neighbors must not move.
    for victim in 0..9usize {
        let mut edited = body(victim);
        edited.extend_from_slice(b"+edit");
        vs.write_body(&mut tx, vids[victim], TAG, edited.clone())
            .unwrap();
        assert_eq!(vs.read_body(&mut tx, vids[victim], TAG).unwrap(), edited);
        for (i, &v) in vids.iter().enumerate() {
            if i == victim {
                continue;
            }
            let mut want = body(i);
            if i < victim {
                want.extend_from_slice(b"+edit");
            }
            assert_eq!(vs.read_body(&mut tx, v, TAG).unwrap(), want, "v{i}");
        }
        vs.check_object(&mut tx, oid).unwrap();
        // Undo for the next round (leaves earlier victims edited —
        // covered by the `want` adjustment above).
        // (Intentionally keep edits cumulative to vary chain content.)
    }
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

#[test]
fn alternatives_from_historical_bases_chain_correctly() {
    // newversion(v) where v is a cleared chain member must materialize
    // the base off the chain for the new version's state.
    let path = temp_path("altbase");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let vs = chained(4);
    let mut tx = store.begin();
    let (oid, v0) = vs.create_object(&mut tx, TAG, body(0)).unwrap();
    let v1 = vs.new_version_from(&mut tx, v0).unwrap();
    vs.write_body(&mut tx, v1, TAG, body(1)).unwrap();
    let v2 = vs.new_version_from(&mut tx, v1).unwrap();
    vs.write_body(&mut tx, v2, TAG, body(2)).unwrap();
    // Alternative derived from v0, which by now is a chain member
    // (or pre-chain whole body, depending on creation order) — its
    // state must be body(0).
    let v3 = vs.new_version_from(&mut tx, v0).unwrap();
    assert_eq!(vs.read_body(&mut tx, v3, TAG).unwrap(), body(0));
    assert_eq!(vs.dprevious(&mut tx, v3).unwrap(), Some(v0));
    assert_eq!(vs.latest(&mut tx, oid).unwrap(), v3);
    // And an alternative from v1 (definitely a cleared chain member).
    let v4 = vs.new_version_from(&mut tx, v1).unwrap();
    assert_eq!(vs.read_body(&mut tx, v4, TAG).unwrap(), body(1));
    vs.check_object(&mut tx, oid).unwrap();
    tx.commit().unwrap();
    drop(store);
    cleanup(&path);
}

// ----------------------------------------------------------------------
// Differential proptest battery: chained store vs whole-body oracle.
// ----------------------------------------------------------------------

mod differential {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// Derive a new version from the version at this index (mod len).
        Fork(usize),
        /// Overwrite the version at this index (mod len) with new bytes.
        Edit(usize, Vec<u8>),
        /// Delete the version at this index (mod len).
        Delete(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0usize..64).prop_map(Op::Fork),
            3 => ((0usize..64), proptest::collection::vec(any::<u8>(), 0..200))
                .prop_map(|(i, b)| Op::Edit(i, b)),
            1 => (0usize..64).prop_map(Op::Delete),
        ]
    }

    fn run_history(
        store: &Store,
        vs: &VersionStore,
        seed_body: &[u8],
        ops: &[Op],
    ) -> (ode_version::Oid, Vec<Vid>) {
        let mut tx = store.begin();
        let (oid, v0) = vs.create_object(&mut tx, TAG, seed_body.to_vec()).unwrap();
        let mut vids = vec![v0];
        for op in ops {
            match op {
                Op::Fork(i) => {
                    let base = vids[i % vids.len()];
                    vids.push(vs.new_version_from(&mut tx, base).unwrap());
                }
                Op::Edit(i, b) => {
                    let v = vids[i % vids.len()];
                    vs.write_body(&mut tx, v, TAG, b.clone()).unwrap();
                }
                Op::Delete(i) => {
                    if vids.len() > 1 {
                        let v = vids.remove(i % vids.len());
                        vs.delete_version(&mut tx, v).unwrap();
                    }
                }
            }
        }
        vs.check_object(&mut tx, oid).unwrap();
        tx.commit().unwrap();
        (oid, vids)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The chained engine and the whole-body engine, driven through
        /// an identical fork/edit/delete history, return byte-identical
        /// bodies for every surviving version — live, and again after a
        /// full store reopen (codec + storage round trip).
        #[test]
        fn chained_store_matches_whole_body_oracle(
            seed in proptest::collection::vec(any::<u8>(), 0..300),
            ops in proptest::collection::vec(op_strategy(), 1..40),
            interval in 1u64..9,
        ) {
            let p_chain = temp_path(&format!("dc{interval}-{}", ops.len()));
            let p_whole = temp_path(&format!("dw{interval}-{}", ops.len()));
            {
                let s_chain = Store::create(&p_chain, StoreOptions::default()).unwrap();
                let s_whole = Store::create(&p_whole, StoreOptions::default()).unwrap();
                let vs_chain = chained(interval);
                let vs_whole = VersionStore::new(VersionStoreLayout::default());
                let (oid_c, vids_c) = run_history(&s_chain, &vs_chain, &seed, &ops);
                let (oid_w, vids_w) = run_history(&s_whole, &vs_whole, &seed, &ops);
                prop_assert_eq!(vids_c.len(), vids_w.len());
                let mut tc = s_chain.begin();
                let mut tw = s_whole.begin();
                for (&vc, &vw) in vids_c.iter().zip(&vids_w) {
                    prop_assert_eq!(
                        vs_chain.read_body(&mut tc, vc, TAG).unwrap(),
                        vs_whole.read_body(&mut tw, vw, TAG).unwrap()
                    );
                }
                prop_assert_eq!(
                    vs_chain.version_history(&mut tc, oid_c).unwrap().len(),
                    vs_whole.version_history(&mut tw, oid_w).unwrap().len()
                );
                drop(tc);
                drop(tw);
            }
            // Reopen both stores cold and compare again.
            {
                let s_chain = Store::open(&p_chain, StoreOptions::default()).unwrap();
                let s_whole = Store::open(&p_whole, StoreOptions::default()).unwrap();
                let vs_chain = chained(interval);
                let vs_whole = VersionStore::new(VersionStoreLayout::default());
                let mut tc = s_chain.begin();
                let mut tw = s_whole.begin();
                // Vids were allocated identically on both sides.
                let hist_c = vs_chain.version_history(&mut tc, ode_version::Oid(1)).unwrap();
                let hist_w = vs_whole.version_history(&mut tw, ode_version::Oid(1)).unwrap();
                prop_assert_eq!(&hist_c, &hist_w);
                for &v in &hist_c {
                    prop_assert_eq!(
                        vs_chain.read_body(&mut tc, v, TAG).unwrap(),
                        vs_whole.read_body(&mut tw, v, TAG).unwrap()
                    );
                }
                vs_chain.check_object(&mut tc, ode_version::Oid(1)).unwrap();
            }
            cleanup(&p_chain);
            cleanup(&p_whole);
        }
    }
}
