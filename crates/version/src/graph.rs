//! The version graph engine: create, derive, update, delete, traverse.

use ode_codec::TypeTag;
use ode_object::{Extents, IdAllocator, KvTable, ObjectHeap, Oid, Vid};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite};

use crate::records::{ObjectMeta, VersionMeta};
use crate::{Result, VersionError};

/// Root-slot assignment for a [`VersionStore`]'s six persistent
/// components. The default occupies slots 0–5, leaving 6–15 free for the
/// embedding application.
#[derive(Debug, Clone, Copy)]
pub struct VersionStoreLayout {
    /// Slot of the oid → object-record table.
    pub obj_table_slot: usize,
    /// Slot of the vid → version-record table.
    pub ver_table_slot: usize,
    /// Slot of the record heap.
    pub heap_slot: usize,
    /// Slot of the object-id counter.
    pub oid_slot: usize,
    /// Slot of the version-id counter.
    pub vid_slot: usize,
    /// Slot of the per-type extent directory.
    pub extent_slot: usize,
}

impl Default for VersionStoreLayout {
    fn default() -> Self {
        VersionStoreLayout {
            obj_table_slot: 0,
            ver_table_slot: 1,
            heap_slot: 2,
            oid_slot: 3,
            vid_slot: 4,
            extent_slot: 5,
        }
    }
}

/// The version graph over a transactional page store.
///
/// All operations take a storage transaction; the store itself is a cheap
/// `Copy` handle binding the root-slot layout.
///
/// ```
/// use ode_codec::TypeTag;
/// use ode_storage::{Store, StoreOptions};
/// use ode_version::{VersionStore, VersionStoreLayout};
///
/// # let path = std::env::temp_dir().join(format!("vs-doc-{}", std::process::id()));
/// let store = Store::create(&path, StoreOptions::default()).unwrap();
/// let vs = VersionStore::new(VersionStoreLayout::default());
/// const TAG: TypeTag = TypeTag::from_name("doc/Obj");
///
/// let mut tx = store.begin();
/// let (oid, v0) = vs.create_object(&mut tx, TAG, b"state-0".to_vec()).unwrap();
/// let v1 = vs.new_version_from(&mut tx, v0).unwrap();
/// vs.write_body(&mut tx, v1, TAG, b"state-1".to_vec()).unwrap();
/// assert_eq!(vs.latest(&mut tx, oid).unwrap(), v1);
/// assert_eq!(vs.dprevious(&mut tx, v1).unwrap(), Some(v0));
/// assert_eq!(vs.read_body(&mut tx, v0, TAG).unwrap(), b"state-0");
/// vs.check_object(&mut tx, oid).unwrap();
/// tx.commit().unwrap();
/// # drop(store);
/// # let _ = std::fs::remove_file(&path);
/// # let mut w = path.into_os_string(); w.push(".wal");
/// # let _ = std::fs::remove_file(std::path::PathBuf::from(w));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VersionStore {
    obj_table: KvTable,
    ver_table: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
    extents: Extents,
}

impl VersionStore {
    /// Bind a version store to a slot layout.
    pub fn new(layout: VersionStoreLayout) -> VersionStore {
        VersionStore {
            obj_table: KvTable::new(layout.obj_table_slot),
            ver_table: KvTable::new(layout.ver_table_slot),
            heap: ObjectHeap::new(layout.heap_slot),
            oids: IdAllocator::new(layout.oid_slot),
            vids: IdAllocator::new(layout.vid_slot),
            extents: Extents::new(layout.extent_slot),
        }
    }

    // ------------------------------------------------------------------
    // Record plumbing
    // ------------------------------------------------------------------

    /// Load an object record.
    pub fn object_meta(&self, tx: &mut impl PageRead, oid: Oid) -> Result<ObjectMeta> {
        let rid = self
            .obj_table
            .get(tx, oid.0)?
            .ok_or(VersionError::UnknownObject(oid))?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    /// Load a version record.
    pub fn version_meta(&self, tx: &mut impl PageRead, vid: Vid) -> Result<VersionMeta> {
        let rid = self
            .ver_table
            .get(tx, vid.0)?
            .ok_or(VersionError::UnknownVersion(vid))?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_object(&self, tx: &mut impl PageWrite, meta: &ObjectMeta) -> Result<()> {
        match self.obj_table.get(tx, meta.oid.0)? {
            Some(rid) => {
                let new_rid = self.heap.replace(tx, RecordId::from_u64(rid), meta)?;
                if new_rid.to_u64() != rid {
                    self.obj_table.put(tx, meta.oid.0, new_rid.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, meta)?;
                self.obj_table.put(tx, meta.oid.0, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn save_version(&self, tx: &mut impl PageWrite, meta: &VersionMeta) -> Result<()> {
        match self.ver_table.get(tx, meta.vid.0)? {
            Some(rid) => {
                let new_rid = self.heap.replace(tx, RecordId::from_u64(rid), meta)?;
                if new_rid.to_u64() != rid {
                    self.ver_table.put(tx, meta.vid.0, new_rid.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, meta)?;
                self.ver_table.put(tx, meta.vid.0, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn drop_version_record(&self, tx: &mut impl PageWrite, vid: Vid) -> Result<()> {
        if let Some(rid) = self.ver_table.remove(tx, vid.0)? {
            self.heap.delete(tx, RecordId::from_u64(rid))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // pnew / newversion / pdelete
    // ------------------------------------------------------------------

    /// `pnew`: create a persistent object with its first version.
    pub fn create_object(
        &self,
        tx: &mut impl PageWrite,
        tag: TypeTag,
        body: Vec<u8>,
    ) -> Result<(Oid, Vid)> {
        let oid = Oid(self.oids.next(tx)?);
        let vid = Vid(self.vids.next(tx)?);
        let version = VersionMeta {
            vid,
            oid,
            tag,
            dprev: Vid::NULL,
            dnext: Vec::new(),
            tprev: Vid::NULL,
            tnext: Vid::NULL,
            created: vid.0,
            body,
        };
        let object = ObjectMeta {
            oid,
            tag,
            root: vid,
            latest: vid,
            version_count: 1,
        };
        self.save_version(tx, &version)?;
        self.save_object(tx, &object)?;
        self.extents.add(tx, tag, oid.0)?;
        Ok((oid, vid))
    }

    /// `newversion(o)` — derive from the object's latest version.
    pub fn new_version_of(&self, tx: &mut impl PageWrite, oid: Oid) -> Result<Vid> {
        let latest = self.object_meta(tx, oid)?.latest;
        self.new_version_from(tx, latest)
    }

    /// `newversion(v)` — derive a new version from a specific base.
    ///
    /// The new version starts as a copy of the base's state, becomes a
    /// derived-from child of the base, and is appended at the temporal
    /// tail (so it is the object's new latest version, regardless of
    /// where in the tree the base sits — exactly the paper's v2-from-v0
    /// "alternative" figure).
    pub fn new_version_from(&self, tx: &mut impl PageWrite, base: Vid) -> Result<Vid> {
        let mut base_meta = self.version_meta(tx, base)?;
        let mut object = self.object_meta(tx, base_meta.oid)?;
        let vid = Vid(self.vids.next(tx)?);

        let version = VersionMeta {
            vid,
            oid: object.oid,
            tag: object.tag,
            dprev: base,
            dnext: Vec::new(),
            tprev: object.latest,
            tnext: Vid::NULL,
            created: vid.0,
            body: base_meta.body.clone(),
        };

        base_meta.dnext.push(vid);
        self.save_version(tx, &base_meta)?;

        // Re-load the temporal tail (it may *be* the base, whose saved
        // record now carries the new dnext entry) and hook in the new
        // version.
        let mut tail = self.version_meta(tx, object.latest)?;
        tail.tnext = vid;
        self.save_version(tx, &tail)?;

        self.save_version(tx, &version)?;
        object.latest = vid;
        object.version_count += 1;
        self.save_object(tx, &object)?;
        Ok(vid)
    }

    /// `pdelete` on an object id: the object and *all* its versions go.
    pub fn delete_object(&self, tx: &mut impl PageWrite, oid: Oid) -> Result<()> {
        let object = self.object_meta(tx, oid)?;
        // Walk the temporal chain backwards from the latest version.
        let mut cur = object.latest;
        while !cur.is_null() {
            let meta = self.version_meta(tx, cur)?;
            self.drop_version_record(tx, cur)?;
            cur = meta.tprev;
        }
        if let Some(rid) = self.obj_table.remove(tx, oid.0)? {
            self.heap.delete(tx, RecordId::from_u64(rid))?;
        }
        self.extents.remove(tx, object.tag, oid.0)?;
        Ok(())
    }

    /// `pdelete` on a version id: remove one version, splicing the
    /// temporal chain and the derived-from tree around it (children are
    /// re-parented to the deleted version's own parent).
    ///
    /// Deleting the last remaining version is refused — use
    /// [`VersionStore::delete_object`].
    pub fn delete_version(&self, tx: &mut impl PageWrite, vid: Vid) -> Result<()> {
        let meta = self.version_meta(tx, vid)?;
        let mut object = self.object_meta(tx, meta.oid)?;
        if object.version_count <= 1 {
            return Err(VersionError::LastVersion(vid));
        }

        // Temporal splice.
        if !meta.tprev.is_null() {
            let mut prev = self.version_meta(tx, meta.tprev)?;
            prev.tnext = meta.tnext;
            self.save_version(tx, &prev)?;
        }
        if !meta.tnext.is_null() {
            let mut next = self.version_meta(tx, meta.tnext)?;
            next.tprev = meta.tprev;
            self.save_version(tx, &next)?;
        }
        if object.latest == vid {
            // vid was the tail, so its tprev exists (count > 1).
            object.latest = meta.tprev;
        }

        // Derivation splice: children adopt the deleted version's parent.
        for &child in &meta.dnext {
            let mut c = self.version_meta(tx, child)?;
            c.dprev = meta.dprev;
            self.save_version(tx, &c)?;
        }
        if !meta.dprev.is_null() {
            let mut parent = self.version_meta(tx, meta.dprev)?;
            let pos = parent
                .dnext
                .iter()
                .position(|&v| v == vid)
                .expect("parent lists child");
            // Children take the deleted version's position, preserving
            // derivation order.
            parent.dnext.splice(pos..=pos, meta.dnext.iter().copied());
            self.save_version(tx, &parent)?;
        }
        if object.root == vid {
            // The root moves to the first re-parented child, or — when
            // the deleted root was childless — to the oldest live
            // version (the temporal splices above already bypass `vid`).
            object.root = match meta.dnext.first() {
                Some(&child) => child,
                None => {
                    let mut head = object.latest;
                    loop {
                        let m = self.version_meta(tx, head)?;
                        if m.tprev.is_null() {
                            break head;
                        }
                        head = m.tprev;
                    }
                }
            };
        }

        object.version_count -= 1;
        self.save_object(tx, &object)?;
        self.drop_version_record(tx, vid)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads and updates
    // ------------------------------------------------------------------

    /// The latest version id of an object (what a generic reference
    /// binds to *at access time*).
    pub fn latest(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vid> {
        Ok(self.object_meta(tx, oid)?.latest)
    }

    /// The object a version belongs to.
    pub fn object_of(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Oid> {
        Ok(self.version_meta(tx, vid)?.oid)
    }

    /// Read a version's body, type-checked against `expected`.
    pub fn read_body(
        &self,
        tx: &mut impl PageRead,
        vid: Vid,
        expected: TypeTag,
    ) -> Result<Vec<u8>> {
        let meta = self.version_meta(tx, vid)?;
        if meta.tag != expected {
            return Err(VersionError::TypeMismatch {
                expected,
                found: meta.tag,
            });
        }
        Ok(meta.body)
    }

    /// Overwrite a version's body in place (no new version is created —
    /// this is ordinary mutation through a pointer in O++).
    pub fn write_body(
        &self,
        tx: &mut impl PageWrite,
        vid: Vid,
        expected: TypeTag,
        body: Vec<u8>,
    ) -> Result<()> {
        let mut meta = self.version_meta(tx, vid)?;
        if meta.tag != expected {
            return Err(VersionError::TypeMismatch {
                expected,
                found: meta.tag,
            });
        }
        meta.body = body;
        self.save_version(tx, &meta)
    }

    // ------------------------------------------------------------------
    // Traversal (Dprevious / Tprevious and friends)
    // ------------------------------------------------------------------

    /// `Dprevious`: the version this one was derived from.
    pub fn dprevious(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.dprev;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// `Dnext`: versions derived from this one, in creation order.
    pub fn dnext(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Vec<Vid>> {
        Ok(self.version_meta(tx, vid)?.dnext)
    }

    /// `Tprevious`: the version created immediately before this one.
    pub fn tprevious(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.tprev;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// `Tnext`: the version created immediately after this one.
    pub fn tnext(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.tnext;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// All versions of an object in temporal order (oldest first).
    pub fn version_history(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vec<Vid>> {
        let object = self.object_meta(tx, oid)?;
        let mut out = Vec::with_capacity(object.version_count as usize);
        let mut cur = object.latest;
        while !cur.is_null() {
            out.push(cur);
            cur = self.version_meta(tx, cur)?.tprev;
        }
        out.reverse();
        Ok(out)
    }

    /// The derivation path from `vid` back to a root (vid first).
    pub fn derivation_path(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Vec<Vid>> {
        let mut out = vec![vid];
        let mut cur = vid;
        loop {
            let prev = self.version_meta(tx, cur)?.dprev;
            if prev.is_null() {
                return Ok(out);
            }
            out.push(prev);
            cur = prev;
        }
    }

    /// Leaves of the derived-from tree: "each leaf represents the most
    /// up-to-date version of an alternative design".
    pub fn derivation_leaves(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vec<Vid>> {
        let mut leaves = Vec::new();
        for vid in self.version_history(tx, oid)? {
            if self.version_meta(tx, vid)?.is_derivation_leaf() {
                leaves.push(vid);
            }
        }
        Ok(leaves)
    }

    /// Number of live versions of an object.
    pub fn version_count(&self, tx: &mut impl PageRead, oid: Oid) -> Result<u64> {
        Ok(self.object_meta(tx, oid)?.version_count)
    }

    /// A version's global creation stamp (monotone across the whole
    /// database — the basis for temporal "as-of" queries in historical
    /// databases, §2).
    pub fn created_stamp(&self, tx: &mut impl PageRead, vid: Vid) -> Result<u64> {
        Ok(self.version_meta(tx, vid)?.created)
    }

    /// The newest version of `oid` created at or before `stamp`
    /// (`None` when the object's oldest surviving version is newer).
    ///
    /// Walks the temporal chain backwards from the latest version, so
    /// recent as-of points are cheap.
    pub fn version_as_of(
        &self,
        tx: &mut impl PageRead,
        oid: Oid,
        stamp: u64,
    ) -> Result<Option<Vid>> {
        let mut cur = self.object_meta(tx, oid)?.latest;
        while !cur.is_null() {
            let meta = self.version_meta(tx, cur)?;
            if meta.created <= stamp {
                return Ok(Some(cur));
            }
            cur = meta.tprev;
        }
        Ok(None)
    }

    /// The current global creation stamp (the stamp the *next* version
    /// will exceed). Capture this to name a database-wide moment.
    pub fn now_stamp(&self, tx: &mut impl PageRead) -> Result<u64> {
        Ok(self.vids.last(tx)?)
    }

    /// All live objects of a type, in oid order (the O++ extent query).
    pub fn objects_of_type(&self, tx: &mut impl PageRead, tag: TypeTag) -> Result<Vec<Oid>> {
        Ok(self
            .extents
            .members(tx, tag)?
            .into_iter()
            .map(Oid)
            .collect())
    }

    /// A page of the type's extent: up to `limit` oids `>= from`, in
    /// oid order (cursor-style iteration for extents too large to
    /// materialize).
    pub fn objects_of_type_from(
        &self,
        tx: &mut impl PageRead,
        tag: TypeTag,
        from: Oid,
        limit: usize,
    ) -> Result<Vec<Oid>> {
        Ok(self
            .extents
            .members_from(tx, tag, from.0, limit)?
            .into_iter()
            .map(Oid)
            .collect())
    }

    /// Whether an object id is live.
    pub fn object_exists(&self, tx: &mut impl PageRead, oid: Oid) -> Result<bool> {
        Ok(self.obj_table.get(tx, oid.0)?.is_some())
    }

    /// Whether a version id is live.
    pub fn version_exists(&self, tx: &mut impl PageRead, vid: Vid) -> Result<bool> {
        Ok(self.ver_table.get(tx, vid.0)?.is_some())
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests, fsck)
    // ------------------------------------------------------------------

    /// Verify the structural invariants of one object's version graph:
    /// temporal chain doubly linked with `latest` at the tail and
    /// `version_count` entries, creation stamps strictly ascending along
    /// it, derived-from links forming a forest consistent with `dnext`
    /// lists.
    pub fn check_object(&self, tx: &mut impl PageRead, oid: Oid) -> Result<()> {
        use std::collections::HashSet;
        let object = self.object_meta(tx, oid)?;
        let history = self.version_history(tx, oid)?;
        let corrupt = |msg: &'static str| -> VersionError {
            VersionError::Storage(ode_storage::StorageError::TreeCorrupt(msg))
        };
        if history.len() as u64 != object.version_count {
            return Err(corrupt("version_count mismatch"));
        }
        if *history.last().expect("non-empty history") != object.latest {
            return Err(corrupt("latest is not the temporal tail"));
        }
        let live: HashSet<Vid> = history.iter().copied().collect();
        let mut last_created = 0;
        let mut prev = Vid::NULL;
        for &vid in &history {
            let meta = self.version_meta(tx, vid)?;
            if meta.oid != oid {
                return Err(corrupt("version belongs to another object"));
            }
            if meta.tprev != prev {
                return Err(corrupt("temporal chain back-link broken"));
            }
            if meta.created <= last_created {
                return Err(corrupt("creation stamps not ascending"));
            }
            last_created = meta.created;
            if !meta.dprev.is_null() {
                if !live.contains(&meta.dprev) {
                    return Err(corrupt("dprev points at a dead version"));
                }
                let parent = self.version_meta(tx, meta.dprev)?;
                if !parent.dnext.contains(&vid) {
                    return Err(corrupt("parent does not list child"));
                }
            }
            for &child in &meta.dnext {
                if !live.contains(&child) {
                    return Err(corrupt("dnext lists a dead version"));
                }
                if self.version_meta(tx, child)?.dprev != vid {
                    return Err(corrupt("child does not point at parent"));
                }
            }
            prev = vid;
        }
        if !live.contains(&object.root) {
            return Err(corrupt("root is not a live version"));
        }
        Ok(())
    }
}
