//! The version graph engine: create, derive, update, delete, traverse.

use ode_codec::TypeTag;
use ode_object::{Extents, IdAllocator, KvTable, ObjectHeap, Oid, Vid};
use ode_storage::heap::RecordId;
use ode_storage::{PageRead, PageWrite};

use crate::cache::MaterializeCache;
use crate::chain::{ChainConfig, ChainLink, ChainStats, ObjectChain, VersionDiff};
use crate::records::{ObjectMeta, VersionMeta};
use crate::{Result, VersionError};

/// Root-slot assignment for a [`VersionStore`]'s seven persistent
/// components. The default occupies slots 0–6, leaving 7–15 free for the
/// embedding application.
#[derive(Debug, Clone, Copy)]
pub struct VersionStoreLayout {
    /// Slot of the oid → object-record table.
    pub obj_table_slot: usize,
    /// Slot of the vid → version-record table.
    pub ver_table_slot: usize,
    /// Slot of the record heap.
    pub heap_slot: usize,
    /// Slot of the object-id counter.
    pub oid_slot: usize,
    /// Slot of the version-id counter.
    pub vid_slot: usize,
    /// Slot of the per-type extent directory.
    pub extent_slot: usize,
    /// Slot of the oid → delta-chain-record table (empty unless chain
    /// storage has ever been enabled on this store).
    pub chain_table_slot: usize,
}

impl Default for VersionStoreLayout {
    fn default() -> Self {
        VersionStoreLayout {
            obj_table_slot: 0,
            ver_table_slot: 1,
            heap_slot: 2,
            oid_slot: 3,
            vid_slot: 4,
            extent_slot: 5,
            chain_table_slot: 6,
        }
    }
}

/// The version graph over a transactional page store.
///
/// All operations take a storage transaction; the store itself is a cheap
/// `Copy` handle binding the root-slot layout.
///
/// ```
/// use ode_codec::TypeTag;
/// use ode_storage::{Store, StoreOptions};
/// use ode_version::{VersionStore, VersionStoreLayout};
///
/// # let path = std::env::temp_dir().join(format!("vs-doc-{}", std::process::id()));
/// let store = Store::create(&path, StoreOptions::default()).unwrap();
/// let vs = VersionStore::new(VersionStoreLayout::default());
/// const TAG: TypeTag = TypeTag::from_name("doc/Obj");
///
/// let mut tx = store.begin();
/// let (oid, v0) = vs.create_object(&mut tx, TAG, b"state-0".to_vec()).unwrap();
/// let v1 = vs.new_version_from(&mut tx, v0).unwrap();
/// vs.write_body(&mut tx, v1, TAG, b"state-1".to_vec()).unwrap();
/// assert_eq!(vs.latest(&mut tx, oid).unwrap(), v1);
/// assert_eq!(vs.dprevious(&mut tx, v1).unwrap(), Some(v0));
/// assert_eq!(vs.read_body(&mut tx, v0, TAG).unwrap(), b"state-0");
/// vs.check_object(&mut tx, oid).unwrap();
/// tx.commit().unwrap();
/// # drop(store);
/// # let _ = std::fs::remove_file(&path);
/// # let mut w = path.into_os_string(); w.push(".wal");
/// # let _ = std::fs::remove_file(std::path::PathBuf::from(w));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VersionStore {
    obj_table: KvTable,
    ver_table: KvTable,
    heap: ObjectHeap,
    oids: IdAllocator,
    vids: IdAllocator,
    extents: Extents,
    chain_table: KvTable,
    /// When set, *new* versions are stored delta-chained. Existing chain
    /// records are honored and maintained regardless — correctness is
    /// driven by the stored state, the config only gates new chains.
    chain: Option<ChainConfig>,
}

impl VersionStore {
    /// Bind a version store to a slot layout (whole-body storage for
    /// new versions; existing chain records still honored).
    pub fn new(layout: VersionStoreLayout) -> VersionStore {
        VersionStore {
            obj_table: KvTable::new(layout.obj_table_slot),
            ver_table: KvTable::new(layout.ver_table_slot),
            heap: ObjectHeap::new(layout.heap_slot),
            oids: IdAllocator::new(layout.oid_slot),
            vids: IdAllocator::new(layout.vid_slot),
            extents: Extents::new(layout.extent_slot),
            chain_table: KvTable::new(layout.chain_table_slot),
            chain: None,
        }
    }

    /// Bind a version store with delta-chain storage enabled: an
    /// object's second and later versions are stored as one anchored
    /// chain record instead of whole copies. Opening an existing
    /// whole-body database this way is the migration path — old
    /// versions keep their whole records, new versions chain.
    pub fn with_chain(layout: VersionStoreLayout, config: ChainConfig) -> VersionStore {
        VersionStore {
            chain: Some(config),
            ..VersionStore::new(layout)
        }
    }

    /// The chain config new versions are stored under, if any.
    pub fn chain_config(&self) -> Option<ChainConfig> {
        self.chain
    }

    // ------------------------------------------------------------------
    // Record plumbing
    // ------------------------------------------------------------------

    /// Load an object record.
    pub fn object_meta(&self, tx: &mut impl PageRead, oid: Oid) -> Result<ObjectMeta> {
        let rid = self
            .obj_table
            .get(tx, oid.0)?
            .ok_or(VersionError::UnknownObject(oid))?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    /// Load a version record.
    pub fn version_meta(&self, tx: &mut impl PageRead, vid: Vid) -> Result<VersionMeta> {
        let rid = self
            .ver_table
            .get(tx, vid.0)?
            .ok_or(VersionError::UnknownVersion(vid))?;
        Ok(self.heap.load(tx, RecordId::from_u64(rid))?)
    }

    fn save_object(&self, tx: &mut impl PageWrite, meta: &ObjectMeta) -> Result<()> {
        match self.obj_table.get(tx, meta.oid.0)? {
            Some(rid) => {
                let new_rid = self.heap.replace(tx, RecordId::from_u64(rid), meta)?;
                if new_rid.to_u64() != rid {
                    self.obj_table.put(tx, meta.oid.0, new_rid.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, meta)?;
                self.obj_table.put(tx, meta.oid.0, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn save_version(&self, tx: &mut impl PageWrite, meta: &VersionMeta) -> Result<()> {
        match self.ver_table.get(tx, meta.vid.0)? {
            Some(rid) => {
                let new_rid = self.heap.replace(tx, RecordId::from_u64(rid), meta)?;
                if new_rid.to_u64() != rid {
                    self.ver_table.put(tx, meta.vid.0, new_rid.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, meta)?;
                self.ver_table.put(tx, meta.vid.0, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn drop_version_record(&self, tx: &mut impl PageWrite, vid: Vid) -> Result<()> {
        if let Some(rid) = self.ver_table.remove(tx, vid.0)? {
            self.heap.delete(tx, RecordId::from_u64(rid))?;
        }
        Ok(())
    }

    /// Load an object's delta-chain record, if it has one.
    pub fn load_chain(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Option<ObjectChain>> {
        match self.chain_table.get(tx, oid.0)? {
            Some(rid) => Ok(Some(self.heap.load(tx, RecordId::from_u64(rid))?)),
            None => Ok(None),
        }
    }

    fn save_chain(&self, tx: &mut impl PageWrite, oid: Oid, chain: &ObjectChain) -> Result<()> {
        match self.chain_table.get(tx, oid.0)? {
            Some(rid) => {
                let new_rid = self.heap.replace(tx, RecordId::from_u64(rid), chain)?;
                if new_rid.to_u64() != rid {
                    self.chain_table.put(tx, oid.0, new_rid.to_u64())?;
                }
            }
            None => {
                let rid = self.heap.store(tx, chain)?;
                self.chain_table.put(tx, oid.0, rid.to_u64())?;
            }
        }
        Ok(())
    }

    fn drop_chain(&self, tx: &mut impl PageWrite, oid: Oid) -> Result<()> {
        if let Some(rid) = self.chain_table.remove(tx, oid.0)? {
            self.heap.delete(tx, RecordId::from_u64(rid))?;
        }
        Ok(())
    }

    /// A version's state, given its meta and (optionally) its object's
    /// chain: whole meta bodies win, empty bodies fall back to chain
    /// materialization, and a vid absent from both is genuinely empty.
    fn body_of(&self, meta: &VersionMeta, chain: Option<&ObjectChain>) -> Result<Vec<u8>> {
        if !meta.body.is_empty() {
            return Ok(meta.body.clone());
        }
        if let Some(c) = chain {
            if let Some(state) = c.state_of(meta.vid)? {
                return Ok(state);
            }
        }
        Ok(Vec::new())
    }

    // ------------------------------------------------------------------
    // pnew / newversion / pdelete
    // ------------------------------------------------------------------

    /// `pnew`: create a persistent object with its first version.
    pub fn create_object(
        &self,
        tx: &mut impl PageWrite,
        tag: TypeTag,
        body: Vec<u8>,
    ) -> Result<(Oid, Vid)> {
        let oid = Oid(self.oids.next(tx)?);
        let vid = Vid(self.vids.next(tx)?);
        let version = VersionMeta {
            vid,
            oid,
            tag,
            dprev: Vid::NULL,
            dprev2: Vid::NULL,
            dnext: Vec::new(),
            tprev: Vid::NULL,
            tnext: Vid::NULL,
            created: vid.0,
            body,
        };
        let object = ObjectMeta {
            oid,
            tag,
            root: vid,
            latest: vid,
            version_count: 1,
        };
        self.save_version(tx, &version)?;
        self.save_object(tx, &object)?;
        self.extents.add(tx, tag, oid.0)?;
        Ok((oid, vid))
    }

    /// `newversion(o)` — derive from the object's latest version.
    pub fn new_version_of(&self, tx: &mut impl PageWrite, oid: Oid) -> Result<Vid> {
        let latest = self.object_meta(tx, oid)?.latest;
        self.new_version_from(tx, latest)
    }

    /// `newversion(v)` — derive a new version from a specific base.
    ///
    /// The new version starts as a copy of the base's state, becomes a
    /// derived-from child of the base, and is appended at the temporal
    /// tail (so it is the object's new latest version, regardless of
    /// where in the tree the base sits — exactly the paper's v2-from-v0
    /// "alternative" figure).
    pub fn new_version_from(&self, tx: &mut impl PageWrite, base: Vid) -> Result<Vid> {
        let mut base_meta = self.version_meta(tx, base)?;
        let mut object = self.object_meta(tx, base_meta.oid)?;
        let mut chain = self.load_chain(tx, object.oid)?;
        let vid = Vid(self.vids.next(tx)?);

        // The base's state: its whole meta body, or — when the base is
        // a historical chain member whose body was cleared — its
        // materialization off the chain.
        let base_state = self.body_of(&base_meta, chain.as_ref())?;

        let version = VersionMeta {
            vid,
            oid: object.oid,
            tag: object.tag,
            dprev: base,
            dprev2: Vid::NULL,
            dnext: Vec::new(),
            tprev: object.latest,
            tnext: Vid::NULL,
            created: vid.0,
            body: base_state,
        };

        base_meta.dnext.push(vid);
        self.save_version(tx, &base_meta)?;
        self.check_in(tx, &mut object, &mut chain, &version)?;
        Ok(vid)
    }

    /// `merge(a, b)` check-in: record `body` (the reconciled state) as
    /// a new version with **both** parents — the derived-from
    /// structure's first DAG edges. The merged version becomes the
    /// object's latest, exactly like any other check-in; the policy
    /// and conflict questions live above this layer (`ode-merge`).
    ///
    /// `a` and `b` must be distinct versions of the same object.
    pub fn new_merge_version(
        &self,
        tx: &mut impl PageWrite,
        a: Vid,
        b: Vid,
        body: Vec<u8>,
    ) -> Result<Vid> {
        let mut a_meta = self.version_meta(tx, a)?;
        let mut b_meta = self.version_meta(tx, b)?;
        if a == b || a_meta.oid != b_meta.oid {
            return Err(VersionError::MergeMismatch { a, b });
        }
        let mut object = self.object_meta(tx, a_meta.oid)?;
        let mut chain = self.load_chain(tx, object.oid)?;
        let vid = Vid(self.vids.next(tx)?);

        let version = VersionMeta {
            vid,
            oid: object.oid,
            tag: object.tag,
            dprev: a,
            dprev2: b,
            dnext: Vec::new(),
            tprev: object.latest,
            tnext: Vid::NULL,
            created: vid.0,
            body,
        };

        a_meta.dnext.push(vid);
        b_meta.dnext.push(vid);
        self.save_version(tx, &a_meta)?;
        self.save_version(tx, &b_meta)?;
        self.check_in(tx, &mut object, &mut chain, &version)?;
        Ok(vid)
    }

    /// Append a fully-formed new version at the object's temporal tail
    /// and make it the latest. Expects the parents' `dnext` lists to be
    /// updated and saved already; reloads the temporal tail afterwards
    /// (it may *be* a parent whose saved record now carries the new
    /// `dnext` entry).
    fn check_in(
        &self,
        tx: &mut impl PageWrite,
        object: &mut ObjectMeta,
        chain: &mut Option<ObjectChain>,
        version: &VersionMeta,
    ) -> Result<()> {
        let mut tail = self.version_meta(tx, object.latest)?;
        tail.tnext = version.vid;
        if chain.is_some() || self.chain.is_some() {
            // Chain storage: the outgoing latest surrenders its whole
            // body to the chain (as the delta base / lazy first anchor)
            // and the new version becomes the chain's last entry. The
            // new latest keeps its whole body in its meta, so latest
            // reads never touch the chain.
            let prev_state = std::mem::take(&mut tail.body);
            let c = match chain.as_mut() {
                Some(c) => c,
                None => {
                    // First chained version of this object: the chain
                    // starts at the outgoing latest, snapshotted whole.
                    // Any older versions keep their whole-body records
                    // (the migration path for pre-chain databases).
                    *chain = Some(ObjectChain::new(
                        self.chain.expect("checked above"),
                        object.latest,
                        prev_state.clone(),
                    ));
                    chain.as_mut().expect("just set")
                }
            };
            c.append(version.vid, &prev_state, &version.body);
        }
        self.save_version(tx, &tail)?;

        self.save_version(tx, version)?;
        if let Some(c) = chain.as_ref() {
            self.save_chain(tx, object.oid, c)?;
        }
        object.latest = version.vid;
        object.version_count += 1;
        self.save_object(tx, object)?;
        Ok(())
    }

    /// `pdelete` on an object id: the object and *all* its versions go.
    pub fn delete_object(&self, tx: &mut impl PageWrite, oid: Oid) -> Result<()> {
        let object = self.object_meta(tx, oid)?;
        // Walk the temporal chain backwards from the latest version.
        let mut cur = object.latest;
        while !cur.is_null() {
            let meta = self.version_meta(tx, cur)?;
            self.drop_version_record(tx, cur)?;
            cur = meta.tprev;
        }
        if let Some(rid) = self.obj_table.remove(tx, oid.0)? {
            self.heap.delete(tx, RecordId::from_u64(rid))?;
        }
        self.drop_chain(tx, oid)?;
        self.extents.remove(tx, object.tag, oid.0)?;
        Ok(())
    }

    /// `pdelete` on a version id: remove one version, splicing the
    /// temporal chain and the derived-from tree around it (children are
    /// re-parented to the deleted version's own parent).
    ///
    /// Deleting the last remaining version is refused — use
    /// [`VersionStore::delete_object`].
    pub fn delete_version(&self, tx: &mut impl PageWrite, vid: Vid) -> Result<()> {
        let meta = self.version_meta(tx, vid)?;
        let mut object = self.object_meta(tx, meta.oid)?;
        if object.version_count <= 1 {
            return Err(VersionError::LastVersion(vid));
        }

        // Chain repair, computed before the graph splices so replayed
        // states come from the untouched record. Deleting the latest
        // promotes its temporal predecessor back to a whole meta body
        // (so the new latest stays O(1) to read); deleting a historical
        // member re-bases or re-anchors its successor inside the chain.
        let mut chain = self.load_chain(tx, object.oid)?;
        let mut promoted_body: Option<Vec<u8>> = None;
        let mut drop_chain = false;
        let mut chain_dirty = false;
        if let Some(c) = chain.as_mut() {
            if let Some(idx) = c.index_of(vid) {
                if vid == object.latest {
                    if c.entries.len() == 1 {
                        // The chain held only the latest; the object
                        // falls back to pre-chain whole-body versions.
                        drop_chain = true;
                    } else {
                        promoted_body = Some(c.state_at(idx - 1)?);
                        c.remove_at(idx)?;
                        chain_dirty = true;
                    }
                } else {
                    c.remove_at(idx)?;
                    chain_dirty = true;
                }
            }
        }

        // Temporal splice.
        if !meta.tprev.is_null() {
            let mut prev = self.version_meta(tx, meta.tprev)?;
            prev.tnext = meta.tnext;
            if object.latest == vid {
                if let Some(body) = promoted_body.take() {
                    prev.body = body;
                }
            }
            self.save_version(tx, &prev)?;
        }
        if !meta.tnext.is_null() {
            let mut next = self.version_meta(tx, meta.tnext)?;
            next.tprev = meta.tprev;
            self.save_version(tx, &next)?;
        }
        if object.latest == vid {
            // vid was the tail, so its tprev exists (count > 1).
            object.latest = meta.tprev;
        }

        // Derivation splice: children adopt the deleted version's
        // primary parent in place of the lost edge. A merge child may
        // lose only one of its two parent edges; if the adoption would
        // duplicate its surviving edge, the duplicate collapses and no
        // new edge is created.
        let fallback = meta.dprev;
        let mut adopted: Vec<Vid> = Vec::new();
        for &child in &meta.dnext {
            let mut c = self.version_meta(tx, child)?;
            // The child's parent slot not being re-pointed.
            let other = if c.dprev == vid { c.dprev2 } else { c.dprev };
            if !fallback.is_null() && other != fallback {
                // The child gains a genuinely new edge to the fallback
                // parent and takes over the deleted version's dnext
                // position there.
                adopted.push(child);
            }
            if c.dprev == vid {
                c.dprev = fallback;
            } else {
                c.dprev2 = fallback;
            }
            // Normalize: collapse a duplicated edge, keep the primary
            // slot occupied first.
            if !c.dprev2.is_null() {
                if c.dprev2 == c.dprev {
                    c.dprev2 = Vid::NULL;
                } else if c.dprev.is_null() {
                    c.dprev = c.dprev2;
                    c.dprev2 = Vid::NULL;
                }
            }
            self.save_version(tx, &c)?;
        }
        if !meta.dprev.is_null() {
            let mut parent = self.version_meta(tx, meta.dprev)?;
            let pos = parent
                .dnext
                .iter()
                .position(|&v| v == vid)
                .expect("parent lists child");
            // Adopted children take the deleted version's position,
            // preserving derivation order.
            parent.dnext.splice(pos..=pos, adopted.iter().copied());
            self.save_version(tx, &parent)?;
        }
        if !meta.dprev2.is_null() {
            // The deleted version was itself a merge: its second parent
            // simply loses the edge (children were spliced under the
            // primary parent above).
            let mut parent = self.version_meta(tx, meta.dprev2)?;
            parent.dnext.retain(|&v| v != vid);
            self.save_version(tx, &parent)?;
        }
        if object.root == vid {
            // The root moves to the first re-parented child, or — when
            // the deleted root was childless — to the oldest live
            // version (the temporal splices above already bypass `vid`).
            object.root = match meta.dnext.first() {
                Some(&child) => child,
                None => {
                    let mut head = object.latest;
                    loop {
                        let m = self.version_meta(tx, head)?;
                        if m.tprev.is_null() {
                            break head;
                        }
                        head = m.tprev;
                    }
                }
            };
        }

        object.version_count -= 1;
        self.save_object(tx, &object)?;
        if drop_chain {
            self.drop_chain(tx, object.oid)?;
        } else if chain_dirty {
            let c = chain.as_ref().expect("dirty implies loaded");
            self.save_chain(tx, object.oid, c)?;
        }
        self.drop_version_record(tx, vid)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads and updates
    // ------------------------------------------------------------------

    /// The latest version id of an object (what a generic reference
    /// binds to *at access time*).
    pub fn latest(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vid> {
        Ok(self.object_meta(tx, oid)?.latest)
    }

    /// The object a version belongs to.
    pub fn object_of(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Oid> {
        Ok(self.version_meta(tx, vid)?.oid)
    }

    /// Read a version's body, type-checked against `expected`.
    pub fn read_body(
        &self,
        tx: &mut impl PageRead,
        vid: Vid,
        expected: TypeTag,
    ) -> Result<Vec<u8>> {
        self.read_body_cached(tx, vid, expected, None)
    }

    /// [`read_body`](VersionStore::read_body) with an optional
    /// materialization cache keyed by commit epoch. Only chain
    /// materializations are cached (whole meta bodies are already one
    /// record load); pass `None` from write transactions — their own
    /// uncommitted edits don't move the epoch, so cached bodies could
    /// mask them.
    pub fn read_body_cached(
        &self,
        tx: &mut impl PageRead,
        vid: Vid,
        expected: TypeTag,
        cache: Option<(&MaterializeCache, u64)>,
    ) -> Result<Vec<u8>> {
        let meta = self.version_meta(tx, vid)?;
        if meta.tag != expected {
            return Err(VersionError::TypeMismatch {
                expected,
                found: meta.tag,
            });
        }
        // The latest version (and every pre-chain version) stores its
        // body whole: zero chain overhead on the hot path.
        if !meta.body.is_empty() {
            return Ok(meta.body);
        }
        if let Some((cache, epoch)) = cache {
            if let Some(body) = cache.get(epoch, vid.0) {
                return Ok(body);
            }
        }
        // Empty meta body: either a cleared chain member or a genuinely
        // empty version — chain membership disambiguates.
        if let Some(chain) = self.load_chain(tx, meta.oid)? {
            if let Some(state) = chain.state_of(vid)? {
                if let Some((cache, epoch)) = cache {
                    cache.put(epoch, vid.0, state.clone());
                }
                return Ok(state);
            }
        }
        Ok(Vec::new())
    }

    /// Overwrite a version's body in place (no new version is created —
    /// this is ordinary mutation through a pointer in O++).
    ///
    /// For a chained version the chain entry is re-diffed (and the
    /// successor's delta re-based); the latest version's whole meta
    /// body is kept in step.
    pub fn write_body(
        &self,
        tx: &mut impl PageWrite,
        vid: Vid,
        expected: TypeTag,
        body: Vec<u8>,
    ) -> Result<()> {
        let mut meta = self.version_meta(tx, vid)?;
        if meta.tag != expected {
            return Err(VersionError::TypeMismatch {
                expected,
                found: meta.tag,
            });
        }
        let mut chain = self.load_chain(tx, meta.oid)?;
        let idx = chain.as_ref().and_then(|c| c.index_of(vid));
        match (chain.as_mut(), idx) {
            (Some(c), Some(idx)) => {
                c.set_state_at(idx, &body)?;
                if idx + 1 == c.entries.len() {
                    // vid is the latest: keep its whole meta body.
                    meta.body = body;
                    self.save_version(tx, &meta)?;
                }
                self.save_chain(tx, meta.oid, c)
            }
            _ => {
                meta.body = body;
                self.save_version(tx, &meta)
            }
        }
    }

    // ------------------------------------------------------------------
    // Traversal (Dprevious / Tprevious and friends)
    // ------------------------------------------------------------------

    /// `Dprevious`: the version this one was derived from.
    pub fn dprevious(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.dprev;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// `Dnext`: versions derived from this one, in creation order.
    pub fn dnext(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Vec<Vid>> {
        Ok(self.version_meta(tx, vid)?.dnext)
    }

    /// `Tprevious`: the version created immediately before this one.
    pub fn tprevious(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.tprev;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// `Tnext`: the version created immediately after this one.
    pub fn tnext(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Option<Vid>> {
        let v = self.version_meta(tx, vid)?.tnext;
        Ok(if v.is_null() { None } else { Some(v) })
    }

    /// All versions of an object in temporal order (oldest first).
    pub fn version_history(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vec<Vid>> {
        let object = self.object_meta(tx, oid)?;
        let mut out = Vec::with_capacity(object.version_count as usize);
        let mut cur = object.latest;
        while !cur.is_null() {
            out.push(cur);
            cur = self.version_meta(tx, cur)?.tprev;
        }
        out.reverse();
        Ok(out)
    }

    /// The derivation path from `vid` back to a root (vid first).
    pub fn derivation_path(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Vec<Vid>> {
        let mut out = vec![vid];
        let mut cur = vid;
        loop {
            let prev = self.version_meta(tx, cur)?.dprev;
            if prev.is_null() {
                return Ok(out);
            }
            out.push(prev);
            cur = prev;
        }
    }

    /// All ancestors of `vid` in the derived-from graph — `vid` itself
    /// first, then strictly descending creation order — following
    /// *both* parents of merge versions.
    ///
    /// Reads only version records (graph links); no body is ever
    /// materialized, so the walk is cheap even on chain-backed stores.
    pub fn ancestors(&self, tx: &mut impl PageRead, vid: Vid) -> Result<Vec<Vid>> {
        use std::collections::{BinaryHeap, HashSet};
        // Validate the starting vid eagerly so callers get
        // UnknownVersion rather than an empty walk.
        self.version_meta(tx, vid)?;
        let mut seen: HashSet<Vid> = HashSet::new();
        let mut heap: BinaryHeap<Vid> = BinaryHeap::new();
        seen.insert(vid);
        heap.push(vid);
        let mut out = Vec::new();
        // Max-heap by vid == by creation stamp (`created` is `vid.0`),
        // and parents are always older than children, so popping the
        // max yields strictly descending creation order.
        while let Some(v) = heap.pop() {
            out.push(v);
            let meta = self.version_meta(tx, v)?;
            for p in meta.parents() {
                if seen.insert(p) {
                    heap.push(p);
                }
            }
        }
        Ok(out)
    }

    /// The lowest common ancestor of two versions: of all versions
    /// reachable from both `a` and `b` along derived-from edges
    /// (inclusive), the one with the greatest creation stamp. `None`
    /// when the two share no ancestry (possible after version
    /// deletions split the derivation forest, or across objects).
    ///
    /// This is the merge base: the newest state both sides have seen.
    pub fn common_ancestor(&self, tx: &mut impl PageRead, a: Vid, b: Vid) -> Result<Option<Vid>> {
        use std::collections::{BinaryHeap, HashSet};
        let a_set: HashSet<Vid> = self.ancestors(tx, a)?.into_iter().collect();
        // Walk b's ancestry newest-first; the first member of a's set
        // encountered is the greatest common stamp.
        self.version_meta(tx, b)?;
        let mut seen: HashSet<Vid> = HashSet::new();
        let mut heap: BinaryHeap<Vid> = BinaryHeap::new();
        seen.insert(b);
        heap.push(b);
        while let Some(v) = heap.pop() {
            if a_set.contains(&v) {
                return Ok(Some(v));
            }
            let meta = self.version_meta(tx, v)?;
            for p in meta.parents() {
                if seen.insert(p) {
                    heap.push(p);
                }
            }
        }
        Ok(None)
    }

    /// Leaves of the derived-from tree: "each leaf represents the most
    /// up-to-date version of an alternative design".
    pub fn derivation_leaves(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Vec<Vid>> {
        let mut leaves = Vec::new();
        for vid in self.version_history(tx, oid)? {
            if self.version_meta(tx, vid)?.is_derivation_leaf() {
                leaves.push(vid);
            }
        }
        Ok(leaves)
    }

    /// Number of live versions of an object.
    pub fn version_count(&self, tx: &mut impl PageRead, oid: Oid) -> Result<u64> {
        Ok(self.object_meta(tx, oid)?.version_count)
    }

    /// A version's global creation stamp (monotone across the whole
    /// database — the basis for temporal "as-of" queries in historical
    /// databases, §2).
    pub fn created_stamp(&self, tx: &mut impl PageRead, vid: Vid) -> Result<u64> {
        Ok(self.version_meta(tx, vid)?.created)
    }

    /// The newest version of `oid` created at or before `stamp`
    /// (`None` when the object's oldest surviving version is newer).
    ///
    /// Walks the temporal chain backwards from the latest version, so
    /// recent as-of points are cheap.
    pub fn version_as_of(
        &self,
        tx: &mut impl PageRead,
        oid: Oid,
        stamp: u64,
    ) -> Result<Option<Vid>> {
        let mut cur = self.object_meta(tx, oid)?.latest;
        while !cur.is_null() {
            let meta = self.version_meta(tx, cur)?;
            if meta.created <= stamp {
                return Ok(Some(cur));
            }
            cur = meta.tprev;
        }
        Ok(None)
    }

    /// The current global creation stamp (the stamp the *next* version
    /// will exceed). Capture this to name a database-wide moment.
    pub fn now_stamp(&self, tx: &mut impl PageRead) -> Result<u64> {
        Ok(self.vids.last(tx)?)
    }

    /// All versions of `oid` created in the stamp range `[from, to]`
    /// (inclusive), oldest first — "all versions of X between epochs".
    ///
    /// Chained history is answered straight off the chain record's vid
    /// index with **no per-version record loads**; only versions older
    /// than the chain (or of a chain-less object) fall back to the
    /// temporal walk, which early-terminates below `from`.
    pub fn history_between(
        &self,
        tx: &mut impl PageRead,
        oid: Oid,
        from: u64,
        to: u64,
    ) -> Result<Vec<Vid>> {
        let object = self.object_meta(tx, oid)?;
        if from > to {
            return Ok(Vec::new());
        }
        // Backward temporal walk from `start`, collecting stamps in
        // range (stamps strictly ascend temporally, so the walk stops
        // at the first stamp below `from`).
        let walk = |vs: &Self, tx: &mut _, start: Vid| -> Result<Vec<Vid>> {
            let mut out = Vec::new();
            let mut cur = start;
            while !cur.is_null() {
                let meta = vs.version_meta(tx, cur)?;
                if meta.created < from {
                    break;
                }
                if meta.created <= to {
                    out.push(cur);
                }
                cur = meta.tprev;
            }
            out.reverse();
            Ok(out)
        };
        match self.load_chain(tx, oid)? {
            Some(chain) => {
                let first = chain.entries[0].vid;
                let mut out = if from < first.0 {
                    let pre_tail = self.version_meta(tx, first)?.tprev;
                    walk(self, tx, pre_tail)?
                } else {
                    Vec::new()
                };
                out.extend(
                    chain
                        .entries
                        .iter()
                        .map(|e| e.vid)
                        .filter(|v| v.0 >= from && v.0 <= to),
                );
                Ok(out)
            }
            None => walk(self, tx, object.latest),
        }
    }

    /// Summarize the difference between two versions' states —
    /// "diff v_a..v_b".
    ///
    /// When the two are adjacent members of the same object's chain,
    /// the stored delta is summarized directly (`stored = true`) with
    /// **no state materialized at all**; otherwise only the two
    /// endpoint states are materialized and diffed — never the
    /// intermediate versions between them.
    pub fn diff_versions(&self, tx: &mut impl PageRead, from: Vid, to: Vid) -> Result<VersionDiff> {
        let meta_a = self.version_meta(tx, from)?;
        let meta_b = self.version_meta(tx, to)?;
        let chain_a = self.load_chain(tx, meta_a.oid)?;
        if meta_a.oid == meta_b.oid {
            if let Some(c) = &chain_a {
                if let (Some(ia), Some(ib)) = (c.index_of(from), c.index_of(to)) {
                    if ib == ia + 1 {
                        if let ChainLink::Delta(d) = &c.entries[ib].link {
                            return Ok(VersionDiff::from_delta(from, to, d, true));
                        }
                    }
                }
            }
        }
        let chain_b_owned;
        let chain_b = if meta_b.oid == meta_a.oid {
            chain_a.as_ref()
        } else {
            chain_b_owned = self.load_chain(tx, meta_b.oid)?;
            chain_b_owned.as_ref()
        };
        let base = self.body_of(&meta_a, chain_a.as_ref())?;
        let target = self.body_of(&meta_b, chain_b)?;
        let block = chain_a
            .as_ref()
            .map(|c| c.block as usize)
            .unwrap_or(ode_delta::DEFAULT_BLOCK);
        let delta = ode_delta::diff_with_block(&base, &target, block);
        Ok(VersionDiff::from_delta(from, to, &delta, false))
    }

    /// Space/shape statistics of an object's chain record (`None` for
    /// objects without one). One full replay pass — fsck/odedump cost,
    /// not a hot path.
    pub fn chain_stats(&self, tx: &mut impl PageRead, oid: Oid) -> Result<Option<ChainStats>> {
        let chain = match self.load_chain(tx, oid)? {
            Some(c) => c,
            None => return Ok(None),
        };
        let mut materialized = 0u64;
        let mut state: Vec<u8> = Vec::new();
        for e in &chain.entries {
            state = match &e.link {
                ChainLink::Anchor(s) => s.clone(),
                ChainLink::Delta(d) => ode_delta::apply(&state, d)
                    .map_err(|_| VersionError::ChainCorrupt("chain entry failed to apply"))?,
            };
            materialized += state.len() as u64;
        }
        Ok(Some(ChainStats {
            versions: chain.entries.len() as u64,
            anchors: chain.anchors() as u64,
            deltas: chain.deltas() as u64,
            interval: chain.interval,
            encoded_bytes: chain.encoded_size() as u64,
            materialized_bytes: materialized,
        }))
    }

    /// All live objects of a type, in oid order (the O++ extent query).
    pub fn objects_of_type(&self, tx: &mut impl PageRead, tag: TypeTag) -> Result<Vec<Oid>> {
        Ok(self
            .extents
            .members(tx, tag)?
            .into_iter()
            .map(Oid)
            .collect())
    }

    /// A page of the type's extent: up to `limit` oids `>= from`, in
    /// oid order (cursor-style iteration for extents too large to
    /// materialize).
    pub fn objects_of_type_from(
        &self,
        tx: &mut impl PageRead,
        tag: TypeTag,
        from: Oid,
        limit: usize,
    ) -> Result<Vec<Oid>> {
        Ok(self
            .extents
            .members_from(tx, tag, from.0, limit)?
            .into_iter()
            .map(Oid)
            .collect())
    }

    /// Whether an object id is live.
    pub fn object_exists(&self, tx: &mut impl PageRead, oid: Oid) -> Result<bool> {
        Ok(self.obj_table.get(tx, oid.0)?.is_some())
    }

    /// Whether a version id is live.
    pub fn version_exists(&self, tx: &mut impl PageRead, vid: Vid) -> Result<bool> {
        Ok(self.ver_table.get(tx, vid.0)?.is_some())
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests, fsck)
    // ------------------------------------------------------------------

    /// Verify the structural invariants of one object's version graph:
    /// temporal chain doubly linked with `latest` at the tail and
    /// `version_count` entries, creation stamps strictly ascending along
    /// it, derived-from links forming a forest consistent with `dnext`
    /// lists.
    pub fn check_object(&self, tx: &mut impl PageRead, oid: Oid) -> Result<()> {
        use std::collections::HashSet;
        let object = self.object_meta(tx, oid)?;
        let history = self.version_history(tx, oid)?;
        let corrupt = |msg: &'static str| -> VersionError {
            VersionError::Storage(ode_storage::StorageError::TreeCorrupt(msg))
        };
        if history.len() as u64 != object.version_count {
            return Err(corrupt("version_count mismatch"));
        }
        if *history.last().expect("non-empty history") != object.latest {
            return Err(corrupt("latest is not the temporal tail"));
        }
        let live: HashSet<Vid> = history.iter().copied().collect();
        let mut last_created = 0;
        let mut prev = Vid::NULL;
        for &vid in &history {
            let meta = self.version_meta(tx, vid)?;
            if meta.oid != oid {
                return Err(corrupt("version belongs to another object"));
            }
            if meta.tprev != prev {
                return Err(corrupt("temporal chain back-link broken"));
            }
            if meta.created <= last_created {
                return Err(corrupt("creation stamps not ascending"));
            }
            last_created = meta.created;
            if !meta.dprev2.is_null() {
                if meta.dprev.is_null() {
                    return Err(corrupt("dprev2 set while dprev is null"));
                }
                if meta.dprev2 == meta.dprev {
                    return Err(corrupt("merge parents are not distinct"));
                }
            }
            for parent_vid in meta.parents() {
                if !live.contains(&parent_vid) {
                    return Err(corrupt("dprev points at a dead version"));
                }
                let parent = self.version_meta(tx, parent_vid)?;
                if !parent.dnext.contains(&vid) {
                    return Err(corrupt("parent does not list child"));
                }
                if parent.created >= meta.created {
                    return Err(corrupt("parent not older than child"));
                }
            }
            for &child in &meta.dnext {
                if !live.contains(&child) {
                    return Err(corrupt("dnext lists a dead version"));
                }
                let c = self.version_meta(tx, child)?;
                if c.dprev != vid && c.dprev2 != vid {
                    return Err(corrupt("child does not point at parent"));
                }
            }
            prev = vid;
        }
        if !live.contains(&object.root) {
            return Err(corrupt("root is not a live version"));
        }
        if let Some(chain) = self.load_chain(tx, oid)? {
            self.check_chain(tx, &object, &history, &chain)?;
        }
        Ok(())
    }

    /// Chain-specific invariants: the chain is a contiguous temporal
    /// suffix ending at `latest`, starts at an anchor, never runs
    /// `interval` deltas without one, replays to exactly the latest
    /// meta body, and every non-last member's meta body is cleared.
    fn check_chain(
        &self,
        tx: &mut impl PageRead,
        object: &ObjectMeta,
        history: &[Vid],
        chain: &ObjectChain,
    ) -> Result<()> {
        let corrupt = VersionError::ChainCorrupt;
        if chain.entries.is_empty() {
            return Err(corrupt("chain record has no entries"));
        }
        if chain.entries.len() > history.len() {
            return Err(corrupt("chain longer than the temporal history"));
        }
        let suffix = &history[history.len() - chain.entries.len()..];
        for (e, &vid) in chain.entries.iter().zip(suffix) {
            if e.vid != vid {
                return Err(corrupt("chain is not the temporal suffix"));
            }
        }
        if chain.entries.last().expect("non-empty").vid != object.latest {
            return Err(corrupt("chain does not end at the latest version"));
        }
        if !matches!(chain.entries[0].link, ChainLink::Anchor(_)) {
            return Err(corrupt("chain does not start at an anchor"));
        }
        let mut run = 0u64;
        let mut state: Vec<u8> = Vec::new();
        for (i, e) in chain.entries.iter().enumerate() {
            match &e.link {
                ChainLink::Anchor(s) => {
                    run = 0;
                    state = s.clone();
                }
                ChainLink::Delta(d) => {
                    run += 1;
                    if run >= chain.interval.max(1) {
                        return Err(corrupt("anchor interval exceeded"));
                    }
                    state = ode_delta::apply(&state, d)
                        .map_err(|_| corrupt("chain entry failed to apply"))?;
                }
            }
            let meta = self.version_meta(tx, e.vid)?;
            if i + 1 == chain.entries.len() {
                if meta.body != state {
                    return Err(corrupt("latest meta body disagrees with chain replay"));
                }
            } else if !meta.body.is_empty() {
                return Err(corrupt("historical chain member still stores a whole body"));
            }
        }
        Ok(())
    }
}
