//! Delta-chain body storage: one anchored chain record per object.
//!
//! The paper's §2 observation — versions can be stored as *differences*
//! along the derived-from relationship — applied to the production
//! engine.  When chain storage is enabled (see
//! [`ChainConfig`]), an object's version bodies live in a single
//! [`ObjectChain`] record instead of one whole copy per
//! [`VersionMeta`](crate::VersionMeta):
//!
//! * entries run in **temporal order** and always cover a suffix of the
//!   object's temporal history ending at the latest version (objects
//!   that predate chain storage keep their old whole-body records — the
//!   migration story for existing databases);
//! * `entries[0]` is always an [`ChainLink::Anchor`] (a full snapshot),
//!   and an anchor recurs at least every `interval` entries, so
//!   materializing **any** version applies at most `interval - 1`
//!   deltas;
//! * the **latest** version additionally keeps its whole body in its
//!   `VersionMeta.body` (the chain can reproduce it too — the meta copy
//!   is a read-path cache), so `latest()` reads cost exactly what
//!   whole-body storage costs; every *older* chain member's meta body is
//!   cleared.
//!
//! Version ids are allocated monotonically and entries are appended in
//! allocation order, so `entries` is sorted by vid and membership is a
//! binary search.

use ode_codec::{impl_persist_enum, impl_persist_struct};
use ode_delta::{apply, diff_with_block, Delta, DEFAULT_BLOCK};
use ode_object::Vid;

use crate::{Result, VersionError};

/// Per-store configuration for delta-chain body storage.
///
/// Chain storage is **opt-in**: a store without a config never creates
/// chain records (and an old database keeps decoding exactly as
/// before), while existing chain records are always honored and
/// maintained regardless of configuration — correctness is driven by
/// the stored state, the config only gates *new* chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Maximum spacing between anchors: any version materializes in at
    /// most `anchor_interval - 1` delta applications. Minimum 1 (every
    /// version a full snapshot).
    pub anchor_interval: u64,
    /// Block size for the binary diff (see `ode_delta::diff_with_block`).
    pub block: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            anchor_interval: 8,
            block: DEFAULT_BLOCK as u64,
        }
    }
}

impl ChainConfig {
    /// A config with the given anchor interval and the default block.
    pub fn with_interval(anchor_interval: u64) -> ChainConfig {
        ChainConfig {
            anchor_interval: anchor_interval.max(1),
            ..ChainConfig::default()
        }
    }
}

/// How one chain entry stores its version's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainLink {
    /// A full snapshot of the version's state.
    Anchor(Vec<u8>),
    /// A forward delta from the previous entry's state.
    Delta(Delta),
}

impl_persist_enum!(ChainLink { Anchor(a0), Delta(d0) });

/// One version's slot in an [`ObjectChain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEntry {
    /// The version this entry stores.
    pub vid: Vid,
    /// Snapshot or delta.
    pub link: ChainLink,
}

impl_persist_struct!(ChainEntry { vid, link });

/// The per-object chain record: every chained version's body, as
/// periodic anchors plus forward deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectChain {
    /// Anchor spacing this chain was built with.
    pub interval: u64,
    /// Diff block size.
    pub block: u64,
    /// Entries in temporal order (vids ascending).
    pub entries: Vec<ChainEntry>,
}

impl_persist_struct!(ObjectChain {
    interval,
    block,
    entries
});

pub(crate) fn chain_corrupt(msg: &'static str) -> VersionError {
    VersionError::ChainCorrupt(msg)
}

impl ObjectChain {
    /// Start a chain whose first entry snapshots `vid`'s state.
    pub fn new(config: ChainConfig, vid: Vid, state: Vec<u8>) -> ObjectChain {
        ObjectChain {
            interval: config.anchor_interval.max(1),
            block: config.block,
            entries: vec![ChainEntry {
                vid,
                link: ChainLink::Anchor(state),
            }],
        }
    }

    /// Index of `vid`'s entry, if this chain stores it.
    pub fn index_of(&self, vid: Vid) -> Option<usize> {
        self.entries.binary_search_by_key(&vid.0, |e| e.vid.0).ok()
    }

    /// Whether `vid`'s body is stored in this chain.
    pub fn contains(&self, vid: Vid) -> bool {
        self.index_of(vid).is_some()
    }

    /// Number of trailing delta entries since the last anchor.
    fn deltas_since_anchor(&self) -> usize {
        self.entries
            .iter()
            .rev()
            .take_while(|e| matches!(e.link, ChainLink::Delta(_)))
            .count()
    }

    /// Append a new version: an anchor on the interval boundary,
    /// otherwise a delta from `prev_state` (the current last entry's
    /// state, which the caller has whole — one diff, no replay).
    pub fn append(&mut self, vid: Vid, prev_state: &[u8], state: &[u8]) {
        let link = if self.deltas_since_anchor() as u64 + 1 >= self.interval {
            ChainLink::Anchor(state.to_vec())
        } else {
            ChainLink::Delta(diff_with_block(prev_state, state, self.block as usize))
        };
        self.entries.push(ChainEntry { vid, link });
    }

    /// Materialize entry `index`'s state: walk back to the nearest
    /// anchor (≤ `interval - 1` steps by construction) and apply
    /// forward.
    pub fn state_at(&self, index: usize) -> Result<Vec<u8>> {
        let anchor_idx = (0..=index)
            .rev()
            .find(|&i| matches!(self.entries[i].link, ChainLink::Anchor(_)))
            .ok_or_else(|| chain_corrupt("delta chain has no anchor before entry"))?;
        let mut state = match &self.entries[anchor_idx].link {
            ChainLink::Anchor(s) => s.clone(),
            ChainLink::Delta(_) => unreachable!("found as anchor"),
        };
        for entry in &self.entries[anchor_idx + 1..=index] {
            match &entry.link {
                ChainLink::Anchor(_) => unreachable!("scan stopped at nearest anchor"),
                ChainLink::Delta(d) => {
                    state = apply(&state, d)
                        .map_err(|_| chain_corrupt("delta chain entry failed to apply"))?;
                }
            }
        }
        Ok(state)
    }

    /// Materialize `vid`'s state, if stored here.
    pub fn state_of(&self, vid: Vid) -> Result<Option<Vec<u8>>> {
        match self.index_of(vid) {
            Some(idx) => Ok(Some(self.state_at(idx)?)),
            None => Ok(None),
        }
    }

    /// Replace entry `index`'s state with `state`, re-diffing its own
    /// link and (when `index` is not last) its successor's delta, which
    /// was based on the old state. Neighbors further away are
    /// unaffected: entry `index + 1` is re-based onto the new state and
    /// everything after it chains from there unchanged.
    pub fn set_state_at(&mut self, index: usize, state: &[u8]) -> Result<()> {
        let block = self.block as usize;
        // Old successor delta must be re-based before `index` changes.
        let rebased_next = match self.entries.get(index + 1) {
            Some(ChainEntry {
                link: ChainLink::Delta(_),
                ..
            }) => {
                let next_state = self.state_at(index + 1)?;
                Some(ChainLink::Delta(diff_with_block(state, &next_state, block)))
            }
            _ => None,
        };
        self.entries[index].link = match &self.entries[index].link {
            ChainLink::Anchor(_) => ChainLink::Anchor(state.to_vec()),
            ChainLink::Delta(_) => {
                let prev = self.state_at(index - 1)?;
                ChainLink::Delta(diff_with_block(&prev, state, block))
            }
        };
        if let Some(link) = rebased_next {
            self.entries[index + 1].link = link;
        }
        Ok(())
    }

    /// Remove entry `index`, repairing the neighborhood: a delta
    /// successor is re-based onto the previous surviving state, and a
    /// successor losing its anchor is promoted to an anchor itself
    /// (anchor spacing only ever shrinks, so the `interval - 1` bound
    /// survives any delete sequence).
    pub fn remove_at(&mut self, index: usize) -> Result<()> {
        let block = self.block as usize;
        let repaired = match (self.entries.get(index), self.entries.get(index + 1)) {
            (_, None) => None,
            (Some(removed), Some(next)) => match (&removed.link, &next.link) {
                (_, ChainLink::Anchor(_)) => None,
                (ChainLink::Anchor(_), ChainLink::Delta(_)) => {
                    // The successor's base anchor is going away: promote.
                    Some(ChainLink::Anchor(self.state_at(index + 1)?))
                }
                (ChainLink::Delta(_), ChainLink::Delta(_)) => {
                    let prev = self.state_at(index - 1)?;
                    let next_state = self.state_at(index + 1)?;
                    Some(ChainLink::Delta(diff_with_block(&prev, &next_state, block)))
                }
            },
            (None, _) => return Err(chain_corrupt("chain entry index out of range")),
        };
        if let Some(link) = repaired {
            self.entries[index + 1].link = link;
        }
        self.entries.remove(index);
        Ok(())
    }

    /// Number of anchor entries.
    pub fn anchors(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.link, ChainLink::Anchor(_)))
            .count()
    }

    /// Number of delta entries.
    pub fn deltas(&self) -> usize {
        self.entries.len() - self.anchors()
    }

    /// Encoded size of the whole chain record in bytes.
    pub fn encoded_size(&self) -> usize {
        ode_codec::to_bytes(self).len()
    }
}

/// Space and shape statistics for one object's chain record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStats {
    /// Versions stored in the chain.
    pub versions: u64,
    /// Full-snapshot entries.
    pub anchors: u64,
    /// Delta entries.
    pub deltas: u64,
    /// Anchor spacing the chain was built with.
    pub interval: u64,
    /// Encoded size of the chain record (what the heap actually
    /// stores), in bytes.
    pub encoded_bytes: u64,
    /// Sum of every stored version's materialized state length — what
    /// whole-body storage would hold for the same versions.
    pub materialized_bytes: u64,
}

impl ChainStats {
    /// Chain bytes as a fraction of whole-copy bytes (lower is better;
    /// 1.0 when the chain stores nothing smaller than full copies).
    pub fn compression_ratio(&self) -> f64 {
        if self.materialized_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.materialized_bytes as f64
        }
    }
}

/// Summary of the difference between two versions' states — the wire-
/// and CLI-facing result of `diff v_a..v_b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDiff {
    /// Base version.
    pub from: Vid,
    /// Target version.
    pub to: Vid,
    /// Length of the target state in bytes.
    pub to_len: u64,
    /// Number of copy/insert instructions.
    pub ops: u64,
    /// Bytes of literal (inserted) data — the part that does not dedupe
    /// against the base.
    pub literal_bytes: u64,
    /// Encoded size of the delta in bytes.
    pub encoded_bytes: u64,
    /// `true` when the delta came straight off the stored chain
    /// (adjacent versions) with no state materialized at all.
    pub stored: bool,
}

impl_persist_struct!(VersionDiff {
    from,
    to,
    to_len,
    ops,
    literal_bytes,
    encoded_bytes,
    stored,
});

impl VersionDiff {
    /// Build a summary from a computed (or stored) delta.
    pub fn from_delta(from: Vid, to: Vid, delta: &Delta, stored: bool) -> VersionDiff {
        VersionDiff {
            from,
            to,
            to_len: delta.target_len,
            ops: delta.ops.len() as u64,
            literal_bytes: delta.literal_bytes() as u64,
            encoded_bytes: delta.encoded_size() as u64,
            stored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evolution(n: usize, size: usize) -> Vec<Vec<u8>> {
        let mut state: Vec<u8> = (0..size).map(|i| (i % 249) as u8).collect();
        let mut out = vec![state.clone()];
        for step in 1..n {
            let idx = (step * 113) % size;
            state[idx] = state[idx].wrapping_add(step as u8);
            out.push(state.clone());
        }
        out
    }

    fn build(states: &[Vec<u8>], interval: u64) -> ObjectChain {
        let mut chain = ObjectChain::new(
            ChainConfig::with_interval(interval),
            Vid(1),
            states[0].clone(),
        );
        for (i, pair) in states.windows(2).enumerate() {
            chain.append(Vid(i as u64 + 2), &pair[0], &pair[1]);
        }
        chain
    }

    #[test]
    fn append_and_materialize_every_entry() {
        let states = evolution(17, 900);
        for interval in [1, 2, 4, 8, 64] {
            let chain = build(&states, interval);
            assert_eq!(chain.entries.len(), 17);
            for (i, s) in states.iter().enumerate() {
                assert_eq!(&chain.state_at(i).unwrap(), s, "interval {interval} v{i}");
                assert_eq!(
                    chain.state_of(Vid(i as u64 + 1)).unwrap().unwrap(),
                    s.clone()
                );
            }
            // Anchor spacing bound: never `interval` deltas in a row.
            let mut run = 0u64;
            for e in &chain.entries {
                match e.link {
                    ChainLink::Anchor(_) => run = 0,
                    ChainLink::Delta(_) => {
                        run += 1;
                        assert!(run < interval.max(1), "interval {interval}");
                    }
                }
            }
        }
    }

    #[test]
    fn set_state_preserves_neighbors() {
        let states = evolution(10, 700);
        for victim in 0..10usize {
            let mut chain = build(&states, 4);
            let mut edited = states[victim].clone();
            edited[3] ^= 0x5A;
            edited.extend_from_slice(b"tail");
            chain.set_state_at(victim, &edited).unwrap();
            for (i, s) in states.iter().enumerate() {
                let want = if i == victim { &edited } else { s };
                assert_eq!(&chain.state_at(i).unwrap(), want, "victim {victim} v{i}");
            }
        }
    }

    #[test]
    fn remove_repairs_every_position() {
        let states = evolution(12, 500);
        for victim in 0..12usize {
            let mut chain = build(&states, 4);
            chain.remove_at(victim).unwrap();
            assert_eq!(chain.entries.len(), 11);
            let mut idx = 0;
            for (i, s) in states.iter().enumerate() {
                if i == victim {
                    continue;
                }
                assert_eq!(&chain.state_at(idx).unwrap(), s, "victim {victim} v{i}");
                idx += 1;
            }
            // First surviving entry is still an anchor.
            assert!(matches!(chain.entries[0].link, ChainLink::Anchor(_)));
        }
    }

    #[test]
    fn repeated_removals_keep_the_anchor_bound() {
        let states = evolution(20, 400);
        let mut chain = build(&states, 5);
        // Delete every other entry from the front.
        let mut live: Vec<usize> = (0..20).collect();
        for _ in 0..8 {
            chain.remove_at(1).unwrap();
            live.remove(1);
            let mut run = 0;
            for e in &chain.entries {
                match e.link {
                    ChainLink::Anchor(_) => run = 0,
                    ChainLink::Delta(_) => {
                        run += 1;
                        assert!(run < 5);
                    }
                }
            }
            for (idx, &orig) in live.iter().enumerate() {
                assert_eq!(chain.state_at(idx).unwrap(), states[orig]);
            }
        }
    }

    #[test]
    fn round_trips_codec() {
        let states = evolution(9, 300);
        let chain = build(&states, 3);
        let back: ObjectChain = ode_codec::from_bytes(&ode_codec::to_bytes(&chain)).unwrap();
        assert_eq!(back, chain);
        assert_eq!(back.state_at(8).unwrap(), states[8]);
    }

    #[test]
    fn version_diff_round_trips() {
        let d = ode_delta::diff(b"hello world", b"hello brave world");
        let vd = VersionDiff::from_delta(Vid(3), Vid(7), &d, true);
        let back: VersionDiff = ode_codec::from_bytes(&ode_codec::to_bytes(&vd)).unwrap();
        assert_eq!(back, vd);
        assert!(back.stored);
        assert_eq!(back.to_len, 17);
    }
}
