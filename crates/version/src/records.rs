//! On-disk records of the version graph.

use ode_codec::{impl_persist_struct, TypeTag};
use ode_object::{Oid, Vid};

/// Per-object record: identity, type, and the ends of the temporal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's identity.
    pub oid: Oid,
    /// Stable type tag of the object's Rust type.
    pub tag: TypeTag,
    /// The first version ever created (root of the derived-from tree).
    pub root: Vid,
    /// The temporal head — what the object id resolves to (the paper:
    /// "an object id ... logically refers to the latest version").
    pub latest: Vid,
    /// Number of live versions.
    pub version_count: u64,
}

impl_persist_struct!(ObjectMeta {
    oid,
    tag,
    root,
    latest,
    version_count,
});

/// Per-version record: graph links plus the encoded object state.
///
/// `dprev` records the **derived-from** relationship (solid arrows in the
/// paper's figures); `tprev`/`tnext` record the **temporal** relationship
/// (dotted arrows).  `dnext` lists derived children so `Dnext` traversal
/// and leaf enumeration need no scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionMeta {
    /// This version's identity.
    pub vid: Vid,
    /// Owning object.
    pub oid: Oid,
    /// Type tag, duplicated from [`ObjectMeta`] so specific-version reads
    /// can type-check with a single record fetch.
    pub tag: TypeTag,
    /// Version this one was derived from (`NULL` for the first version).
    pub dprev: Vid,
    /// Second derived-from parent. `NULL` for ordinary versions; merge
    /// versions record both merged parents here, giving the
    /// derived-from structure its DAG edges. Never set while `dprev`
    /// is `NULL`.
    pub dprev2: Vid,
    /// Versions derived from this one, in creation order.
    pub dnext: Vec<Vid>,
    /// Temporal predecessor within the object (`NULL` for the oldest).
    pub tprev: Vid,
    /// Temporal successor within the object (`NULL` for the latest).
    pub tnext: Vid,
    /// Monotone creation stamp (global sequence; preserved across
    /// deletions, unlike chain position).
    pub created: u64,
    /// The object state, encoded with `ode_codec`.
    pub body: Vec<u8>,
}

impl_persist_struct!(VersionMeta {
    vid,
    oid,
    tag,
    dprev,
    dprev2,
    dnext,
    tprev,
    tnext,
    created,
    body,
});

impl VersionMeta {
    /// Whether this version is a leaf of the derived-from tree (an
    /// "alternative's most up-to-date version" in the paper's terms).
    pub fn is_derivation_leaf(&self) -> bool {
        self.dnext.is_empty()
    }

    /// Whether this version is a merge (records two derived-from
    /// parents).
    pub fn is_merge(&self) -> bool {
        !self.dprev2.is_null()
    }

    /// The derived-from parents, primary first, `NULL` slots skipped.
    pub fn parents(&self) -> impl Iterator<Item = Vid> {
        [self.dprev, self.dprev2]
            .into_iter()
            .filter(|v| !v.is_null())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_codec::{from_bytes, to_bytes};

    #[test]
    fn object_meta_round_trips() {
        let m = ObjectMeta {
            oid: Oid(7),
            tag: TypeTag::from_name("x/Y"),
            root: Vid(1),
            latest: Vid(9),
            version_count: 4,
        };
        assert_eq!(from_bytes::<ObjectMeta>(&to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn version_meta_round_trips() {
        let m = VersionMeta {
            vid: Vid(9),
            oid: Oid(7),
            tag: TypeTag::from_name("x/Y"),
            dprev: Vid(3),
            dprev2: Vid::NULL,
            dnext: vec![Vid(11), Vid(12)],
            tprev: Vid(8),
            tnext: Vid::NULL,
            created: 42,
            body: vec![1, 2, 3],
        };
        assert_eq!(from_bytes::<VersionMeta>(&to_bytes(&m)).unwrap(), m);
        assert!(!m.is_derivation_leaf());
        assert!(!m.is_merge());
        assert_eq!(m.parents().collect::<Vec<_>>(), vec![Vid(3)]);
        let leaf = VersionMeta { dnext: vec![], ..m };
        assert!(leaf.is_derivation_leaf());
    }

    #[test]
    fn merge_version_meta_round_trips() {
        let m = VersionMeta {
            vid: Vid(20),
            oid: Oid(7),
            tag: TypeTag::from_name("x/Y"),
            dprev: Vid(5),
            dprev2: Vid(9),
            dnext: vec![],
            tprev: Vid(19),
            tnext: Vid::NULL,
            created: 20,
            body: vec![4, 5, 6],
        };
        assert_eq!(from_bytes::<VersionMeta>(&to_bytes(&m)).unwrap(), m);
        assert!(m.is_merge());
        assert_eq!(m.parents().collect::<Vec<_>>(), vec![Vid(5), Vid(9)]);
    }
}
