//! # ode-version — the version graph of the Ode model
//!
//! This crate implements §3–§4 of *Object Versioning in Ode*: the
//! abstract version model and its operations, independent of the
//! pointer-level API (which lives in the `ode` core crate).
//!
//! Model recap (from the paper):
//!
//! * every persistent object is a set of versions; creating an object
//!   creates its first version (**version orthogonality** — nothing is
//!   declared "versionable", and an object with one version costs no
//!   more than an unversioned object would);
//! * an **object id** logically refers to the *latest* version (the
//!   temporal head); a **version id** refers to one specific version;
//! * the system automatically maintains the **temporal** relationship
//!   (a doubly-linked creation-order chain per object) and the
//!   **derived-from** relationship (a tree: `newversion(v)` makes a
//!   revision or — when `v` already has a successor — an alternative);
//! * `pdelete` on an object id removes the object and all its versions;
//!   on a version id it removes that one version, splicing both
//!   relationships around it.
//!
//! Layout: each version is a [`VersionMeta`] record (graph links plus the
//! encoded object body) in an `ode_object::ObjectHeap`; each object is an
//! [`ObjectMeta`] record.  Two `ode_object::KvTable`s map oid → object
//! record and vid → version record, and an `ode_object::Extents`
//! directory indexes objects by type for O++-style queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod chain;
mod error;
pub mod export;
mod graph;
mod records;

pub use cache::MaterializeCache;
pub use chain::{ChainConfig, ChainEntry, ChainLink, ChainStats, ObjectChain, VersionDiff};
pub use error::{Result, VersionError};
pub use export::version_graph_dot;
pub use graph::{VersionStore, VersionStoreLayout};
pub use records::{ObjectMeta, VersionMeta};

pub use ode_object::{Oid, Vid};
