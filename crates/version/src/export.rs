//! Graphviz export of version graphs.
//!
//! Renders an object's version graph in the visual language of the
//! paper's figures: solid arrows for the derived-from relationship,
//! dotted arrows for the temporal relationship, a double circle for the
//! latest version (what the object id binds to).

use ode_object::Oid;
use ode_storage::PageRead;

use crate::{Result, VersionStore};

/// Render one object's version graph as Graphviz DOT text.
pub fn version_graph_dot(vs: &VersionStore, tx: &mut impl PageRead, oid: Oid) -> Result<String> {
    use std::fmt::Write;
    let object = vs.object_meta(tx, oid)?;
    let history = vs.version_history(tx, oid)?;
    let mut out = String::new();
    writeln!(out, "digraph \"{oid}\" {{").expect("write to string");
    writeln!(out, "  rankdir=RL;").expect("write to string");
    writeln!(out, "  label=\"{oid} (tag {:#018x})\";", object.tag.0).expect("write to string");
    for vid in &history {
        let shape = if *vid == object.latest {
            "doublecircle"
        } else {
            "circle"
        };
        writeln!(out, "  v{} [label=\"v{}\", shape={shape}];", vid.0, vid.0)
            .expect("write to string");
    }
    for vid in &history {
        let meta = vs.version_meta(tx, *vid)?;
        if !meta.dprev.is_null() {
            // Solid: derived-from.
            writeln!(out, "  v{} -> v{} [style=solid];", vid.0, meta.dprev.0)
                .expect("write to string");
        }
        if !meta.dprev2.is_null() {
            // Second derived-from parent of a merge version (DAG edge).
            writeln!(
                out,
                "  v{} -> v{} [style=solid, color=gray];",
                vid.0, meta.dprev2.0
            )
            .expect("write to string");
        }
        if !meta.tprev.is_null() {
            // Dotted: temporal order.
            writeln!(
                out,
                "  v{} -> v{} [style=dotted, constraint=false];",
                vid.0, meta.tprev.0
            )
            .expect("write to string");
        }
    }
    writeln!(out, "}}").expect("write to string");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VersionStoreLayout;
    use ode_codec::TypeTag;
    use ode_storage::{Store, StoreOptions};

    #[test]
    fn dot_contains_expected_structure() {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-dot-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let wal = std::path::PathBuf::from(wal);
        let _ = std::fs::remove_file(&wal);

        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let vs = VersionStore::new(VersionStoreLayout::default());
        let mut tx = store.begin();
        let tag = TypeTag::from_name("dot/T");
        let (oid, v0) = vs.create_object(&mut tx, tag, vec![1]).unwrap();
        let v1 = vs.new_version_from(&mut tx, v0).unwrap();
        let v2 = vs.new_version_from(&mut tx, v0).unwrap();

        let dot = version_graph_dot(&vs, &mut tx, oid).unwrap();
        assert!(dot.starts_with("digraph"));
        // Three nodes; latest (v2) double-circled.
        assert!(dot.contains(&format!(
            "v{} [label=\"v{}\", shape=doublecircle]",
            v2.0, v2.0
        )));
        assert!(dot.contains(&format!("v{} [label=\"v{}\", shape=circle]", v1.0, v1.0)));
        // Derived-from edges point at v0.
        assert!(dot.contains(&format!("v{} -> v{} [style=solid]", v1.0, v0.0)));
        assert!(dot.contains(&format!("v{} -> v{} [style=solid]", v2.0, v0.0)));
        // Temporal edge v2 -> v1.
        assert!(dot.contains(&format!("v{} -> v{} [style=dotted", v2.0, v1.0)));
        tx.commit().unwrap();
        drop(store);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
    }
}
