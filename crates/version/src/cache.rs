//! Bounded cache of materialized historical version bodies.
//!
//! Chain storage makes historical reads cost up to `anchor_interval - 1`
//! delta applications.  Hot historical versions (a replica diff loop, a
//! UI pinned at an old epoch) shouldn't pay that on every read, so the
//! engine keeps a small epoch-tagged map of `vid → materialized body`,
//! invalidated wholesale whenever the store's commit epoch moves — the
//! same invalidation discipline as the network tier's snapshot read
//! cache.
//!
//! Only *snapshot* reads consult the cache: a write transaction's own
//! uncommitted edits don't bump the epoch, so serving it cached bodies
//! could hide its own writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

struct CacheState {
    /// Commit epoch the entries were materialized at.
    epoch: u64,
    entries: HashMap<u64, Vec<u8>>,
}

/// Epoch-invalidated, size-bounded map of materialized version bodies.
pub struct MaterializeCache {
    state: Mutex<CacheState>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MaterializeCache {
    /// A cache holding at most `cap` bodies.
    pub fn new(cap: usize) -> MaterializeCache {
        MaterializeCache {
            state: Mutex::new(CacheState {
                epoch: 0,
                entries: HashMap::new(),
            }),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `vid`'s body as materialized at `epoch`.  A cache
    /// populated at a different epoch is cleared first — entries never
    /// outlive the committed state they were derived from.
    pub fn get(&self, epoch: u64, vid: u64) -> Option<Vec<u8>> {
        let mut state = self.state.lock();
        if state.epoch != epoch {
            state.entries.clear();
            state.epoch = epoch;
        }
        match state.entries.get(&vid) {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record `vid`'s body as materialized at `epoch`.  Ignored when
    /// the cache is full (single-generation: it refills after the next
    /// epoch bump) or tagged with a different epoch.
    pub fn put(&self, epoch: u64, vid: u64, body: Vec<u8>) {
        let mut state = self.state.lock();
        if state.epoch != epoch {
            state.entries.clear();
            state.epoch = epoch;
        }
        if state.entries.len() < self.cap || state.entries.contains_key(&vid) {
            state.entries.insert(vid, body);
        }
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached bodies right now.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the cache is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_same_epoch() {
        let c = MaterializeCache::new(8);
        assert_eq!(c.get(1, 7), None);
        c.put(1, 7, b"body".to_vec());
        assert_eq!(c.get(1, 7).as_deref(), Some(&b"body"[..]));
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let c = MaterializeCache::new(8);
        c.put(1, 7, b"old".to_vec());
        assert_eq!(c.get(2, 7), None);
        c.put(2, 7, b"new".to_vec());
        assert_eq!(c.get(2, 7).as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn bounded_by_cap() {
        let c = MaterializeCache::new(2);
        c.put(1, 1, vec![1]);
        c.put(1, 2, vec![2]);
        c.put(1, 3, vec![3]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, 3), None);
        // Existing keys still update at capacity.
        c.put(1, 1, vec![9]);
        assert_eq!(c.get(1, 1).as_deref(), Some(&[9u8][..]));
    }
}
