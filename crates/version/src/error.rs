//! Version-layer error type.

use std::fmt;

use ode_codec::TypeTag;
use ode_object::{Oid, Vid};

/// Result alias for version-layer operations.
pub type Result<T> = std::result::Result<T, VersionError>;

/// Errors produced by the version layer.
#[derive(Debug)]
pub enum VersionError {
    /// The underlying store failed.
    Storage(ode_storage::StorageError),
    /// No object with this id exists (it was never created, or was
    /// `pdelete`d).
    UnknownObject(Oid),
    /// No version with this id exists.
    UnknownVersion(Vid),
    /// The stored object's type tag did not match the requested type —
    /// an `ObjPtr<T>`/`VersionPtr<T>` was forged or decoded against the
    /// wrong `T`.
    TypeMismatch {
        /// Tag the caller asked for.
        expected: TypeTag,
        /// Tag actually stored.
        found: TypeTag,
    },
    /// Refused to delete the last remaining version of an object via
    /// `pdelete(version)`; delete the object instead (the paper's
    /// `pdelete` on a version removes *a* version from a history — an
    /// object always has at least one version).
    LastVersion(Vid),
    /// A stored delta chain is inconsistent with the version graph or
    /// fails to replay — on-disk corruption or an engine bug, never a
    /// caller mistake.
    ChainCorrupt(&'static str),
    /// `merge(a, b)` was asked to reconcile versions that cannot form a
    /// merge: they belong to different objects, or are the same
    /// version.
    MergeMismatch {
        /// First merge input.
        a: Vid,
        /// Second merge input.
        b: Vid,
    },
}

impl VersionError {
    /// Whether this error is an optimistic write conflict: the
    /// transaction lost its validation race and should be re-executed
    /// from the start against fresh reads (see `Database::transact` in
    /// `ode`).
    pub fn is_write_conflict(&self) -> bool {
        matches!(
            self,
            VersionError::Storage(ode_storage::StorageError::WriteConflict)
        )
    }
}

impl fmt::Display for VersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionError::Storage(e) => write!(f, "storage error: {e}"),
            VersionError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            VersionError::UnknownVersion(vid) => write!(f, "unknown version {vid}"),
            VersionError::TypeMismatch { expected, found } => write!(
                f,
                "type mismatch: expected tag {:#018x}, found {:#018x}",
                expected.0, found.0
            ),
            VersionError::LastVersion(vid) => write!(
                f,
                "{vid} is the last version of its object; pdelete the object instead"
            ),
            VersionError::ChainCorrupt(msg) => write!(f, "delta chain corrupt: {msg}"),
            VersionError::MergeMismatch { a, b } => {
                write!(
                    f,
                    "cannot merge {a} with {b}: not two distinct versions of one object"
                )
            }
        }
    }
}

impl std::error::Error for VersionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VersionError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ode_storage::StorageError> for VersionError {
    fn from(e: ode_storage::StorageError) -> Self {
        VersionError::Storage(e)
    }
}

impl From<ode_codec::DecodeError> for VersionError {
    fn from(e: ode_codec::DecodeError) -> Self {
        VersionError::Storage(ode_storage::StorageError::Codec(e))
    }
}
