//! `ode-served` — serve an Ode database over TCP.
//!
//! ```text
//! ode-served <db-path> <addr> [--workers N] [--no-sync] [--chain N]
//!            [--stats-every SECS]
//! ```
//!
//! Opens (or creates) the database at `<db-path>` and serves the
//! `ode-net` wire protocol on `<addr>` (e.g. `127.0.0.1:4807`; port 0
//! picks a free port and prints it). Runs until killed; every
//! committed write is WAL-durable before its response is sent, so a
//! `SIGKILL` loses nothing that was acknowledged.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ode::{ChainConfig, Database, DatabaseOptions};
use ode_net::{OdeServer, ServerConfig};

/// `println!` that ignores a closed stdout: losing the log pipe must
/// never take the server down with a broken-pipe panic.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ode-served <db-path> <addr> [options]\n\
         options:\n\
         \x20 --workers N        worker threads (default: CPU count, 4..=16)\n\
         \x20 --no-sync          skip fsync on commit (benchmarking only)\n\
         \x20 --chain N          store version bodies as delta chains with\n\
         \x20                    anchors every N versions (historical reads\n\
         \x20                    cost at most N-1 delta applications)\n\
         \x20 --stats-every SECS print server stats periodically"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, addr) = match (args.first(), args.get(1)) {
        (Some(p), Some(a)) if !p.starts_with("--") && !a.starts_with("--") => {
            (p.clone(), a.clone())
        }
        _ => return usage(),
    };

    let mut config = ServerConfig::default();
    let mut no_sync = false;
    let mut chain: Option<u64> = None;
    let mut stats_every: Option<Duration> = None;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--workers" => match rest.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--no-sync" => no_sync = true,
            "--chain" => match rest.next().and_then(|s| s.parse().ok()) {
                Some(n) => chain = Some(n),
                None => return usage(),
            },
            "--stats-every" => match rest.next().and_then(|s| s.parse().ok()) {
                Some(secs) => stats_every = Some(Duration::from_secs(secs)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut options = if no_sync {
        DatabaseOptions::no_sync()
    } else {
        DatabaseOptions::default()
    };
    if let Some(interval) = chain {
        options = options.with_chain(ChainConfig::with_interval(interval));
    }

    let db = match Database::open_or_create(&path, options) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("ode-served: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let server = match OdeServer::bind(db, addr.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ode-served: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    out!("ode-served: serving {path} on {}", server.local_addr());

    // Serve until the process is killed. With --stats-every, wake up
    // periodically to print counters; otherwise just park.
    loop {
        match stats_every {
            Some(interval) => {
                std::thread::sleep(interval);
                let stats = server.stats();
                out!(
                    "stats: {} conns ({} active), {} reqs, {} B in, {} B out, {} op errors, {} protocol errors",
                    stats.total_connections,
                    stats.active_connections,
                    stats.total_requests(),
                    stats.bytes_in,
                    stats.bytes_out,
                    stats.op_errors,
                    stats.protocol_errors,
                );
                for (op, n) in &stats.requests {
                    out!("  {:<16} {n}", op.name());
                }
            }
            None => std::thread::park(),
        }
    }
}
