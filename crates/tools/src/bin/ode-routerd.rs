//! `ode-routerd` — front a fleet of `ode-served` shards with one
//! address.
//!
//! ```text
//! ode-routerd <addr> <backend>... [--workers N] [--stats-every SECS]
//! ```
//!
//! Binds `<addr>` (e.g. `127.0.0.1:4806`; port 0 picks a free port and
//! prints it) and speaks the `ode-net` wire protocol to clients exactly
//! as a single `ode-served` would, while routing every request to one
//! of the listed backends by object id. Backend order **is** the shard
//! map: list the same backends in the same order on every router and
//! every restart, or objects will appear to vanish. Runs until killed;
//! the router holds no state worth saving — all durability lives in the
//! shards.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use ode_net::{OdeRouter, RouterConfig};

/// `println!` that ignores a closed stdout: losing the log pipe must
/// never take the router down with a broken-pipe panic.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ode-routerd <addr> <backend>... [options]\n\
         \x20 <addr>             address to serve clients on\n\
         \x20 <backend>...       shard addresses, in shard-map order\n\
         options:\n\
         \x20 --workers N        client worker threads (default: CPU count, 4..=16)\n\
         \x20 --stats-every SECS print router stats periodically"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        return usage();
    };

    let mut config = RouterConfig::default();
    let mut stats_every: Option<Duration> = None;
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--workers" => match rest.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--stats-every" => match rest.next().and_then(|s| s.parse().ok()) {
                Some(secs) => stats_every = Some(Duration::from_secs(secs)),
                None => return usage(),
            },
            backend if !backend.starts_with("--") => {
                match backend.to_socket_addrs().ok().and_then(|mut it| it.next()) {
                    Some(resolved) => backends.push(resolved),
                    None => {
                        eprintln!("ode-routerd: cannot resolve backend {backend}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    if backends.is_empty() {
        return usage();
    }

    let shards = backends.len();
    let router = match OdeRouter::bind(addr.as_str(), backends, config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("ode-routerd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    out!(
        "ode-routerd: routing {} shard{} on {}",
        shards,
        if shards == 1 { "" } else { "s" },
        router.local_addr()
    );

    // Route until the process is killed. With --stats-every, wake up
    // periodically to print counters; otherwise just park.
    loop {
        match stats_every {
            Some(interval) => {
                std::thread::sleep(interval);
                let stats = router.stats();
                out!(
                    "stats: {} conns, {} forwarded, {} local, {} gathers, {} backend dials, {} shard failures, {} unavailable, {} protocol errors",
                    stats.client_connections,
                    stats.forwarded,
                    stats.answered_locally,
                    stats.gathers,
                    stats.backend_connects,
                    stats.shard_failures,
                    stats.unavailable_errors,
                    stats.protocol_errors,
                );
            }
            None => std::thread::park(),
        }
    }
}
