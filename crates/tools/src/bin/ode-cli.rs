//! `ode-cli` — poke a running `ode-served` instance.
//!
//! ```text
//! ode-cli <addr> ping
//! ode-cli <addr> stats
//! ode-cli <addr> put <text>                 create a Note object
//! ode-cli <addr> get <oid>...               latest version of each Note
//! ode-cli <addr> get --pipeline <oid>...    same, batched in one pipeline
//! ode-cli <addr> get-version <vid>          one pinned version
//! ode-cli <addr> set <oid> <text>           overwrite the latest version
//! ode-cli <addr> newversion <oid>           derive from the latest
//! ode-cli <addr> newversion-from <vid>      derive from a pinned version
//! ode-cli <addr> history <oid> [from to]    all versions, temporal order
//!                                           (optionally only stamps in
//!                                           from..=to, chain-served)
//! ode-cli <addr> history <oid> --json       same, as a JSON array with
//!                                           stable field ordering
//! ode-cli <addr> diff <vid> <vid>           delta summary between versions
//! ode-cli <addr> merge <vid> <vid> [--ours|--theirs]
//!                                           three-way merge two versions
//!                                           of one object
//! ode-cli <addr> objects                    every Note on the server
//! ode-cli <addr> delete <oid>               pdelete the object
//! ode-cli <addr> delete-version <vid>       pdelete one version
//! ```
//!
//! The CLI works with one concrete type, `Note { text }` — enough to
//! demonstrate every versioning operation end to end from a shell.

use std::process::ExitCode;

use ode::{MergePolicy, Oid, Vid};
use ode_codec::{from_bytes, impl_persist_struct, impl_type_name};
use ode_net::{
    ClientConfig, ClientObjPtr, ClientVersionPtr, NetError, OdeClient, Request, Response,
};

/// `println!` that exits quietly when stdout is gone (output piped
/// into `head`, say) instead of panicking on the broken pipe.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// The CLI's object type. Any process (CLI or library) that declares
/// the same persistent name and layout can read these objects.
#[derive(Debug, Clone, PartialEq)]
struct Note {
    text: String,
}
impl_persist_struct!(Note { text });
impl_type_name!(Note = "ode-cli/Note");

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut escaped = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ode-cli <addr> <command> [args]\n\
         commands:\n\
         \x20 ping\n\
         \x20 stats\n\
         \x20 put <text>               create a Note, print its ids\n\
         \x20 get [--pipeline] <oid>...\n\
         \x20                          latest text of each Note; with\n\
         \x20                          --pipeline all requests share one\n\
         \x20                          in-flight batch\n\
         \x20 get-version <vid>        one pinned version's text\n\
         \x20 set <oid> <text>         overwrite the latest version\n\
         \x20 newversion <oid>         derive a version from the latest\n\
         \x20 newversion-from <vid>    derive from a pinned version\n\
         \x20 history <oid> [from to]  list all versions, or only those\n\
         \x20                          whose stamp falls in from..=to;\n\
         \x20                          --json emits a JSON array with\n\
         \x20                          stable field ordering\n\
         \x20 diff <vid> <vid>         delta summary between two versions\n\
         \x20 merge <vid> <vid>        three-way merge two versions of one\n\
         \x20                          object against their common ancestor;\n\
         \x20                          --ours/--theirs resolves conflicting\n\
         \x20                          ranges instead of failing\n\
         \x20 objects                  list every Note\n\
         \x20 delete <oid>             delete object + versions\n\
         \x20 delete-version <vid>     delete one version"
    );
    ExitCode::from(2)
}

/// Fetch every oid's latest version in one pipelined batch: all
/// requests go out before the first response is awaited, so the whole
/// list costs roughly one round trip instead of one per object.
fn get_pipelined(client: &mut OdeClient, oids: &[u64]) -> ode_net::Result<()> {
    let tag = ClientObjPtr::<Note>::tag();
    let mut pipe = client.pipeline();
    for &oid in oids {
        pipe.push(&Request::Deref { oid: Oid(oid), tag })?;
    }
    let responses = pipe.run()?;
    for (&oid, response) in oids.iter().zip(responses) {
        match response {
            Response::Body { vid, bytes } => {
                let note: Note = from_bytes(&bytes)?;
                out!("{} @ {}: {}", Oid(oid), vid, note.text);
            }
            Response::Err(e) => out!("{}: error: {e}", Oid(oid)),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected a body response, got {}",
                    other.kind_name()
                )))
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, command, rest) = match args.split_first() {
        Some((addr, rest)) => match rest.split_first() {
            Some((command, rest)) => (addr.clone(), command.clone(), rest.to_vec()),
            None => return usage(),
        },
        None => return usage(),
    };
    let id_arg = || -> Option<u64> { rest.first().and_then(|s| s.parse().ok()) };
    let obj = |oid: u64| -> ClientObjPtr<Note> { ClientObjPtr::from_oid(Oid(oid)) };
    let ver = |vid: u64| -> ClientVersionPtr<Note> { ClientVersionPtr::from_vid(Vid(vid)) };

    let mut client = match OdeClient::connect(addr.as_str(), ClientConfig::default()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("ode-cli: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match command.as_str() {
        "ping" => client.ping().map(|()| out!("pong")),
        "stats" => client.stats().map(|stats| {
            out!(
                "connections: {} total, {} active",
                stats.total_connections,
                stats.active_connections
            );
            out!(
                "bytes      : {} in, {} out",
                stats.bytes_in,
                stats.bytes_out
            );
            out!(
                "errors     : {} op, {} protocol",
                stats.op_errors,
                stats.protocol_errors
            );
            out!(
                "evictions  : {} slow clients over the write-buffer cap",
                stats.slow_client_evictions
            );
            out!(
                "snapshots  : {} cache hits, {} misses",
                stats.snapshot_hits,
                stats.snapshot_misses
            );
            out!(
                "materialize: {} cache hits, {} misses (historical chain reads)",
                stats.materialize_hits,
                stats.materialize_misses
            );
            out!(
                "storage    : {} read txs, {} write txs",
                stats.storage.read_txs,
                stats.storage.write_txs
            );
            out!(
                "lock waits : readers {} ({} ns), writers {} ({} ns)",
                stats.storage.reader_waits,
                stats.storage.reader_wait_nanos,
                stats.storage.writer_waits,
                stats.storage.writer_wait_nanos
            );
            out!(
                "wal syncs  : {} total, {} by group leaders ({} txns, max batch {})",
                stats.storage.wal_syncs,
                stats.storage.group_syncs,
                stats.storage.group_commit_txns,
                stats.storage.group_batch_max
            );
            out!(
                "conflicts  : {} write conflicts, {} retries",
                stats.storage.write_conflicts,
                stats.storage.write_retries
            );
            out!(
                "replication: {} bytes shipped, {} epochs of replica lag, {} failovers",
                stats.storage.bytes_shipped,
                stats.storage.replica_lag_epochs,
                stats.storage.failovers
            );
            out!("requests   : {}", stats.total_requests());
            for (op, n) in &stats.requests {
                out!("  {:<16} {n}", op.name());
            }
        }),
        "put" => match rest.first() {
            Some(text) => client
                .pnew(&Note { text: text.clone() })
                .and_then(|p| client.current_version(&p).map(|v| (p, v)))
                .map(|(p, v)| out!("created {} (latest {})", p.oid(), v.vid())),
            None => return usage(),
        },
        "get" => {
            let pipelined = rest.iter().any(|a| a == "--pipeline");
            let oids: Option<Vec<u64>> = rest
                .iter()
                .filter(|a| *a != "--pipeline")
                .map(|s| s.parse().ok())
                .collect();
            match oids {
                Some(oids) if !oids.is_empty() => {
                    if pipelined {
                        get_pipelined(&mut client, &oids)
                    } else {
                        oids.iter().try_for_each(|&oid| {
                            client
                                .deref(&obj(oid))
                                .map(|(note, v)| out!("{} @ {}: {}", Oid(oid), v.vid(), note.text))
                        })
                    }
                }
                _ => return usage(),
            }
        }
        "get-version" => match id_arg() {
            Some(vid) => client
                .deref_v(&ver(vid))
                .map(|note| out!("{}: {}", Vid(vid), note.text)),
            None => return usage(),
        },
        "set" => match (id_arg(), rest.get(1)) {
            (Some(oid), Some(text)) => client
                .put(&obj(oid), &Note { text: text.clone() })
                .map(|v| out!("updated {} (latest {})", Oid(oid), v.vid())),
            _ => return usage(),
        },
        "newversion" => match id_arg() {
            Some(oid) => client
                .newversion(&obj(oid))
                .map(|v| out!("derived {}", v.vid())),
            None => return usage(),
        },
        "newversion-from" => match id_arg() {
            Some(vid) => client
                .newversion_from(&ver(vid))
                .map(|v| out!("derived {} from {}", v.vid(), Vid(vid))),
            None => return usage(),
        },
        "history" => {
            let json = rest.iter().any(|a| a == "--json");
            let args: Vec<&String> = rest.iter().filter(|a| *a != "--json").collect();
            match args
                .split_first()
                .and_then(|(o, b)| o.parse::<u64>().ok().map(|oid| (oid, b.to_vec())))
            {
                Some((oid, bounds)) => (|| {
                    let p = obj(oid);
                    let history = match bounds.as_slice() {
                        [from, to] => match (from.parse::<u64>(), to.parse::<u64>()) {
                            (Ok(from), Ok(to)) => client.history_between(&p, from, to)?,
                            _ => {
                                return Err(NetError::Protocol(
                                    "history range bounds must be integers".into(),
                                ))
                            }
                        },
                        _ => client.version_history(&p)?,
                    };
                    let latest = client.current_version(&p)?;
                    if json {
                        // Machine-readable history. Field order is part
                        // of the contract — always vid, from, latest,
                        // text — so line-oriented consumers can diff two
                        // runs without re-serialising.
                        out!("[");
                        for (i, v) in history.iter().enumerate() {
                            let note = client.deref_v(v)?;
                            let from = match client.dprevious(v)? {
                                Some(b) => b.vid().0.to_string(),
                                None => "null".to_string(),
                            };
                            let comma = if i + 1 < history.len() { "," } else { "" };
                            out!(
                                "  {{\"vid\":{},\"from\":{from},\"latest\":{},\"text\":\"{}\"}}{comma}",
                                v.vid().0,
                                *v == latest,
                                json_escape(&note.text)
                            );
                        }
                        out!("]");
                        return Ok(());
                    }
                    for v in history {
                        let note = client.deref_v(&v)?;
                        let dprev = client.dprevious(&v)?;
                        let marker = if v == latest { "  <- latest" } else { "" };
                        let from = match dprev {
                            Some(b) => format!(" (from {})", b.vid()),
                            None => String::new(),
                        };
                        out!("{}{from}: {}{marker}", v.vid(), note.text);
                    }
                    Ok(())
                })(),
                None => return usage(),
            }
        }
        "diff" => match (id_arg(), rest.get(1).and_then(|s| s.parse::<u64>().ok())) {
            (Some(a), Some(b)) => client.diff_versions(&ver(a), &ver(b)).map(|d| {
                out!("diff {}..{}", d.from, d.to);
                out!("  target state : {} B", d.to_len);
                out!(
                    "  instructions : {} ops, {} literal bytes",
                    d.ops,
                    d.literal_bytes
                );
                out!("  encoded delta: {} B", d.encoded_bytes);
                out!(
                    "  stored form  : {}",
                    if d.stored {
                        "chain delta (adjacent versions, served as stored)"
                    } else {
                        "computed on demand"
                    }
                );
            }),
            _ => return usage(),
        },
        "merge" => {
            let policy = if rest.iter().any(|a| a == "--ours") {
                MergePolicy::Ours
            } else if rest.iter().any(|a| a == "--theirs") {
                MergePolicy::Theirs
            } else {
                MergePolicy::Fail
            };
            let ids: Vec<u64> = rest
                .iter()
                .filter(|a| !a.starts_with("--"))
                .filter_map(|s| s.parse().ok())
                .collect();
            match ids.as_slice() {
                [a, b] => client.merge(&ver(*a), &ver(*b), policy).map(|(vid, conflicts)| {
                    for c in &conflicts {
                        out!(
                            "conflict [{}, {}): ours {:?}, theirs {:?}",
                            c.base_start,
                            c.base_end,
                            String::from_utf8_lossy(&c.ours),
                            String::from_utf8_lossy(&c.theirs)
                        );
                    }
                    match vid {
                        Some(v) => out!("merged as {} (policy: {})", v.vid(), policy.name()),
                        None => out!(
                            "not merged: {} conflicting range(s); re-run with --ours or --theirs to resolve",
                            conflicts.len()
                        ),
                    }
                }),
                _ => return usage(),
            }
        }
        "objects" => client.objects::<Note>().and_then(|objects| {
            for p in objects {
                let (note, v) = client.deref(&p)?;
                let n = client.version_count(&p)?;
                out!(
                    "{} ({n} versions, latest {}): {}",
                    p.oid(),
                    v.vid(),
                    note.text
                );
            }
            Ok(())
        }),
        "delete" => match id_arg() {
            Some(oid) => client
                .pdelete(obj(oid))
                .map(|()| out!("deleted {}", Oid(oid))),
            None => return usage(),
        },
        "delete-version" => match id_arg() {
            Some(vid) => client
                .pdelete_version(ver(vid))
                .map(|()| out!("deleted {}", Vid(vid))),
            None => return usage(),
        },
        _ => return usage(),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ode-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
