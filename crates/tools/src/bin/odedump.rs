//! `odedump` — inspect an Ode database from the command line.
//!
//! ```text
//! odedump info    <db>          physical + logical summary
//! odedump objects <db>          list live objects
//! odedump object  <db> <oid>    one object's metadata and history
//! odedump chains  <db>          per-object delta-chain statistics
//! odedump dot     <db> <oid>    Graphviz export of a version graph
//! odedump wal     <db>          decode WAL records (offsets, epochs)
//! odedump fsck    <db>          consistency check
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: odedump <command> <db> [args]\n\
         commands:\n\
         \x20 info    <db>          physical + logical summary\n\
         \x20 objects <db>          list live objects\n\
         \x20 object  <db> <oid>    one object's metadata and history\n\
         \x20 chains  <db>          per-object delta-chain statistics\n\
         \x20 dot     <db> <oid>    Graphviz export of a version graph\n\
         \x20 wal     <db>          decode WAL records (offsets, epochs) + summary\n\
         \x20 fsck    <db>          consistency check"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return usage(),
    };
    let db: PathBuf = match rest.first() {
        Some(path) => PathBuf::from(path),
        None => return usage(),
    };
    let oid_arg = || -> Option<u64> { rest.get(1).and_then(|s| s.parse().ok()) };

    let outcome = match command {
        "info" => ode_tools::store_info(&db).map(|info| {
            println!("pages      : {}", info.page_count);
            for (kind, count) in &info.pages_by_kind {
                let name = match kind {
                    Some(1) => "header",
                    Some(2) => "free",
                    Some(3) => "heap",
                    Some(4) => "overflow",
                    Some(5) => "btree-inner",
                    Some(6) => "btree-leaf",
                    Some(7) => "heap-dir",
                    _ => "unreadable",
                };
                println!("  {name:<12}: {count}");
            }
            println!("wal bytes  : {}", info.wal_bytes);
            println!("objects    : {}", info.object_count);
            println!("versions   : {}", info.version_count);
            println!("types      : {}", info.type_count);
            println!("buffer pool (during this scan):");
            println!("  hits      : {}", info.buffer.hits);
            println!("  misses    : {}", info.buffer.misses);
            println!("  evictions : {}", info.buffer.evictions);
            println!("  writebacks: {}", info.buffer.writebacks);
            println!("storage engine (during this scan):");
            println!("  read txs  : {}", info.storage.read_txs);
            println!("  write txs : {}", info.storage.write_txs);
            println!(
                "  reader waits: {} ({} ns)",
                info.storage.reader_waits, info.storage.reader_wait_nanos
            );
            println!(
                "  writer waits: {} ({} ns)",
                info.storage.writer_waits, info.storage.writer_wait_nanos
            );
            println!(
                "  write conflicts: {} ({} retries)",
                info.storage.write_conflicts, info.storage.write_retries
            );
        }),
        "objects" => ode_tools::list_objects(&db).map(|objects| {
            println!(
                "{:<8} {:<20} {:>8} {:>8} {:>10}",
                "oid", "tag", "versions", "latest", "body(B)"
            );
            for o in objects {
                println!(
                    "{:<8} {:<#20x} {:>8} {:>8} {:>10}",
                    o.oid, o.tag, o.versions, o.latest, o.latest_body_bytes
                );
            }
        }),
        "object" => match oid_arg() {
            Some(oid) => ode_tools::describe_object(&db, oid).map(|text| print!("{text}")),
            None => return usage(),
        },
        "chains" => ode_tools::chain_report(&db).map(|chains| {
            if chains.is_empty() {
                println!("no delta chains (store holds whole-body versions only)");
                return;
            }
            println!(
                "{:<8} {:>8} {:>7} {:>6} {:>6} {:>8} {:>11} {:>12} {:>6}",
                "oid",
                "segments",
                "anchors",
                "delta",
                "merges",
                "interval",
                "encoded(B)",
                "full-copy(B)",
                "ratio"
            );
            let (mut encoded, mut materialized, mut merges) = (0u64, 0u64, 0u64);
            for c in &chains {
                encoded += c.encoded_bytes;
                materialized += c.materialized_bytes;
                merges += c.merges;
                println!(
                    "{:<8} {:>8} {:>7} {:>6} {:>6} {:>8} {:>11} {:>12} {:>6.3}",
                    c.oid,
                    c.segments,
                    c.anchors,
                    c.deltas,
                    c.merges,
                    c.interval,
                    c.encoded_bytes,
                    c.materialized_bytes,
                    c.ratio
                );
            }
            let ratio = if materialized == 0 {
                1.0
            } else {
                encoded as f64 / materialized as f64
            };
            println!(
                "total: {encoded} B encoded vs {materialized} B as full copies (ratio {ratio:.3})"
            );
            if merges > 0 {
                println!("merge joins: {merges} two-parent version(s) across the store");
            }
        }),
        "dot" => match oid_arg() {
            Some(oid) => ode_tools::export_object_dot(&db, oid).map(|dot| print!("{dot}")),
            None => return usage(),
        },
        "wal" => ode_tools::wal_records(&db).and_then(|(records, torn)| {
            if !records.is_empty() {
                println!("{:>10} {:>9} {:>7}  record", "offset", "bytes", "epoch");
                for r in &records {
                    let epoch = match r.epoch {
                        Some(e) => format!("+{e}"),
                        None => "-".into(),
                    };
                    println!(
                        "{:>10} {:>9} {:>7}  {}",
                        r.offset, r.payload_bytes, epoch, r.desc
                    );
                }
            }
            if let Some(offset) = torn {
                println!("torn tail at offset {offset} (expected after a crash)");
            }
            ode_tools::wal_summary(&db).map(|s| {
                println!("bytes      : {}", s.bytes);
                println!("begins     : {}", s.begins);
                println!("commits    : {}", s.commits);
                println!("page images: {}", s.page_images);
                println!("page deltas: {}", s.page_deltas);
                println!("torn tail  : {}", s.torn_tail);
            })
        }),
        "fsck" => ode_tools::fsck(&db).map(|report| {
            println!(
                "checked {} objects / {} versions",
                report.objects_checked, report.versions_checked
            );
            if report.is_healthy() {
                println!("store is healthy");
            } else {
                for p in &report.problems {
                    println!("PROBLEM: {p}");
                }
            }
        }),
        _ => return usage(),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("odedump: {e}");
            ExitCode::FAILURE
        }
    }
}
