//! # ode-tools — operational tooling for Ode databases
//!
//! The library behind the `odedump` binary: read-only inspection of a
//! database file (page census, object/version listings, graph export)
//! and a consistency checker (`fsck`) that validates every object's
//! version graph plus the storage-level structures beneath it.
//!
//! Everything here opens stores read-mostly and never mutates user
//! data; `fsck` runs recovery as a side effect of opening (as any
//! reader would).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use ode_object::Oid;
use ode_storage::{PageId, PageRead, Store, StoreOptions, StoreStats};
use ode_version::{version_graph_dot, VersionStore, VersionStoreLayout};

/// Result alias reusing the version layer's error.
pub type Result<T> = ode_version::Result<T>;

/// Summary of a database file's physical layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Total pages tracked by the store header.
    pub page_count: u64,
    /// Pages by kind (unreadable pages counted under `None`).
    pub pages_by_kind: BTreeMap<Option<u8>, u64>,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// Buffer-pool counters accumulated while gathering this summary
    /// (the page census reads every page, so misses ≈ cold reads and
    /// hits show re-visits).
    pub buffer: ode_storage::buffer::BufferStats,
    /// Live objects.
    pub object_count: usize,
    /// Live versions across all objects.
    pub version_count: u64,
    /// Distinct type tags with extents.
    pub type_count: usize,
    /// Storage-engine transaction and contention counters accumulated
    /// while gathering this summary (one long read transaction, so
    /// `read_txs` ≥ 1 and the wait counters show any gate contention —
    /// zero for this single-threaded scan).
    pub storage: StoreStats,
}

/// Per-object summary for listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSummary {
    /// Object id.
    pub oid: u64,
    /// Stable type tag.
    pub tag: u64,
    /// Live versions.
    pub versions: u64,
    /// Latest version id.
    pub latest: u64,
    /// Encoded size of the latest version's body in bytes.
    pub latest_body_bytes: usize,
}

/// Per-object delta-chain summary (objects stored whole-body are
/// absent — a store without chain storage reports an empty list).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSummary {
    /// Object id.
    pub oid: u64,
    /// Versions covered by the chain (its temporal suffix of history).
    pub segments: u64,
    /// Full-snapshot entries.
    pub anchors: u64,
    /// Delta entries.
    pub deltas: u64,
    /// Anchor spacing the chain was built with.
    pub interval: u64,
    /// Two-parent (merge) versions in the object's history. These are
    /// the DAG joins: each one was checked in by `Txn::merge` and
    /// records a second derivation parent alongside `dprev`.
    pub merges: u64,
    /// Bytes the heap actually stores for the chain record.
    pub encoded_bytes: u64,
    /// Bytes whole-body storage would hold for the same versions.
    pub materialized_bytes: u64,
    /// `encoded / materialized` (lower is better).
    pub ratio: f64,
}

/// Gather every object's delta-chain statistics. Objects without a
/// chain (single-version, or created before chain storage was turned
/// on and never versioned since) are skipped.
pub fn chain_report(path: &Path) -> Result<Vec<ChainSummary>> {
    let (store, vs) = open(path)?;
    let mut tx = store.read();
    let mut out = Vec::new();
    for tag in all_tags(&vs, &mut tx)? {
        for oid in vs.objects_of_type(&mut tx, tag)? {
            if let Some(s) = vs.chain_stats(&mut tx, oid)? {
                let mut merges = 0u64;
                for vid in vs.version_history(&mut tx, oid)? {
                    if vs.version_meta(&mut tx, vid)?.is_merge() {
                        merges += 1;
                    }
                }
                out.push(ChainSummary {
                    oid: oid.0,
                    segments: s.versions,
                    anchors: s.anchors,
                    deltas: s.deltas,
                    interval: s.interval,
                    merges,
                    encoded_bytes: s.encoded_bytes,
                    materialized_bytes: s.materialized_bytes,
                    ratio: s.compression_ratio(),
                });
            }
        }
    }
    out.sort_by_key(|s| s.oid);
    Ok(out)
}

/// The outcome of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Objects examined.
    pub objects_checked: usize,
    /// Versions examined.
    pub versions_checked: u64,
    /// Problems found (empty = healthy).
    pub problems: Vec<String>,
}

impl FsckReport {
    /// Whether the store passed every check.
    pub fn is_healthy(&self) -> bool {
        self.problems.is_empty()
    }
}

fn open(path: &Path) -> Result<(Store, VersionStore)> {
    let store = Store::open(path, StoreOptions::default())?;
    Ok((store, VersionStore::new(VersionStoreLayout::default())))
}

/// Gather the physical and logical summary of a database.
pub fn store_info(path: &Path) -> Result<StoreInfo> {
    let (store, vs) = open(path)?;
    let wal_bytes = store.wal_len();
    let mut tx = store.read();
    let page_count = tx.page_count()?;
    let mut pages_by_kind: BTreeMap<Option<u8>, u64> = BTreeMap::new();
    for i in 0..page_count {
        let kind = match tx.page(PageId(i)) {
            Ok(page) => page.kind().map(|k| k as u8),
            Err(_) => None,
        };
        *pages_by_kind.entry(kind).or_insert(0) += 1;
    }
    let mut object_count = 0usize;
    let mut version_count = 0u64;
    let tags = all_tags(&vs, &mut tx)?;
    for &tag in &tags {
        for oid in vs.objects_of_type(&mut tx, tag)? {
            object_count += 1;
            version_count += vs.version_count(&mut tx, oid)?;
        }
    }
    drop(tx);
    Ok(StoreInfo {
        page_count,
        pages_by_kind,
        wal_bytes,
        buffer: store.buffer_stats(),
        object_count,
        version_count,
        type_count: tags.len(),
        storage: store.stats(),
    })
}

fn all_tags(_vs: &VersionStore, tx: &mut impl PageRead) -> Result<Vec<ode_codec::TypeTag>> {
    // The extent directory is the authoritative type census; tags whose
    // extents emptied out (every object deleted) are skipped.
    let extents = ode_object::Extents::new(VersionStoreLayout::default().extent_slot);
    let mut out = Vec::new();
    for tag in extents.tags(tx)? {
        if extents.count(tx, tag)? > 0 {
            out.push(tag);
        }
    }
    Ok(out)
}

/// List every live object.
pub fn list_objects(path: &Path) -> Result<Vec<ObjectSummary>> {
    let (store, vs) = open(path)?;
    let mut tx = store.read();
    let mut out = Vec::new();
    for tag in all_tags(&vs, &mut tx)? {
        for oid in vs.objects_of_type(&mut tx, tag)? {
            let meta = vs.object_meta(&mut tx, oid)?;
            let latest = vs.version_meta(&mut tx, meta.latest)?;
            out.push(ObjectSummary {
                oid: oid.0,
                tag: tag.0,
                versions: meta.version_count,
                latest: meta.latest.0,
                latest_body_bytes: latest.body.len(),
            });
        }
    }
    out.sort_by_key(|s| s.oid);
    Ok(out)
}

/// Describe one object: metadata plus its full version history.
pub fn describe_object(path: &Path, oid: u64) -> Result<String> {
    let (store, vs) = open(path)?;
    let mut tx = store.read();
    let oid = Oid(oid);
    let meta = vs.object_meta(&mut tx, oid)?;
    let mut out = String::new();
    writeln!(out, "object {oid}").expect("write");
    writeln!(out, "  type tag : {:#018x}", meta.tag.0).expect("write");
    writeln!(out, "  versions : {}", meta.version_count).expect("write");
    writeln!(out, "  latest   : {}", meta.latest).expect("write");
    writeln!(out, "  root     : {}", meta.root).expect("write");
    writeln!(out, "  history (temporal order):").expect("write");
    for vid in vs.version_history(&mut tx, oid)? {
        let v = vs.version_meta(&mut tx, vid)?;
        // A merge version shows both derivation parents and is marked;
        // ordinary versions keep the single-parent format.
        let dprev = if v.is_merge() {
            format!("{}+{} (merge)", v.dprev, v.dprev2)
        } else if v.dprev.is_null() {
            "-".to_string()
        } else {
            v.dprev.to_string()
        };
        writeln!(
            out,
            "    {vid}  created={}  dprev={dprev}  children={}  body={}B",
            v.created,
            v.dnext.len(),
            v.body.len()
        )
        .expect("write");
    }
    Ok(out)
}

/// Export one object's version graph as Graphviz DOT.
pub fn export_object_dot(path: &Path, oid: u64) -> Result<String> {
    let (store, vs) = open(path)?;
    let mut tx = store.read();
    version_graph_dot(&vs, &mut tx, Oid(oid))
}

/// Summary of the write-ahead log's contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalSummary {
    /// Log size in bytes.
    pub bytes: u64,
    /// Begin records (transactions started).
    pub begins: usize,
    /// Commit records.
    pub commits: usize,
    /// Full page-image records.
    pub page_images: usize,
    /// Byte-range delta records.
    pub page_deltas: usize,
    /// Whether a torn tail was found (normal after a crash).
    pub torn_tail: bool,
}

/// Summarize the WAL that accompanies a database file (without opening
/// the store, so the log is left exactly as found — no recovery runs).
pub fn wal_summary(db_path: &Path) -> Result<WalSummary> {
    use ode_storage::wal::{Wal, WalRecord};
    let mut wal_path = db_path.to_path_buf().into_os_string();
    wal_path.push(".wal");
    let wal_path = std::path::PathBuf::from(wal_path);
    if !wal_path.exists() {
        return Ok(WalSummary::default());
    }
    let mut wal = Wal::open(&wal_path).map_err(ode_version::VersionError::Storage)?;
    let (records, tear) = wal.records().map_err(ode_version::VersionError::Storage)?;
    let mut summary = WalSummary {
        bytes: wal.len(),
        torn_tail: tear.is_some(),
        ..WalSummary::default()
    };
    for record in &records {
        match record {
            WalRecord::Begin { .. } => summary.begins += 1,
            WalRecord::Commit { .. } => summary.commits += 1,
            WalRecord::Page { .. } => summary.page_images += 1,
            WalRecord::PageDelta { .. } => summary.page_deltas += 1,
        }
    }
    Ok(summary)
}

/// One decoded WAL record with its physical position in the log file.
///
/// Offsets are file offsets within the current log generation (the
/// logical shipping coordinate adds the store's in-memory base, which
/// an offline dump cannot know); `epoch` counts commits within this
/// file, so the record that produced "the k-th epoch since the last
/// checkpoint" reads `Some(k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecordInfo {
    /// Byte offset of the record's frame (`[len][crc][payload]`).
    pub offset: u64,
    /// Payload length in bytes (the frame adds an 8-byte header).
    pub payload_bytes: u32,
    /// For `Commit` records: 1-based commit index within this file.
    pub epoch: Option<u64>,
    /// Human-readable description of the record.
    pub desc: String,
}

/// Decode every intact WAL record with its offset, sizing, and (for
/// commits) epoch index. Returns the records plus the offset of the
/// torn tail, if any — reading the file directly so the log is left
/// exactly as found (no recovery runs).
pub fn wal_records(db_path: &Path) -> Result<(Vec<WalRecordInfo>, Option<u64>)> {
    use ode_storage::wal::WalRecord;
    let mut wal_path = db_path.to_path_buf().into_os_string();
    wal_path.push(".wal");
    let wal_path = std::path::PathBuf::from(wal_path);
    if !wal_path.exists() {
        return Ok((Vec::new(), None));
    }
    let data =
        std::fs::read(&wal_path).map_err(|e| ode_version::VersionError::Storage(e.into()))?;

    let mut records = Vec::new();
    let mut epoch = 0u64;
    let mut pos: usize = 0;
    loop {
        if pos == data.len() {
            return Ok((records, None));
        }
        if pos + 8 > data.len() {
            return Ok((records, Some(pos as u64)));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len) {
            Some(e) if e <= data.len() => e,
            _ => return Ok((records, Some(pos as u64))),
        };
        let payload = &data[body_start..body_end];
        if ode_storage::crc32(payload) != crc {
            return Ok((records, Some(pos as u64)));
        }
        let desc = match ode_codec::from_bytes::<WalRecord>(payload) {
            Ok(WalRecord::Begin { tx }) => format!("begin       tx={tx}"),
            Ok(WalRecord::Page { tx, page, image }) => {
                format!("page-image  tx={tx} page={page} bytes={}", image.len())
            }
            Ok(WalRecord::PageDelta { tx, page, ops }) => {
                let bytes: usize = ops.iter().map(|(_, b)| b.len()).sum();
                format!(
                    "page-delta  tx={tx} page={page} runs={} bytes={bytes}",
                    ops.len()
                )
            }
            Ok(WalRecord::Commit { tx }) => {
                epoch += 1;
                format!("commit      tx={tx}")
            }
            Err(_) => "UNDECODABLE (intact frame, unknown payload)".into(),
        };
        let is_commit = desc.starts_with("commit");
        records.push(WalRecordInfo {
            offset: pos as u64,
            payload_bytes: len as u32,
            epoch: is_commit.then_some(epoch),
            desc,
        });
        pos = body_end;
    }
}

/// Check every object's version-graph invariants and that every version
/// body is readable.
pub fn fsck(path: &Path) -> Result<FsckReport> {
    let (store, vs) = open(path)?;
    let mut tx = store.read();
    let mut report = FsckReport {
        objects_checked: 0,
        versions_checked: 0,
        problems: Vec::new(),
    };
    for tag in all_tags(&vs, &mut tx)? {
        for oid in vs.objects_of_type(&mut tx, tag)? {
            report.objects_checked += 1;
            if let Err(e) = vs.check_object(&mut tx, oid) {
                report.problems.push(format!("{oid}: {e}"));
                continue;
            }
            match vs.version_history(&mut tx, oid) {
                Ok(history) => {
                    for vid in history {
                        report.versions_checked += 1;
                        match vs.version_meta(&mut tx, vid) {
                            Ok(meta) if meta.tag != tag => report
                                .problems
                                .push(format!("{vid}: tag differs from object tag")),
                            Ok(_) => {}
                            Err(e) => report.problems.push(format!("{vid}: {e}")),
                        }
                    }
                }
                Err(e) => report.problems.push(format!("{oid}: history walk: {e}")),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode::{Database, DatabaseOptions};
    use ode_codec::{impl_persist_struct, impl_type_name};

    #[derive(Debug, Clone, PartialEq)]
    struct Gadget {
        serial: u64,
    }
    impl_persist_struct!(Gadget { serial });
    impl_type_name!(Gadget = "tools-test/Gadget");

    fn build_db(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-tools-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        for i in 0..5u64 {
            let p = txn.pnew(&Gadget { serial: i }).unwrap();
            for _ in 0..i {
                txn.newversion(&p).unwrap();
            }
        }
        txn.commit().unwrap();
        drop(db);
        path
    }

    fn cleanup(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        let mut wal = path.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn info_reports_logical_and_physical_shape() {
        let path = build_db("info");
        let info = store_info(&path).unwrap();
        assert_eq!(info.object_count, 5);
        assert_eq!(info.version_count, 1 + 2 + 3 + 4 + 5);
        assert_eq!(info.type_count, 1);
        assert!(info.page_count > 1);
        let total: u64 = info.pages_by_kind.values().sum();
        assert_eq!(total, info.page_count);
        assert!(
            info.buffer.hits + info.buffer.misses > 0,
            "the census reads pages, so the pool must have seen traffic"
        );
        cleanup(&path);
    }

    #[test]
    fn list_and_describe() {
        let path = build_db("list");
        let objects = list_objects(&path).unwrap();
        assert_eq!(objects.len(), 5);
        assert_eq!(objects[0].versions, 1);
        assert_eq!(objects[4].versions, 5);
        let text = describe_object(&path, objects[4].oid).unwrap();
        assert!(text.contains("versions : 5"));
        assert!(text.contains("history"));
        cleanup(&path);
    }

    #[test]
    fn dot_export_through_tools() {
        let path = build_db("dot");
        let objects = list_objects(&path).unwrap();
        let dot = export_object_dot(&path, objects[2].oid).unwrap();
        assert!(dot.starts_with("digraph"));
        cleanup(&path);
    }

    #[test]
    fn fsck_healthy_store() {
        let path = build_db("fsck");
        let report = fsck(&path).unwrap();
        assert!(report.is_healthy(), "{:?}", report.problems);
        assert_eq!(report.objects_checked, 5);
        assert_eq!(report.versions_checked, 15);
        cleanup(&path);
    }

    #[test]
    fn wal_summary_counts_records() {
        let path = build_db("walsum");
        // build_db's Database was dropped cleanly → checkpoint reset the
        // WAL; write one more transaction without clean shutdown.
        {
            let db = Database::open(&path, DatabaseOptions::default()).unwrap();
            let mut txn = db.begin();
            txn.pnew(&Gadget { serial: 99 }).unwrap();
            txn.commit().unwrap();
            std::mem::forget(db);
        }
        let s = wal_summary(&path).unwrap();
        assert_eq!(s.begins, 1);
        assert_eq!(s.commits, 1);
        assert!(s.page_images + s.page_deltas > 0);
        assert!(!s.torn_tail);
        assert!(s.bytes > 0);
        // fsck (which recovers) still passes afterwards.
        assert!(fsck(&path).unwrap().is_healthy());
        cleanup(&path);
    }

    #[test]
    fn fsck_flags_corrupted_pages() {
        use std::io::{Seek, SeekFrom, Write};
        let path = build_db("corrupt");
        // Flip bytes in the middle of several data pages.
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let len = std::fs::metadata(&path).unwrap().len();
            for page in 1..(len / 4096).min(6) {
                f.seek(SeekFrom::Start(page * 4096 + 2000)).unwrap();
                f.write_all(&[0xFF, 0xEE, 0xDD]).unwrap();
            }
        }
        // fsck must never panic: either the store refuses to open /
        // enumerate (Err) or the report lists problems.
        // An Err is acceptable too: the checksum failure surfaced at
        // open/scan instead of in the report.
        if let Ok(report) = fsck(&path) {
            assert!(!report.is_healthy(), "corruption must be flagged");
        }
        cleanup(&path);
    }

    #[test]
    fn chain_report_measures_delta_storage() {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-tools-chains-{}", std::process::id()));
        cleanup(&path);
        #[derive(Debug, Clone, PartialEq)]
        struct Doc {
            text: String,
        }
        impl_persist_struct!(Doc { text });
        impl_type_name!(Doc = "tools-test/Doc");

        let options = DatabaseOptions::default().with_chain(ode::ChainConfig::with_interval(4));
        let db = Database::create(&path, options).unwrap();
        let mut txn = db.begin();
        // One versioned object (gets a chain) and one single-version
        // object (stays whole-body — version orthogonality). Bodies are
        // large with small edits, so deltas beat full copies.
        let base = "lorem ipsum ".repeat(60);
        let p = txn.pnew(&Doc { text: base.clone() }).unwrap();
        txn.pnew(&Doc {
            text: "solo".into(),
        })
        .unwrap();
        for i in 1..10u64 {
            let v = txn.newversion(&p).unwrap();
            txn.put_version(
                &v,
                &Doc {
                    text: format!("{base}-rev{i}"),
                },
            )
            .unwrap();
        }
        txn.commit().unwrap();
        drop(db);

        let report = chain_report(&path).unwrap();
        assert_eq!(report.len(), 1, "only the versioned object has a chain");
        let c = &report[0];
        assert_eq!(c.segments, 10);
        assert_eq!(c.interval, 4);
        assert_eq!(c.anchors + c.deltas, c.segments);
        assert!(c.deltas > 0);
        assert!(c.encoded_bytes < c.materialized_bytes);
        assert!(c.ratio < 1.0);
        // A whole-body store reports no chains at all.
        let plain = build_db("nochains");
        assert!(chain_report(&plain).unwrap().is_empty());
        cleanup(&plain);
        cleanup(&path);
    }

    #[test]
    fn merge_versions_are_reported_distinctly() {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-tools-merges-{}", std::process::id()));
        cleanup(&path);
        #[derive(Debug, Clone, PartialEq)]
        struct Doc {
            text: String,
        }
        impl_persist_struct!(Doc { text });
        impl_type_name!(Doc = "tools-test/MergeDoc");

        let options = DatabaseOptions::default().with_chain(ode::ChainConfig::with_interval(4));
        let db = Database::create(&path, options).unwrap();
        let mut txn = db.begin();
        let p = txn
            .pnew(&Doc {
                text: "the quick brown fox jumps over the lazy dog".into(),
            })
            .unwrap();
        let base = txn.current_version(&p).unwrap();
        let a = txn
            .derive_from_with(&base, |d| d.text = d.text.replace("quick", "QUICK"))
            .unwrap();
        let b = txn
            .derive_from_with(&base, |d| d.text = d.text.replace("lazy", "LAZY"))
            .unwrap();
        let report = txn.merge(&a, &b, ode::MergePolicy::Fail).unwrap();
        let m = report.version.expect("disjoint edits merge cleanly");
        txn.commit().unwrap();
        drop(db);

        let chains = chain_report(&path).unwrap();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].merges, 1, "the merge join must be counted");
        assert_eq!(chains[0].segments, 4);

        let text = describe_object(&path, chains[0].oid).unwrap();
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with(&m.vid().to_string()))
            .expect("merge version listed in history");
        assert!(
            line.contains(&format!("dprev={}+{} (merge)", a.vid(), b.vid())),
            "merge version must show both parents: {line}"
        );
        // Ordinary versions keep the single-parent format.
        assert!(!text
            .lines()
            .filter(|l| !l.contains("(merge)"))
            .any(|l| l.contains('+')));

        assert!(fsck(&path).unwrap().is_healthy());
        cleanup(&path);
    }

    #[test]
    fn describe_unknown_object_errors() {
        let path = build_db("unknown");
        assert!(describe_object(&path, 9999).is_err());
        cleanup(&path);
    }
}
