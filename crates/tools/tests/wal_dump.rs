//! `wal_records` decodes the log of a crashed database: every frame
//! gets an offset, commit records get epoch indices, and a torn tail
//! is reported by offset instead of hiding the intact prefix.

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_tools::wal_records;

#[derive(Debug, Clone, PartialEq)]
struct Note {
    text: String,
}
impl_persist_struct!(Note { text });
impl_type_name!(Note = "waldump/Note");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-waldump-{name}-{}", std::process::id()));
    cleanup(&path);
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn wal_of(path: &std::path::Path) -> std::path::PathBuf {
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    std::path::PathBuf::from(wal)
}

#[test]
fn records_carry_offsets_and_commit_epochs() {
    let path = temp_path("decode");
    let db = Database::create(&path, DatabaseOptions::no_sync()).unwrap();
    for i in 0..3 {
        let mut txn = db.begin();
        txn.pnew(&Note {
            text: format!("note-{i}"),
        })
        .unwrap();
        txn.commit().unwrap();
    }
    // Crash: leak the database so no shutdown checkpoint resets the log.
    std::mem::forget(db);

    let (records, torn) = wal_records(&path).unwrap();
    assert_eq!(torn, None, "clean log has no torn tail");
    assert!(!records.is_empty());

    // Offsets are ascending and frame-consistent: each record starts
    // where the previous frame (8-byte header + payload) ended.
    let mut expected = 0u64;
    for r in &records {
        assert_eq!(r.offset, expected, "frame accounting drifted: {r:?}");
        expected += 8 + u64::from(r.payload_bytes);
    }

    // Exactly the commits carry epochs, numbered 1..=k in order.
    let epochs: Vec<u64> = records.iter().filter_map(|r| r.epoch).collect();
    assert_eq!(epochs, vec![1, 2, 3]);
    for r in &records {
        assert_eq!(r.epoch.is_some(), r.desc.starts_with("commit"), "{r:?}");
    }

    // A torn tail (half-written frame after a crash) is reported at
    // the right offset; the intact prefix still decodes.
    let wal_path = wal_of(&path);
    let intact = std::fs::metadata(&wal_path).unwrap().len();
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0x55; 5]); // garbage shorter than a header
    std::fs::write(&wal_path, &bytes).unwrap();
    let (again, torn) = wal_records(&path).unwrap();
    assert_eq!(again.len(), records.len());
    assert_eq!(torn, Some(intact));

    cleanup(&path);
}

#[test]
fn a_missing_wal_is_an_empty_listing() {
    let path = temp_path("absent");
    let (records, torn) = wal_records(&path).unwrap();
    assert!(records.is_empty());
    assert_eq!(torn, None);
}
