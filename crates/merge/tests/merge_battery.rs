//! Differential merge battery: random fork/edit histories against an
//! oracle. Non-overlapping edit scripts must always merge cleanly and
//! byte-match the oracle (both scripts applied to the base);
//! overlapping scripts must always surface a `MergeConflict` naming
//! the hunk ranges — never silent corruption.

use ode_merge::{merge, MergePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted edit in base coordinates: replace `[s, e)` with `repl`.
#[derive(Clone)]
struct Edit {
    s: usize,
    e: usize,
    repl: Vec<u8>,
}

/// Apply base-ordered, disjoint edits to the base — the oracle.
fn apply_edits(base: &[u8], edits: &[Edit]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut cur = 0usize;
    for ed in edits {
        out.extend_from_slice(&base[cur..ed.s]);
        out.extend_from_slice(&ed.repl);
        cur = ed.e;
    }
    out.extend_from_slice(&base[cur..]);
    out
}

fn random_body(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut b = vec![0u8; len];
    rng.fill_bytes(&mut b);
    b
}

/// Disjoint windows over `[0, len)`, each separated by at least one
/// untouched byte.
fn windows(rng: &mut StdRng, len: usize, n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let stride = (len / (n + 1)).max(8);
    let mut cursor = 0usize;
    for _ in 0..n {
        let gap = rng.random_range(1..stride / 2);
        let width = rng.random_range(1..stride / 2);
        if cursor + gap + width >= len {
            break;
        }
        out.push((cursor + gap, cursor + gap + width));
        cursor += gap + width;
    }
    out
}

/// A random edit inside a window: replacement, deletion, or insertion.
fn edit_in(rng: &mut StdRng, (s, e): (usize, usize)) -> Edit {
    match rng.random_range(0..3u32) {
        0 => {
            // Replace the window with random bytes of random length.
            let mut repl = vec![0u8; rng.random_range(0..(e - s) * 2 + 1)];
            rng.fill_bytes(&mut repl);
            Edit { s, e, repl }
        }
        1 => Edit {
            s,
            e,
            repl: Vec::new(), // deletion
        },
        _ => {
            // Pure insertion strictly inside the window.
            let p = rng.random_range(s..e + 1);
            let mut repl = vec![0u8; rng.random_range(1..24)];
            rng.fill_bytes(&mut repl);
            Edit { s: p, e: p, repl }
        }
    }
}

#[test]
fn disjoint_random_edits_always_merge_to_the_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..200 {
        let len = rng.random_range(256..4096usize);
        let base = random_body(&mut rng, len);
        let n = rng.random_range(2..10);
        let wins = windows(&mut rng, len, n);
        if wins.len() < 2 {
            continue;
        }
        // Alternate windows between the two sides, so neither side's
        // edits touch the other's bytes.
        let mut ours_edits = Vec::new();
        let mut theirs_edits = Vec::new();
        for (i, &w) in wins.iter().enumerate() {
            let ed = edit_in(&mut rng, w);
            if i % 2 == 0 {
                ours_edits.push(ed);
            } else {
                theirs_edits.push(ed);
            }
        }
        let ours = apply_edits(&base, &ours_edits);
        let theirs = apply_edits(&base, &theirs_edits);
        // Oracle: both scripts interleaved in base order.
        let mut all = [ours_edits.as_slice(), theirs_edits.as_slice()].concat();
        all.sort_by_key(|e| (e.s, e.e));
        let oracle = apply_edits(&base, &all);

        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(
            out.conflicts.is_empty(),
            "case {case}: disjoint edits reported conflicts: {:?}",
            out.conflicts
                .iter()
                .map(|c| (c.base_start, c.base_end))
                .collect::<Vec<_>>()
        );
        assert_eq!(out.merged.unwrap(), oracle, "case {case}: merge != oracle");
    }
}

#[test]
fn overlapping_random_edits_always_conflict_and_never_corrupt() {
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    for case in 0..200 {
        let len = rng.random_range(256..4096usize);
        let base = random_body(&mut rng, len);
        // One guaranteed overlap: both sides rewrite ranges sharing at
        // least one byte, with bytes that differ from the base and
        // from each other at every position.
        let s1 = rng.random_range(0..len - 32);
        let e1 = s1 + rng.random_range(8..32);
        let s2 = rng.random_range(s1..e1); // starts inside [s1, e1)
        let e2 = s2 + rng.random_range(8..32.min(len - s2));
        let mut ours = base.clone();
        for b in &mut ours[s1..e1] {
            *b ^= 0x55;
        }
        let mut theirs = base.clone();
        for b in &mut theirs[s2..e2.min(len)] {
            *b ^= 0xAA;
        }

        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(
            !out.conflicts.is_empty(),
            "case {case}: overlap [{s1},{e1})x[{s2},{e2}) went undetected"
        );
        // Fail policy: no merged state, ever — no silent corruption.
        assert!(out.merged.is_none(), "case {case}: Fail produced a body");
        // The reported ranges name the overlap.
        let overlap_s = s2 as u64;
        let overlap_e = (e1.min(e2).min(len)) as u64;
        assert!(
            out.conflicts
                .iter()
                .any(|c| c.base_start <= overlap_s && c.base_end >= overlap_e),
            "case {case}: no conflict covers the overlap [{overlap_s}, {overlap_e})"
        );
        // Resolution policies still produce a state and keep reporting.
        for (policy, winner) in [(MergePolicy::Ours, &ours), (MergePolicy::Theirs, &theirs)] {
            let resolved = merge(&base, &ours, &theirs, policy);
            assert_eq!(resolved.conflicts.len(), out.conflicts.len());
            let merged = resolved.merged.expect("policy resolves");
            // Within the conflicted range the winner's bytes prevail.
            let c = &resolved.conflicts[0];
            let take = if policy == MergePolicy::Ours {
                &c.ours
            } else {
                &c.theirs
            };
            let at = merged
                .windows(take.len().max(1))
                .position(|w| w == &take[..]);
            assert!(
                take.is_empty() || at.is_some(),
                "case {case}: winner bytes missing from resolution"
            );
            let _ = winner;
        }
    }
}

#[test]
fn mixed_histories_either_merge_exactly_or_conflict() {
    // Random windows for both sides *without* the disjointness
    // guarantee: whatever happens must be one of the two contracted
    // outcomes — a clean merge equal to some interleaving, or a
    // reported conflict with no body under Fail.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut conflicted = 0usize;
    let mut clean = 0usize;
    for _ in 0..200 {
        let len = rng.random_range(256..2048usize);
        let base = random_body(&mut rng, len);
        let mut sides = Vec::new();
        for _ in 0..2 {
            let n = rng.random_range(1..6);
            let wins = windows(&mut rng, len, n);
            let edits: Vec<Edit> = wins.iter().map(|&w| edit_in(&mut rng, w)).collect();
            sides.push(apply_edits(&base, &edits));
        }
        let out = merge(&base, &sides[0], &sides[1], MergePolicy::Fail);
        match out.merged {
            Some(_) => {
                clean += 1;
                assert!(out.conflicts.is_empty());
            }
            None => {
                conflicted += 1;
                assert!(!out.conflicts.is_empty());
                for c in &out.conflicts {
                    assert!(c.base_start <= c.base_end);
                    assert!(c.base_end <= len as u64);
                }
            }
        }
    }
    // Both outcomes must actually occur over 200 random histories.
    assert!(clean > 0, "no clean merges in the mixed battery");
    assert!(conflicted > 0, "no conflicts in the mixed battery");
}
